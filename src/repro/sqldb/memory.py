"""Per-query memory accounting, grant-based admission and spill files.

The engine's memory-hungry operators (hash-join builds, aggregate and
distinct hash tables, sort buffers, window partitions, materialised CTEs
and result batches) route every sizeable allocation through a
:class:`MemoryGrant` obtained from the database's :class:`MemoryBroker`.
Two budgets apply:

* ``query_memory_limit`` — one query's working set.  A *degradable*
  allocation (:meth:`MemoryGrant.reserve`) that would exceed it is
  **denied** and the operator switches to its spill twin — external
  merge sort, Grace-partitioned hash join, partitioned aggregation —
  each byte-identical to the in-memory path.  A *non-degradable*
  allocation (:meth:`MemoryGrant.require`: CTE cache, window state,
  result batch, spill working chunks) that exceeds it raises
  :class:`~repro.errors.ConfigurationLimitExceeded` (SQLSTATE 53400).
* ``memory_limit`` — the global pool shared by every session.  At
  admission each query carves out its per-query limit (when one is
  configured); when the pool is exhausted new queries wait on a
  *bounded* grant queue — deadline- and cancel-aware exactly like the
  lock manager's waits — and are shed with
  :class:`~repro.errors.OutOfMemory` (SQLSTATE 53200, retryable) when
  the queue overflows or the wait times out.  Mid-query ``require``
  allocations that cannot be served from the pool raise 53200 too, so a
  saturated server always sheds instead of deadlocking.

Spilled state goes through the :class:`SpillManager`: length- and
CRC-framed pickled payloads (the WAL's corruption-detection shape) in a
per-database spill directory, tracked per grant so cancellation, errors
and rollback reclaim every temp file.  Acked commits never depend on
spilled state: spill files carry only *intra-query* operator state and
are deleted at statement end, before any commit acknowledgement.

The :class:`MemoryFaultInjector` is the allocation-level sibling of
:class:`~repro.sqldb.faults.FaultInjector` (process crashes) and
:class:`~repro.sqldb.netfaults` (wire faults): it forces a *denial*
(→ the operator must spill), a *hard failure* (→ 53200 surfaces), or an
artificial *stall* (→ deterministic cancellation windows) at named
allocation points (:data:`ALLOCATION_POINTS`).
"""

from __future__ import annotations

import io
import os
import pickle
import shutil
import struct
import tempfile
import threading
import time
import zlib
from typing import Any, Iterator, Optional

from repro.errors import (
    ConfigurationLimitExceeded,
    DurabilityError,
    OutOfMemory,
)

__all__ = [
    "ALLOCATION_POINTS",
    "MemoryBroker",
    "MemoryGrant",
    "MemoryFaultInjector",
    "NO_MEMORY_FAULTS",
    "SpillManager",
    "SpillFile",
    "batch_bytes",
    "vector_bytes",
    "parse_memory_limit",
]

#: estimated heap bytes per element of an object-dtype column (pointer
#: plus a small boxed payload); keeps text columns from looking free
_OBJECT_ELEMENT_BYTES = 48

#: estimated bytes per decorated sort key (a (marker, value) tuple plus
#: list slot) — what the in-memory sort allocates per row and key
SORT_KEY_BYTES = 112

#: estimated bytes of hash-table state per build/group row (code arrays,
#: argsort order, bucket bookkeeping)
HASH_ROW_BYTES = 64


#: every named allocation point threaded through the executor, in rough
#: plan order.  Property tests sweep this registry, so adding a point
#: here automatically adds it to the deny-at-every-point differential.
ALLOCATION_POINTS: tuple[str, ...] = (
    "sort.buffer",       # decorated keys + order array of an in-memory sort
    "sort.run",          # one external-sort run (working chunk)
    "join.build",        # hash-join build side + code tables
    "join.partition",    # one Grace partition's working chunk
    "agg.hashtable",     # aggregate group codes + accumulator state
    "agg.partition",     # one spilled aggregation partition's chunk
    "distinct.hashtable",  # distinct's group-code table
    "distinct.partition",  # one spilled distinct partition's chunk
    "window.partition",  # window partition codes + per-partition order
    "cte.materialize",   # a materialised CTE cached for the query
    "result.batch",      # the final result batch handed to the client
    "spill.write",       # serialising a spill payload
    "spill.read",        # reading a spill payload back
)

_POINT_SET = frozenset(ALLOCATION_POINTS)


def vector_bytes(vector: Any) -> int:
    """Estimated resident bytes of one column vector."""
    values = vector.values
    total = int(values.nbytes) + int(vector.nulls.nbytes)
    if values.dtype == object:
        total += _OBJECT_ELEMENT_BYTES * len(values)
    return total


def batch_bytes(batch: Any) -> int:
    """Estimated resident bytes of one batch (sum over its columns)."""
    return sum(vector_bytes(v) for v in batch.columns.values())


def parse_memory_limit(raw: str) -> int:
    """Parse a byte budget: plain bytes or a ``kb``/``mb``/``gb`` suffix."""
    text = raw.strip().lower()
    factor = 1
    for suffix, scale in (("kb", 1024), ("mb", 1024**2), ("gb", 1024**3)):
        if text.endswith(suffix):
            text = text[: -len(suffix)].strip()
            factor = scale
            break
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"cannot parse memory limit {raw!r}; "
            "expected bytes or a kb/mb/gb suffix"
        ) from None
    nbytes = int(value * factor)
    if nbytes <= 0:
        raise ValueError(f"memory limit {raw!r} must be positive")
    return nbytes


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------


class MemoryFaultInjector:
    """Forces allocation outcomes at named allocation points.

    * :meth:`deny` — the next *hits* reservations at a point are refused,
      so the operator must take its spill path even under no real
      pressure (``hits=None`` denies forever).
    * :meth:`fail` — the n-th allocation at a point raises
      :class:`~repro.errors.OutOfMemory` outright, modelling a pool that
      vanished mid-query.
    * :meth:`stall` — every allocation at a point sleeps first, opening
      a deterministic window for cancellation and timeout tests.
    * ``pressure`` — a multiplier applied to every accounted size,
      modelling fragmentation / allocator overhead.

    Like :class:`~repro.sqldb.faults.FaultInjector`, every point passed
    is recorded in :attr:`trace` so tests can assert a workload actually
    exercised the path they armed.
    """

    def __init__(self, pressure: float = 1.0) -> None:
        if pressure < 1.0:
            raise ValueError("pressure must be >= 1.0")
        self.pressure = float(pressure)
        self._denied: dict[str, Optional[int]] = {}
        self._failing: dict[str, int] = {}
        self._stalls: dict[str, float] = {}
        self._mutex = threading.Lock()
        #: allocation points reached, in order (armed or not)
        self.trace: list[str] = []
        #: the point whose ``fail`` arm fired, once one has
        self.fired: Optional[str] = None

    @staticmethod
    def _validate(point: str) -> None:
        if point not in _POINT_SET:
            raise ValueError(
                f"unknown allocation point {point!r}; "
                "see memory.ALLOCATION_POINTS"
            )

    def deny(self, point: str, hits: Optional[int] = None) -> "MemoryFaultInjector":
        self._validate(point)
        if hits is not None and hits < 1:
            raise ValueError("hits must be >= 1 (or None for always)")
        with self._mutex:
            self._denied[point] = hits
        return self

    def fail(self, point: str, hits: int = 1) -> "MemoryFaultInjector":
        self._validate(point)
        if hits < 1:
            raise ValueError("hits must be >= 1")
        with self._mutex:
            self._failing[point] = hits
        return self

    def stall(self, point: str, seconds: float) -> "MemoryFaultInjector":
        self._validate(point)
        with self._mutex:
            self._stalls[point] = float(seconds)
        return self

    def clear(self) -> None:
        with self._mutex:
            self._denied.clear()
            self._failing.clear()
            self._stalls.clear()

    def scaled(self, nbytes: int) -> int:
        return int(nbytes * self.pressure)

    def on_allocation(self, point: str, nbytes: int) -> bool:
        """Record the allocation; True = forcibly denied (caller spills).

        Raises :class:`~repro.errors.OutOfMemory` when the point's
        ``fail`` arm is due.  Stalls apply before any verdict.
        """
        with self._mutex:
            self.trace.append(point)
            stall = self._stalls.get(point, 0.0)
            fail_hits = self._failing.get(point)
            if fail_hits is not None:
                if fail_hits > 1:
                    self._failing[point] = fail_hits - 1
                    fail_hits = None
                else:
                    del self._failing[point]
                    self.fired = point
            deny = False
            if fail_hits is None and point in self._denied:
                remaining = self._denied[point]
                if remaining is None:
                    deny = True
                elif remaining > 1:
                    self._denied[point] = remaining - 1
                    deny = True
                else:
                    del self._denied[point]
                    deny = True
        if stall:
            time.sleep(stall)
        if fail_hits is not None:
            raise OutOfMemory(
                f"injected allocation failure at {point!r} ({nbytes} bytes)"
            )
        return deny


class _NoMemoryFaults(MemoryFaultInjector):
    """Inert injector: no tracing, never denies (the default)."""

    def deny(self, point: str, hits: Optional[int] = None) -> "MemoryFaultInjector":
        raise ValueError("NO_MEMORY_FAULTS is shared; build a MemoryFaultInjector()")

    fail = deny  # type: ignore[assignment]

    def stall(self, point: str, seconds: float) -> "MemoryFaultInjector":
        raise ValueError("NO_MEMORY_FAULTS is shared; build a MemoryFaultInjector()")

    def scaled(self, nbytes: int) -> int:
        return nbytes

    def on_allocation(self, point: str, nbytes: int) -> bool:
        return False


#: shared inert injector used when a broker is built without faults
NO_MEMORY_FAULTS = _NoMemoryFaults()


# ---------------------------------------------------------------------------
# spill files
# ---------------------------------------------------------------------------

_FRAME_HEADER = struct.Struct("<IQ")  # crc32, payload length


class SpillFile:
    """An append-only sequence of checksummed pickled payloads.

    Each record is ``crc32 | length | payload`` — the WAL's framing — so
    a torn or corrupted spill surfaces as a hard
    :class:`~repro.errors.DurabilityError` instead of silently wrong
    query results.  Writers append with :meth:`append`; readers stream
    records back in order with :meth:`records` (one at a time, so the
    reader's working set stays one payload, not the whole file).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._write_handle: Optional[io.BufferedWriter] = None
        self.bytes_written = 0

    def append(self, payload: Any) -> int:
        """Serialise and frame one payload; returns bytes written."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _FRAME_HEADER.pack(zlib.crc32(blob), len(blob)) + blob
        if self._write_handle is None:
            self._write_handle = open(self.path, "ab")
        self._write_handle.write(frame)
        self.bytes_written += len(frame)
        return len(frame)

    def finish_writing(self) -> None:
        if self._write_handle is not None:
            self._write_handle.close()
            self._write_handle = None

    def records(self) -> Iterator[Any]:
        """Yield payloads in append order, verifying every checksum."""
        self.finish_writing()
        if self.bytes_written == 0 and not os.path.exists(self.path):
            return  # never appended to: the file was created lazily
        with open(self.path, "rb") as handle:
            while True:
                header = handle.read(_FRAME_HEADER.size)
                if not header:
                    return
                if len(header) < _FRAME_HEADER.size:
                    raise DurabilityError(
                        f"torn spill frame header in {self.path!r}"
                    )
                crc, length = _FRAME_HEADER.unpack(header)
                blob = handle.read(length)
                if len(blob) < length:
                    raise DurabilityError(
                        f"torn spill payload in {self.path!r}"
                    )
                if zlib.crc32(blob) != crc:
                    raise DurabilityError(
                        f"spill checksum mismatch in {self.path!r}"
                    )
                yield pickle.loads(blob)

    def remove(self) -> None:
        self.finish_writing()
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass


class SpillManager:
    """Owns one database's spill directory and tracks live spill files.

    Files are created per grant and reclaimed at statement end — success,
    error or cancellation alike — through :meth:`release_grant`;
    :meth:`live_files` backs the test suite's leak audits.  The directory
    itself is created lazily (an unlimited database never touches disk)
    and removed at :meth:`close` when this manager created it.
    """

    DIR_PREFIX = "repro-spill-"

    def __init__(self, spill_dir: Optional[str] = None) -> None:
        self._configured_dir = spill_dir
        self._dir: Optional[str] = None
        self._owns_dir = False
        self._mutex = threading.Lock()
        self._counter = 0
        #: grant id -> live spill files
        self._by_grant: dict[int, list[SpillFile]] = {}
        self.total_spilled_bytes = 0

    @property
    def directory(self) -> Optional[str]:
        return self._dir

    def _ensure_dir(self) -> str:
        with self._mutex:
            if self._dir is None:
                if self._configured_dir is not None:
                    os.makedirs(self._configured_dir, exist_ok=True)
                    self._dir = self._configured_dir
                else:
                    self._dir = tempfile.mkdtemp(prefix=self.DIR_PREFIX)
                    self._owns_dir = True
            return self._dir

    def create(self, grant_id: int, label: str) -> SpillFile:
        directory = self._ensure_dir()
        with self._mutex:
            self._counter += 1
            name = f"{grant_id:06d}-{self._counter:08d}-{label}.spill"
            spill = SpillFile(os.path.join(directory, name))
            self._by_grant.setdefault(grant_id, []).append(spill)
        return spill

    def note_written(self, nbytes: int) -> None:
        with self._mutex:
            self.total_spilled_bytes += nbytes

    def release_file(self, grant_id: int, spill: SpillFile) -> None:
        """Reclaim one file early (e.g. a merged external-sort run)."""
        with self._mutex:
            files = self._by_grant.get(grant_id)
            if files is not None and spill in files:
                files.remove(spill)
        spill.remove()

    def release_grant(self, grant_id: int) -> None:
        with self._mutex:
            files = self._by_grant.pop(grant_id, [])
        for spill in files:
            spill.remove()

    def live_files(self) -> list[str]:
        with self._mutex:
            return [
                spill.path
                for files in self._by_grant.values()
                for spill in files
            ]

    def cleanup_all(self) -> None:
        with self._mutex:
            grants = list(self._by_grant)
        for grant_id in grants:
            self.release_grant(grant_id)

    def close(self) -> None:
        self.cleanup_all()
        with self._mutex:
            directory, owns = self._dir, self._owns_dir
            self._dir = None
            self._owns_dir = False
        if directory is not None and owns:
            shutil.rmtree(directory, ignore_errors=True)


# ---------------------------------------------------------------------------
# grants and the broker
# ---------------------------------------------------------------------------


class MemoryGrant:
    """One query's memory account against its broker's budgets."""

    def __init__(self, broker: "MemoryBroker", grant_id: int, base_bytes: int) -> None:
        self.broker = broker
        self.grant_id = grant_id
        #: bytes carved from the global pool at admission (not counted
        #: against the query's own budget — they *are* that budget)
        self.base_bytes = base_bytes
        #: operator reservations currently held
        self.reserved_bytes = 0
        self.peak_bytes = 0
        self.spilled_bytes = 0
        #: allocation points that degraded to their spill path
        self.spill_events: list[str] = []
        self.closed = False

    # reserve/require/release are delegated so all bookkeeping happens
    # under the broker's one condition variable

    def reserve(self, nbytes: int, point: str) -> bool:
        """Try a degradable allocation; False = take the spill path."""
        return self.broker._reserve(self, nbytes, point, degradable=True)

    def require(self, nbytes: int, point: str) -> None:
        """A non-degradable allocation; raises 53400/53200 on refusal."""
        self.broker._reserve(self, nbytes, point, degradable=False)

    def release(self, nbytes: int) -> None:
        self.broker._release(self, nbytes)

    def note_spill(self, nbytes: int, point: str) -> None:
        self.spilled_bytes += nbytes
        self.broker.spill.note_written(nbytes)
        if point not in self.spill_events:
            self.spill_events.append(point)

    def spill_file(self, label: str) -> SpillFile:
        return self.broker.spill.create(self.grant_id, label)

    def release_spill_file(self, spill: SpillFile) -> None:
        self.broker.spill.release_file(self.grant_id, spill)


class MemoryBroker:
    """Tracks reserved bytes per query against per-query and global budgets.

    ``limit`` is the global pool (None = unbounded); ``query_limit`` caps
    one query (None = unbounded).  Admission carves each query's
    ``query_limit`` out of the pool up front when both are configured —
    SQL Server-style memory grants — so a saturated pool queues new
    queries instead of letting them start and thrash.  The queue is
    bounded (``queue_depth``) and every wait observes the statement's
    deadline and cancel flag, exactly like the lock manager's waits;
    overflow and timeout shed with :class:`~repro.errors.OutOfMemory`.
    """

    def __init__(
        self,
        limit: Optional[int] = None,
        query_limit: Optional[int] = None,
        spill_dir: Optional[str] = None,
        queue_depth: int = 16,
        grant_timeout_ms: Optional[float] = 10000.0,
        faults: Optional[MemoryFaultInjector] = None,
    ) -> None:
        if limit is not None and limit <= 0:
            raise ValueError("memory_limit must be positive (or None)")
        if query_limit is not None and query_limit <= 0:
            raise ValueError("query_memory_limit must be positive (or None)")
        if limit is not None and query_limit is not None and query_limit > limit:
            raise ConfigurationLimitExceeded(
                f"query_memory_limit ({query_limit}) exceeds "
                f"memory_limit ({limit})"
            )
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.limit = limit
        self.query_limit = query_limit
        self.queue_depth = queue_depth
        self.grant_timeout_ms = grant_timeout_ms
        self.faults = faults if faults is not None else NO_MEMORY_FAULTS
        self.spill = SpillManager(spill_dir)
        self._cond = threading.Condition()
        self._grant_ids = 0
        self._reserved_total = 0
        self._waiting = 0
        self._active: dict[int, MemoryGrant] = {}
        #: lifetime counters (server stats)
        self.stats = {
            "grants": 0,
            "queued": 0,
            "shed": 0,
            "spills": 0,
            "peak_reserved_bytes": 0,
        }

    # -- admission -----------------------------------------------------------

    @property
    def reserved_total(self) -> int:
        with self._cond:
            return self._reserved_total

    @property
    def active_grants(self) -> int:
        with self._cond:
            return len(self._active)

    def _admission_bytes(self) -> int:
        """Bytes carved out of the pool at admission."""
        if self.limit is None:
            return 0
        if self.query_limit is not None:
            return self.query_limit
        return 0  # pay-as-you-go: reservations draw from the pool directly

    def begin_query(
        self,
        deadline: Optional[float] = None,
        cancel_event: Optional[threading.Event] = None,
    ) -> MemoryGrant:
        """Admit one query, waiting on the bounded grant queue if needed."""
        base = self._admission_bytes()
        wait_deadline = deadline
        if self.grant_timeout_ms is not None:
            grant_deadline = time.monotonic() + self.grant_timeout_ms / 1000.0
            wait_deadline = (
                grant_deadline
                if wait_deadline is None
                else min(wait_deadline, grant_deadline)
            )
        with self._cond:
            queued = False
            while (
                base
                and self.limit is not None
                and self._reserved_total + base > self.limit
            ):
                if not queued:
                    if self._waiting >= self.queue_depth:
                        self.stats["shed"] += 1
                        raise OutOfMemory(
                            "memory grant queue is full "
                            f"({self.queue_depth} waiters); retry shortly"
                        )
                    queued = True
                    self._waiting += 1
                    self.stats["queued"] += 1
                if cancel_event is not None and cancel_event.is_set():
                    self._waiting -= 1
                    from repro.errors import QueryCancelled

                    raise QueryCancelled(
                        "query cancelled while waiting for a memory grant"
                    )
                timeout = 0.05
                if wait_deadline is not None:
                    remaining = wait_deadline - time.monotonic()
                    if remaining <= 0:
                        self._waiting -= 1
                        self.stats["shed"] += 1
                        raise OutOfMemory(
                            "timed out waiting for a memory grant "
                            f"({self._reserved_total} of {self.limit} "
                            "bytes reserved); retry shortly"
                        )
                    timeout = min(timeout, remaining)
                self._cond.wait(timeout)
            if queued:
                self._waiting -= 1
            self._grant_ids += 1
            grant = MemoryGrant(self, self._grant_ids, base)
            self._reserved_total += base
            self._note_peak()
            self._active[grant.grant_id] = grant
            self.stats["grants"] += 1
        return grant

    def end_query(self, grant: MemoryGrant) -> None:
        """Release the grant's bytes and reclaim its spill files."""
        if grant.closed:
            return
        grant.closed = True
        self.spill.release_grant(grant.grant_id)
        with self._cond:
            held = grant.base_bytes + max(
                0, grant.reserved_bytes - grant.base_bytes
            )
            self._reserved_total -= held
            grant.reserved_bytes = 0
            self._active.pop(grant.grant_id, None)
            if grant.spill_events:
                self.stats["spills"] += 1
            self._cond.notify_all()

    # -- reservations --------------------------------------------------------

    def _note_peak(self) -> None:
        if self._reserved_total > self.stats["peak_reserved_bytes"]:
            self.stats["peak_reserved_bytes"] = self._reserved_total

    def _reserve(
        self, grant: MemoryGrant, nbytes: int, point: str, degradable: bool
    ) -> bool:
        nbytes = self.faults.scaled(int(nbytes))
        if self.faults.on_allocation(point, nbytes):
            if degradable:
                return False
            raise OutOfMemory(
                f"injected allocation denial at {point!r} ({nbytes} bytes)"
            )
        with self._cond:
            over_query = (
                self.query_limit is not None
                and grant.reserved_bytes + nbytes > self.query_limit
            )
            # bytes beyond the admission carve-out draw from the pool
            pool_draw = max(
                0, grant.reserved_bytes + nbytes - grant.base_bytes
            ) - max(0, grant.reserved_bytes - grant.base_bytes)
            over_global = (
                self.limit is not None
                and self._reserved_total + pool_draw > self.limit
            )
            if over_query or over_global:
                if degradable:
                    return False
                if over_query:
                    raise ConfigurationLimitExceeded(
                        f"allocation of {nbytes} bytes at {point!r} would "
                        f"bring the query to "
                        f"{grant.reserved_bytes + nbytes} bytes, over "
                        f"query_memory_limit ({self.query_limit} bytes); "
                        "raise the limit to run this query"
                    )
                raise OutOfMemory(
                    f"allocation of {nbytes} bytes at {point!r} would bring "
                    f"the pool to {self._reserved_total + pool_draw} bytes, "
                    f"over the global memory_limit ({self.limit} bytes); "
                    "retry shortly"
                )
            grant.reserved_bytes += nbytes
            self._reserved_total += pool_draw
            if grant.reserved_bytes > grant.peak_bytes:
                grant.peak_bytes = grant.reserved_bytes
            self._note_peak()
            return True

    def _release(self, grant: MemoryGrant, nbytes: int) -> None:
        nbytes = self.faults.scaled(int(nbytes))
        with self._cond:
            nbytes = min(nbytes, grant.reserved_bytes)
            before = max(0, grant.reserved_bytes - grant.base_bytes)
            grant.reserved_bytes -= nbytes
            after = max(0, grant.reserved_bytes - grant.base_bytes)
            self._reserved_total -= before - after
            self._cond.notify_all()

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "limit": self.limit,
                "query_limit": self.query_limit,
                "reserved_bytes": self._reserved_total,
                "active_grants": len(self._active),
                "waiting": self._waiting,
                "total_spilled_bytes": self.spill.total_spilled_bytes,
                **self.stats,
            }

    def close(self) -> None:
        self.spill.close()
