"""Frame-aware TCP fault proxy for chaos-testing the wire layer.

:class:`FaultProxy` sits between a client (a query connection or a
replica's replication stream) and an upstream
:class:`~repro.sqldb.server.DatabaseServer`, parsing the protocol's
4-byte length-prefixed frames off each direction and acting out the
decisions of a :class:`~repro.sqldb.faults.NetworkFaultInjector`:
dropped frames, back-to-back duplicates, torn frames (a prefix of the
bytes followed by a dead connection), delivery delays, and full
partitions.  Because the proxy understands framing, every injected
fault lands on a *message* boundary-or-worse — precisely the failure
shapes the replication stream's seq/ack/reconnect machinery and the
client's retry loops must absorb.

The proxy is transparent: point the downstream side at
``proxy.address`` instead of the server's own, and nothing else
changes.  Tests drive topology faults through it::

    proxy = FaultProxy(primary.address, faults=NetworkFaultInjector(
        seed=7, drop=0.02, duplicate=0.02, tear=0.01)).start()
    replica = Replica(proxy.address).start()
    ...
    proxy.faults.partition()      # blackhole the link
    proxy.kill_links()            # or reset every connection outright
    proxy.faults.heal()
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Optional

from repro.sqldb.faults import NetworkFaultInjector

__all__ = ["FaultProxy"]

_HEADER = struct.Struct(">I")

#: frames with a larger declared payload are forwarded unparsed-length
#: sanity failures — the link is reset (a confused peer, not a fault)
_MAX_FRAME_BYTES = 64 * 1024 * 1024


def _close_quietly(sock: Optional[socket.socket]) -> None:
    if sock is None:
        return
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 65536))
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _Link:
    """One proxied connection: client socket, upstream socket, two pumps."""

    def __init__(self, proxy: "FaultProxy", client: socket.socket,
                 upstream: socket.socket) -> None:
        self.proxy = proxy
        self.client = client
        self.upstream = upstream
        self._dead = threading.Event()
        self.threads = [
            threading.Thread(
                target=self._pump, args=(client, upstream, "c2s"),
                name="repro-faultproxy-c2s", daemon=True,
            ),
            threading.Thread(
                target=self._pump, args=(upstream, client, "s2c"),
                name="repro-faultproxy-s2c", daemon=True,
            ),
        ]

    def start(self) -> None:
        for thread in self.threads:
            thread.start()

    def kill(self) -> None:
        if self._dead.is_set():
            return
        self._dead.set()
        _close_quietly(self.client)
        _close_quietly(self.upstream)
        self.proxy._forget(self)

    def _pump(self, src: socket.socket, dst: socket.socket,
              direction: str) -> None:
        faults = self.proxy.faults
        try:
            while not self._dead.is_set():
                header = _recv_exact(src, _HEADER.size)
                if header is None:
                    break
                (length,) = _HEADER.unpack(header)
                if length > _MAX_FRAME_BYTES:
                    break  # not a protocol frame; reset the link
                payload = _recv_exact(src, length) if length else b""
                if payload is None and length:
                    break
                frame = header + (payload or b"")
                action, delay_s = faults.decide(direction)
                if delay_s:
                    time.sleep(delay_s)
                if action == "drop":
                    continue
                if action == "tear":
                    try:
                        dst.sendall(frame[: faults.tear_point(len(frame))])
                    except OSError:
                        pass
                    break  # the link dies mid-frame
                try:
                    dst.sendall(frame)
                    if action == "duplicate":
                        dst.sendall(frame)
                except OSError:
                    break
        finally:
            self.kill()


class FaultProxy:
    """Length-prefix-aware TCP proxy applying injected network faults."""

    def __init__(
        self,
        upstream: tuple[str, int],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        faults: Optional[NetworkFaultInjector] = None,
        connect_timeout_s: float = 5.0,
    ) -> None:
        self.upstream = (str(upstream[0]), int(upstream[1]))
        self.host = host
        self._requested_port = port
        self.faults = faults if faults is not None else NetworkFaultInjector()
        self.connect_timeout_s = connect_timeout_s
        self._listener: Optional[socket.socket] = None
        self._acceptor: Optional[threading.Thread] = None
        self._mutex = threading.Lock()
        self._links: set[_Link] = set()
        self._closed = False

    @property
    def port(self) -> int:
        if self._listener is None:
            return self._requested_port
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "FaultProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(16)
        self._listener = listener
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-faultproxy-accept",
            daemon=True,
        )
        self._acceptor.start()
        return self

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                upstream = socket.create_connection(
                    self.upstream, timeout=self.connect_timeout_s
                )
            except OSError:
                _close_quietly(client)
                continue
            upstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            link = _Link(self, client, upstream)
            with self._mutex:
                if self._closed:
                    link.kill()
                    continue
                self._links.add(link)
            link.start()

    def _forget(self, link: _Link) -> None:
        with self._mutex:
            self._links.discard(link)

    @property
    def active_links(self) -> int:
        with self._mutex:
            return len(self._links)

    def kill_links(self) -> None:
        """Reset every proxied connection (both sockets, mid-whatever)."""
        with self._mutex:
            links = list(self._links)
        for link in links:
            link.kill()

    def close(self) -> None:
        with self._mutex:
            self._closed = True
        if self._listener is not None:
            _close_quietly(self._listener)
        self.kill_links()
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
