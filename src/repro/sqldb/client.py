"""PEP 249 client driver for the socket server (the remote psycopg2).

``connect(host, port)`` opens a TCP connection to a
:class:`~repro.sqldb.server.DatabaseServer`, performs the versioned
handshake and returns a :class:`RemoteConnection` exposing the same
DB-API surface as :mod:`repro.sqldb.dbapi` — ``cursor()``, ``execute``/
``executemany``/``fetch*``, ``begin``/``commit``/``rollback``, context
managers — so code written against the in-process adapter runs over the
wire unchanged.

Server-side errors arrive as typed frames and are re-raised as the same
combined engine/PEP-249 exception classes the in-process adapter raises
(``except SerializationFailure`` and SQLSTATE-based retry loops work
identically).  Losing the connection — EOF, reset, torn frame — raises
:class:`~repro.sqldb.dbapi.InterfaceError` and marks the connection
closed.

``RemoteConnection.cancel()`` is out-of-band and safe from any thread:
it opens a second short-lived connection presenting the secret cancel
key from the handshake, which the server maps to
``Database.cancel(session=...)`` — the running statement observes the
flag at its next cooperative checkpoint and fails with SQLSTATE 57014.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Optional, Sequence

from repro.errors import ProtocolViolation, SQLError
from repro.sqldb import dbapi
from repro.sqldb.engine import Result
from repro.sqldb.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    exception_from_wire,
    recv_frame,
    result_from_wire,
    send_frame,
)

__all__ = ["connect", "RemoteConnection", "RemoteCursor"]

#: SQLSTATEs whose error frame is the server's goodbye: the connection
#: is torn down right after (idle timeout, drain shutdown).  The client
#: marks itself closed so the *next* execute/fetch raises a clean
#: ``InterfaceError("connection is closed")`` instead of tripping over
#: the dead socket.
CONNECTION_FATAL_SQLSTATES = frozenset(
    {
        "57P05",  # idle_session_timeout
        "57P01",  # admin_shutdown (drain)
    }
)


class RemoteCursor:
    """DB-API cursor over a :class:`RemoteConnection`.

    Mirrors :class:`repro.sqldb.dbapi.Cursor`, including the error-state
    contract: after an ``execute`` that raised, every fetch raises
    :class:`~repro.sqldb.dbapi.InterfaceError` instead of serving the
    previous statement's stale rows."""

    def __init__(self, connection: "RemoteConnection") -> None:
        self._connection = connection
        self._result: Optional[Result] = None
        self._position = 0
        self._failed = False
        self.arraysize = 1

    @property
    def description(self) -> Optional[list[tuple]]:
        if self._result is None or not self._result.columns:
            return None
        return [
            (name, None, None, None, None, None, None)
            for name in self._result.columns
        ]

    @property
    def rowcount(self) -> int:
        return -1 if self._result is None else self._result.rowcount

    def execute(
        self, sql: str, parameters: Sequence[Any] | None = None
    ) -> "RemoteCursor":
        try:
            results = self._connection.run_script(sql, parameters)
        except Exception:
            self._result = None
            self._position = 0
            self._failed = True
            raise
        self._result = results[-1] if results else None
        self._position = 0
        self._failed = False
        return self

    def executemany(
        self, sql: str, seq_of_parameters: Sequence[Sequence[Any]]
    ) -> "RemoteCursor":
        try:
            total = self._connection.executemany(sql, seq_of_parameters)
        except Exception:
            self._result = None
            self._position = 0
            self._failed = True
            raise
        self._result = Result(rowcount=total)
        self._position = 0
        self._failed = False
        return self

    def _check_fetchable(self) -> None:
        if self._failed:
            raise dbapi.InterfaceError(
                "the last execute on this cursor failed; "
                "no results to fetch"
            )

    def fetchone(self) -> Optional[tuple]:
        self._check_fetchable()
        if self._result is None or self._position >= len(self._result.rows):
            return None
        row = self._result.rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._check_fetchable()
        size = size or self.arraysize
        out = []
        for _ in range(size):
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self) -> list[tuple]:
        self._check_fetchable()
        if self._result is None:
            return []
        rows = self._result.rows[self._position :]
        self._position = len(self._result.rows)
        return rows

    def close(self) -> None:
        self._result = None
        self._failed = False

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RemoteConnection:
    """One client connection to a :class:`DatabaseServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        auth_token: Optional[str] = None,
        connect_timeout: float = 10.0,
        statement_timeout_ms: Optional[float] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self._max_frame_bytes = max_frame_bytes
        self._mutex = threading.RLock()
        self._closed = False
        self._in_transaction = False
        self.cancel_key: Optional[str] = None
        self.session_id: Optional[int] = None
        self.server_profile: Optional[str] = None
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise dbapi.InterfaceError(
                f"could not connect to {host}:{port}: {exc}"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello: dict = {"type": "hello", "version": PROTOCOL_VERSION}
        if auth_token is not None:
            hello["auth"] = auth_token
        options: dict = {}
        if statement_timeout_ms is not None:
            options["statement_timeout_ms"] = statement_timeout_ms
        if options:
            hello["options"] = options
        try:
            # a shed server may close before reading the hello — still try
            # to read its typed refusal frame below
            try:
                send_frame(self._sock, hello)
            except OSError:
                pass
            reply = self._recv()
        except dbapi.Error:
            self._abandon()
            raise
        if reply.get("type") != "hello_ok":
            self._abandon()
            raise dbapi.InterfaceError(
                f"unexpected handshake reply {reply.get('type')!r}"
            )
        self.cancel_key = reply.get("cancel_key")
        self.session_id = reply.get("session_id")
        self.server_profile = reply.get("profile")
        self._sock.settimeout(None)

    # -- transport ----------------------------------------------------------

    def _abandon(self) -> None:
        """Drop the socket and mark the connection dead (transport-level
        failure; there is nothing to say goodbye to)."""
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def _recv(self) -> dict:
        """One reply frame, with transport and server errors raised as
        the proper exception classes."""
        try:
            reply = recv_frame(self._sock, self._max_frame_bytes)
        except ProtocolViolation as exc:
            self._abandon()
            raise dbapi.InterfaceError(
                f"server connection lost: {exc}"
            ) from exc
        except OSError as exc:
            self._abandon()
            raise dbapi.InterfaceError(
                f"server connection lost: {exc}"
            ) from exc
        if reply is None:
            self._abandon()
            raise dbapi.InterfaceError(
                "server closed the connection unexpectedly"
            )
        if reply["type"] == "error":
            # a failed statement can still change transaction state
            # (e.g. a COMMIT losing first-committer-wins aborts the txn)
            if "in_transaction" in reply:
                self._in_transaction = bool(reply["in_transaction"])
            exc = exception_from_wire(reply)
            if exc.sqlstate in CONNECTION_FATAL_SQLSTATES:
                # the server closes the connection right after this
                # frame; treat it as dead now rather than discovering a
                # broken socket on the next request
                self._abandon()
            raise dbapi.map_exception(exc)
        return reply

    def _request(self, message: dict) -> dict:
        with self._mutex:
            if self._closed:
                raise dbapi.InterfaceError("connection is closed")
            try:
                send_frame(self._sock, message)
            except OSError as exc:
                self._abandon()
                raise dbapi.InterfaceError(
                    f"server connection lost: {exc}"
                ) from exc
            reply = self._recv()
        if "in_transaction" in reply:
            self._in_transaction = bool(reply["in_transaction"])
        return reply

    # -- DB-API surface ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_transaction(self) -> bool:
        return self._in_transaction

    def cursor(self) -> RemoteCursor:
        if self._closed:
            raise dbapi.InterfaceError("connection is closed")
        return RemoteCursor(self)

    def run_script(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> list[Result]:
        """Execute a ``;``-script server-side; one :class:`Result` each."""
        reply = self._request(
            {
                "type": "query",
                "sql": sql,
                "params": list(params) if params is not None else None,
            }
        )
        return [result_from_wire(r) for r in reply.get("results", ())]

    def executemany(
        self, sql: str, seq_of_parameters: Sequence[Sequence[Any]]
    ) -> int:
        reply = self._request(
            {
                "type": "executemany",
                "sql": sql,
                "params_seq": [list(row) for row in seq_of_parameters],
            }
        )
        return int(reply.get("rowcount", 0))

    def begin(self) -> None:
        self._request({"type": "begin"})

    def commit(self) -> None:
        self._request({"type": "commit"})

    def rollback(self) -> None:
        self._request({"type": "rollback"})

    def reset(self) -> None:
        """Ask the server to drop every relation (test/bench servers)."""
        self._request({"type": "reset"})

    def server_stats(self) -> dict:
        """Plan-cache / operator / server counters of the remote engine."""
        return self._request({"type": "stats"})

    def memory_stats(self) -> dict:
        """The server's memory-broker snapshot plus this connection's
        peak/spilled/shed counters (empty when the server runs without
        a memory governor)."""
        return dict(self.server_stats().get("memory") or {})

    def explain_analyze(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> str:
        reply = self._request(
            {
                "type": "explain_analyze",
                "sql": sql,
                "params": list(params) if params is not None else None,
            }
        )
        return reply.get("text", "")

    def analyze(self, table: Optional[str] = None) -> list[str]:
        reply = self._request({"type": "analyze", "table": table})
        return list(reply.get("names", ()))

    def promote(self) -> dict:
        """Promote the server this connection points at (a streaming
        replica) to primary; returns ``{"commit_id": ...}`` — the commit
        id the node serves writes from.  Raises on a server that has no
        promotion hook (a plain primary)."""
        reply = self._request({"type": "promote"})
        return {"commit_id": int(reply.get("commit_id", 0))}

    def replica_status(self) -> dict:
        """Replication status of the server: role, applied/streamed
        commit positions, per-subscriber lag (primary) or upstream lag
        (replica)."""
        return self._request({"type": "replica_status"})

    def cancel(self) -> None:
        """Out-of-band cancel of this connection's in-flight statement
        (safe from any thread; a no-op if the server is unreachable)."""
        if self.cancel_key is None:
            return
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=5.0
            ) as sock:
                send_frame(
                    sock, {"type": "cancel", "key": self.cancel_key}
                )
                recv_frame(sock, self._max_frame_bytes)
        except (OSError, ProtocolViolation, SQLError):
            pass

    def close(self) -> None:
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            try:
                send_frame(self._sock, {"type": "close"})
                self._sock.settimeout(2.0)
                recv_frame(self._sock, self._max_frame_bytes)
            except (OSError, ProtocolViolation, SQLError):
                pass
            finally:
                try:
                    self._sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def connect(
    host: str = "127.0.0.1",
    port: int = 5433,
    auth_token: Optional[str] = None,
    connect_timeout: float = 10.0,
    statement_timeout_ms: Optional[float] = None,
) -> RemoteConnection:
    """Open a DB-API connection to a running
    :class:`~repro.sqldb.server.DatabaseServer`.

    ``statement_timeout_ms`` asks the server to arm a per-statement
    cooperative timeout for this connection (overriding the server's
    default); admission rejection raises an error with the *retryable*
    SQLSTATE 53300, which :func:`repro.core.connectors.retry_backoff`
    re-attempts."""
    return RemoteConnection(
        host,
        port,
        auth_token=auth_token,
        connect_timeout=connect_timeout,
        statement_timeout_ms=statement_timeout_ms,
    )
