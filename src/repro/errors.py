"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FrameError(ReproError):
    """Errors raised by the dataframe substrate (``repro.frame``)."""


class LearnError(ReproError):
    """Errors raised by the ML substrate (``repro.learn``)."""


class NotFittedError(LearnError):
    """A transformer/estimator was used before ``fit`` was called."""


class SQLError(ReproError):
    """Base class for errors raised by the SQL engine (``repro.sqldb``)."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenised or parsed."""


class SQLBindError(SQLError):
    """A name (table, column, function) could not be resolved."""


class SQLExecutionError(SQLError):
    """A runtime failure while executing a query plan."""


class CatalogError(SQLError):
    """Catalog violations: duplicate or missing tables/views."""


class InspectionError(ReproError):
    """Errors raised by the inspection framework (``repro.inspection``)."""


class TranslationError(ReproError):
    """The SQL backend could not translate a pipeline operation."""
