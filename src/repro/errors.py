"""Exception hierarchy shared across the repro package.

SQL-side errors carry a PostgreSQL-style SQLSTATE code in ``sqlstate``
(class-level default, overridable per raise via the ``sqlstate`` keyword),
so callers can branch on error class *or* on the five-character code the
way psycopg2 users do.  The DB-API adapter (:mod:`repro.sqldb.dbapi`)
maps this hierarchy onto the PEP 249 ``Error`` classes.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FrameError(ReproError):
    """Errors raised by the dataframe substrate (``repro.frame``)."""


class LearnError(ReproError):
    """Errors raised by the ML substrate (``repro.learn``)."""


class NotFittedError(LearnError):
    """A transformer/estimator was used before ``fit`` was called."""


class SQLError(ReproError):
    """Base class for errors raised by the SQL engine (``repro.sqldb``)."""

    #: PostgreSQL-style SQLSTATE code (class default; per-instance override
    #: via the ``sqlstate`` keyword)
    sqlstate = "XX000"  # internal_error

    def __init__(self, *args, sqlstate: str | None = None) -> None:
        super().__init__(*args)
        if sqlstate is not None:
            self.sqlstate = sqlstate


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenised or parsed."""

    sqlstate = "42601"  # syntax_error


class SQLBindError(SQLError):
    """A name (table, column, function) could not be resolved."""

    sqlstate = "42703"  # undefined_column


class SQLExecutionError(SQLError):
    """A runtime failure while executing a query plan."""

    sqlstate = "22000"  # data_exception


class UniqueViolation(SQLExecutionError):
    """A DML statement (or CREATE UNIQUE INDEX over existing rows) would
    leave duplicate keys in a unique index."""

    sqlstate = "23505"  # unique_violation


class CatalogError(SQLError):
    """Catalog violations: duplicate or missing tables/views."""

    sqlstate = "42P01"  # undefined_table


class TransactionError(SQLError):
    """Invalid transaction state: BEGIN inside a transaction, COMMIT or
    SAVEPOINT outside one, ROLLBACK TO an unknown savepoint."""

    sqlstate = "25000"  # invalid_transaction_state


class TransactionRollback(SQLError):
    """Base of the retryable rollback family (PostgreSQL class 40).

    The transaction was aborted by the engine, not by a mistake in the
    SQL: re-running the whole transaction on a fresh snapshot is the
    documented remedy, and the connector layer does so automatically for
    these SQLSTATEs."""

    sqlstate = "40000"  # transaction_rollback


class SerializationFailure(TransactionRollback):
    """First-committer-wins conflict: another transaction committed a
    write to a relation in this transaction's write (or DDL read) set
    after this transaction's snapshot was taken."""

    sqlstate = "40001"  # serialization_failure


class DeadlockDetected(TransactionRollback):
    """The wait-for graph of table-lock waits contains a cycle through
    this session; this transaction was chosen as the victim and
    aborted (its locks are released immediately)."""

    sqlstate = "40P01"  # deadlock_detected


class QueryCancelled(SQLError):
    """A statement was cancelled — statement timeout or explicit
    :meth:`~repro.sqldb.engine.Database.cancel` — at a cooperative
    checkpoint (operator or morsel boundary)."""

    sqlstate = "57014"  # query_canceled


class DurabilityError(SQLError):
    """Write-ahead log or checkpoint failure: unreadable/corrupt files,
    unserialisable redo records, or a replay that no longer applies."""

    sqlstate = "58030"  # io_error


class ProtocolViolation(SQLError):
    """The network peer sent a malformed, oversized or out-of-order wire
    frame (bad length prefix, invalid JSON, disconnect mid-frame, or a
    message type the protocol state does not allow)."""

    sqlstate = "08P01"  # protocol_violation


class AuthenticationError(SQLError):
    """The client's handshake carried a missing or wrong auth token."""

    sqlstate = "28000"  # invalid_authorization_specification


class TooManyConnections(SQLError):
    """The server shed this connection at admission: every worker slot
    was taken.  Deliberately *retryable* — the client backoff loop
    reconnects once load drops, like PostgreSQL's 53300."""

    sqlstate = "53300"  # too_many_connections


class AdminShutdown(SQLError):
    """The server is draining for shutdown and no longer accepts new
    statements on this connection; open transactions are rolled back."""

    sqlstate = "57P01"  # admin_shutdown


class ReadOnlySQLTransaction(SQLError):
    """A write statement reached a read-only database — a streaming
    replica serving reads.  Deliberately *retryable*: a client that held
    a stale topology (its primary was just promoted elsewhere, or this
    node was just demoted) should re-probe and re-route the write rather
    than fail outright."""

    sqlstate = "25006"  # read_only_sql_transaction


class CannotConnectNow(SQLError):
    """No endpoint of a replicated topology currently accepts this
    request — the primary is gone and a promotion has not completed yet.
    Deliberately *retryable*: the client backoff loop re-probes the
    topology until the promoted node starts taking writes (PostgreSQL
    raises 57P03 while a server is starting up, the same wait-and-retry
    shape)."""

    sqlstate = "57P03"  # cannot_connect_now


class OutOfMemory(SQLError):
    """The engine's global memory budget is exhausted: the grant queue
    timed out (or overflowed) at admission, or a non-degradable
    allocation could not be served from the shared pool mid-query.
    Deliberately *retryable* — peers finishing their statements release
    their grants, so backing off and re-running is the documented remedy
    (PostgreSQL's 53200 carries the same advice under work_mem
    pressure)."""

    sqlstate = "53200"  # out_of_memory


class ConfigurationLimitExceeded(SQLError):
    """A single query's irreducible memory requirement — after every
    degradation path (external sort, partitioned join/aggregate) has
    been applied — exceeds the configured per-query limit.  Retrying
    against the same configuration cannot succeed, but the connector
    still treats it as retryable so a topology with mixed limits (or an
    operator raising the limit) recovers without client changes."""

    sqlstate = "53400"  # configuration_limit_exceeded


class InspectionError(ReproError):
    """Errors raised by the inspection framework (``repro.inspection``)."""


class TranslationError(ReproError):
    """The SQL backend could not translate a pipeline operation."""
