"""Tests for the synthetic dataset generators (Table 2 schemas)."""

import csv

import pytest

from repro.datasets import (
    ADULT_COLUMNS,
    COMPAS_COLUMNS,
    TAXI_COLUMNS,
    generate_adult,
    generate_compas,
    generate_healthcare,
    generate_taxi,
)
from repro.frame import read_csv


def _header(path):
    with open(path) as handle:
        return next(csv.reader(handle))


class TestHealthcare:
    @pytest.fixture(scope="class")
    def paths(self, tmp_path_factory):
        return generate_healthcare(
            str(tmp_path_factory.mktemp("hc")), n_patients=120, seed=3
        )

    def test_schemas_match_table2(self, paths):
        assert _header(paths["patients"]) == [
            "id", "first_name", "last_name", "race", "county",
            "num_children", "income", "age_group", "ssn",
        ]
        assert _header(paths["histories"]) == ["smoker", "complications", "ssn"]

    def test_row_counts(self, paths):
        patients = read_csv(paths["patients"], na_values="?")
        histories = read_csv(paths["histories"], na_values="?")
        assert len(patients) == 120
        assert len(histories) >= 120  # orphans make the join non-trivial

    def test_join_covers_all_patients(self, paths):
        patients = read_csv(paths["patients"], na_values="?")
        histories = read_csv(paths["histories"], na_values="?")
        merged = patients.merge(histories, on=["ssn"])
        assert len(merged) == 120

    def test_smoker_has_missing_values(self, paths):
        histories = read_csv(paths["histories"], na_values="?")
        assert histories["smoker"].isnull().values.any()

    def test_ssn_stays_textual(self, paths):
        patients = read_csv(paths["patients"], na_values="?")
        assert patients["ssn"].dtype == object

    def test_deterministic_given_seed(self, tmp_path):
        a = generate_healthcare(str(tmp_path / "a"), 50, seed=7)
        b = generate_healthcare(str(tmp_path / "b"), 50, seed=7)
        assert open(a["patients"]).read() == open(b["patients"]).read()

    def test_county_age_correlation_present(self, paths):
        """The documented bias driver: older groups live in the counties
        of interest."""
        patients = read_csv(paths["patients"], na_values="?")
        selected = patients[patients["county"].isin(["county2", "county3"])]
        young = (patients["age_group"] == "age_group_1").values.mean()
        young_selected = (selected["age_group"] == "age_group_1").values.mean()
        assert young_selected < young


class TestCompas:
    @pytest.fixture(scope="class")
    def paths(self, tmp_path_factory):
        return generate_compas(
            str(tmp_path_factory.mktemp("compas")), n_train=150, n_test=50, seed=0
        )

    def test_full_wide_schema(self, paths):
        assert _header(paths["train"]) == COMPAS_COLUMNS
        assert len(COMPAS_COLUMNS) > 40  # Table 2's wide schema

    def test_row_number_index_column(self, paths):
        frame = read_csv(paths["train"], na_values="?")
        assert list(frame.index[:3]) == [0, 1, 2]
        assert frame.columns == COMPAS_COLUMNS

    def test_pipeline_relevant_values(self, paths):
        frame = read_csv(paths["train"], na_values="?")
        assert set(frame["score_text"].unique()) <= {
            "Low", "Medium", "High", "N/A",
        }
        assert set(frame["c_charge_degree"].unique()) <= {"F", "M", "O"}
        assert -1 in frame["is_recid"].unique()

    def test_score_correlates_with_recidivism(self, paths):
        frame = read_csv(paths["train"], na_values="?")
        high = frame[frame["score_text"] == "High"]
        low = frame[frame["score_text"] == "Low"]
        assert high["is_recid"].mean() > low["is_recid"].mean()


class TestAdult:
    @pytest.fixture(scope="class")
    def paths(self, tmp_path_factory):
        return generate_adult(
            str(tmp_path_factory.mktemp("adult")), n_train=300, n_test=100, seed=0
        )

    def test_schema(self, paths):
        assert _header(paths["train"]) == ADULT_COLUMNS

    def test_missing_marker_is_question_mark(self, paths):
        frame = read_csv(paths["train"], na_values="?")
        assert frame["workclass"].isnull().values.any()

    def test_income_labels_binary(self, paths):
        frame = read_csv(paths["train"], na_values="?")
        assert set(frame["income-per-year"].unique()) == {"<=50K", ">50K"}

    def test_income_correlates_with_education(self, paths):
        frame = read_csv(paths["train"], na_values="?")
        rich = frame[frame["income-per-year"] == ">50K"]
        poor = frame[frame["income-per-year"] == "<=50K"]
        assert rich["education-num"].mean() > poor["education-num"].mean()


class TestTaxi:
    def test_schema_and_size(self, tmp_path):
        path = generate_taxi(str(tmp_path), n_rows=500, seed=0)
        assert _header(path) == TAXI_COLUMNS
        frame = read_csv(path)
        assert len(frame) == 500

    def test_selection_filters_majority(self, tmp_path):
        path = generate_taxi(str(tmp_path), n_rows=2000, seed=0)
        frame = read_csv(path)
        kept = frame[frame["passenger_count"] > 1]
        assert 0 < len(kept) < len(frame) * 0.5
