"""Differential query fuzzing for the statistics-driven rewrite layer.

A grammar-based generator produces random SELECTs (filters with mixed
conjuncts, inner/left joins up to three tables, group-by + having,
order-by, limit/offset) over random small tables, and every query must
return identical rows — same values, same nulls, same Python value
types — across seven engine configurations:

* the serial reference with the optimizer off,
* the optimizer on (serial), after ``ANALYZE``,
* the optimizer off with morsel-parallel execution (workers=4),
* the optimizer on with morsel-parallel execution (workers=4),
* the optimizer on with secondary indexes, whose set is churned by
  random CREATE/DROP INDEX between queries (index-aware access paths,
  index-nested-loop joins and plan-cache epoch invalidation all fire),
* the optimizer on with ML-model churn: random TRAIN / DROP MODEL
  statements (plus DML on a scratch table feeding a TRAIN) interleave
  with the compared queries — training reads the shared tables and
  bumps catalog versions, so it must never perturb query results,
* the memory governor with every degradable grant denied: sorts,
  hash-join builds, aggregate and DISTINCT hash tables all take the
  spill-to-disk path (external sort, Grace partitioned join,
  partitioned aggregation), which must stay byte-identical to the
  in-memory operators.

Queries whose ORDER BY covers every output column compare as exact
sequences; all others compare as sorted multisets (the rewrite layer is
allowed to change row order only where SQL does not pin one).

The default round budget keeps this inside tier-1; CI's long run passes
``--fuzz-rounds 200`` (or more).  ``SEED_CORPUS`` replays hand-picked
regressions — queries that exercise every rewrite rule plus past fuzz
failures — on a fixed dataset.  The hypothesis test adds shrinking: when
a random dataset breaks a query, hypothesis minimises the table contents.
"""

import random
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SQLExecutionError
from repro.sqldb import Database
from repro.sqldb.memory import MemoryFaultInjector

pytestmark = pytest.mark.fuzz

PROFILES = ["postgres", "umbra"]
_PROFILE_SALT = {"postgres": 0, "umbra": 1}


@pytest.fixture
def fuzz_rounds(request):
    value = request.config.getoption("--fuzz-rounds")
    return value if value is not None else 30


# -- data ---------------------------------------------------------------------


def _random_tables(rng):
    def num_col(n):
        return [
            rng.choice([None, rng.randint(-50, 50), 0.5, -2.25, 7.75])
            for _ in range(n)
        ]

    def text_col(n):
        return [rng.choice([None, "a", "b", "c", "d"]) for _ in range(n)]

    nt = rng.randint(0, 30)
    nu = rng.randint(0, 20)
    nw = rng.randint(0, 15)
    t_rows = (num_col(nt), num_col(nt), text_col(nt))
    u_rows = (num_col(nu), text_col(nu))
    w_rows = (num_col(nw), num_col(nw))
    return t_rows, u_rows, w_rows


def _load_tables(db, t_rows, u_rows, w_rows=((), ())):
    db.execute("CREATE TABLE t (a double precision, b double precision, s text)")
    db.execute("CREATE TABLE u (a double precision, v text)")
    db.execute("CREATE TABLE w (a double precision, m double precision)")
    if t_rows[0]:
        db.catalog.table("t").append_columns(
            {"a": list(t_rows[0]), "b": list(t_rows[1]), "s": list(t_rows[2])},
            len(t_rows[0]),
        )
    if u_rows[0]:
        db.catalog.table("u").append_columns(
            {"a": list(u_rows[0]), "v": list(u_rows[1])}, len(u_rows[0])
        )
    if w_rows[0]:
        db.catalog.table("w").append_columns(
            {"a": list(w_rows[0]), "m": list(w_rows[1])}, len(w_rows[0])
        )
    db.catalog.bump_version()


#: (index name, CREATE statement) pool the fuzz loop churns through; no
#: unique indexes — the random data is full of duplicates
_INDEX_POOL = [
    ("idx_t_a", "CREATE INDEX idx_t_a ON t (a)"),
    ("idx_t_s", "CREATE INDEX idx_t_s ON t USING hash (s)"),
    ("idx_t_ab", "CREATE INDEX idx_t_ab ON t (a, b)"),
    ("idx_u_a", "CREATE INDEX idx_u_a ON u (a)"),
    ("idx_w_a", "CREATE INDEX idx_w_a ON w (a)"),
]


def _churn_indexes(db, rng):
    """Randomly create or drop one index from the pool (idempotent)."""
    name, create = rng.choice(_INDEX_POOL)
    if rng.random() < 0.5:
        db.execute(f"DROP INDEX IF EXISTS {name}")
    elif not db.catalog.has_index(name):
        db.execute(create)


#: TRAIN statements the model-churn config cycles through; cheap iteration
#: budgets — the point is interleaving, not convergence
_TRAIN_POOL = [
    "TRAIN fz_lin USING (SELECT a, b FROM t "
    "WHERE a IS NOT NULL AND b IS NOT NULL) "
    "WITH (estimator = 'linear_regression', max_iter = 2)",
    "TRAIN fz_tree USING (SELECT a, "
    "CASE WHEN b > 0 THEN 1 ELSE 0 END AS lbl FROM t WHERE a IS NOT NULL) "
    "WITH (estimator = 'decision_tree', max_depth = 2)",
    "TRAIN fz_scr USING (SELECT sa, sb FROM fz_scratch) "
    "WITH (estimator = 'linear_regression', max_iter = 1)",
]


def _churn_models(db, rng):
    """Random TRAIN / DROP MODEL / scratch-table DML on one config.

    Models train over the *shared* tables (and a private scratch table
    fed by DML here), so catalog-version bumps, plan-cache invalidation
    and the TRAIN read path all interleave with the compared queries.
    Degenerate datasets (no rows after filtering) are legal no-ops.
    """
    roll = rng.random()
    if roll < 0.3:
        db.execute(
            "DROP MODEL IF EXISTS "
            + rng.choice(["fz_lin", "fz_tree", "fz_scr"])
        )
        return
    if roll < 0.5:
        db.execute(
            "INSERT INTO fz_scratch VALUES (?, ?)",
            (float(rng.randint(-20, 20)), float(rng.randint(-20, 20))),
        )
        return
    try:
        db.execute(rng.choice(_TRAIN_POOL))
    except SQLExecutionError:
        pass  # empty training set — fine, nothing was trained


def _deny_all_degradable():
    """Every degradable memory grant is denied: spill paths always run."""
    return (
        MemoryFaultInjector()
        .deny("sort.buffer")
        .deny("join.build")
        .deny("agg.hashtable")
        .deny("distinct.hashtable")
    )


def _configs(profile, t_rows, u_rows, w_rows=((), ())):
    """(name, db) pairs: the serial/optimizer-off reference first."""
    configs = [
        ("reference", Database(profile)),
        ("opt-serial", Database(profile, optimize=True)),
        ("off-parallel", Database(profile, workers=4, morsel_size=5)),
        (
            "opt-parallel",
            Database(profile, workers=4, morsel_size=5, optimize=True),
        ),
        ("opt-indexed", Database(profile, optimize=True)),
        ("opt-models", Database(profile, optimize=True)),
        ("off-spill", Database(profile, memory_faults=_deny_all_degradable())),
    ]
    for name, db in configs:
        _load_tables(db, t_rows, u_rows, w_rows)
        if name == "opt-indexed":
            for _, create in _INDEX_POOL:
                db.execute(create)
        if name == "opt-models":
            db.execute(
                "CREATE TABLE fz_scratch "
                "(sa double precision, sb double precision)"
            )
        if name.startswith("opt"):
            db.analyze()  # unlocks the statistics-gated rewrites
    return configs


# -- query grammar ------------------------------------------------------------

_NUM_OPS = ["=", "<>", "<", "<=", ">", ">="]
_FOLDABLE = ["1 = 1", "2 > 3", "1 + 1 = 2", "NULL IS NULL", "5 BETWEEN 1 AND 10"]


def _num_lit(rng):
    return str(rng.choice([rng.randint(-30, 30), 0.5, -2.25, 7.75]))


def _text_lit(rng):
    return "'" + rng.choice(["a", "b", "c", "d"]) + "'"


def _predicate(rng, num_cols, text_cols, depth=0):
    roll = rng.random()
    if depth < 2 and roll < 0.20:
        op = rng.choice(["AND", "OR"])
        left = _predicate(rng, num_cols, text_cols, depth + 1)
        right = _predicate(rng, num_cols, text_cols, depth + 1)
        return f"({left} {op} {right})"
    if depth < 2 and roll < 0.27:
        return "NOT (" + _predicate(rng, num_cols, text_cols, depth + 1) + ")"
    kind = rng.randrange(6)
    if kind == 0:
        return f"{rng.choice(num_cols)} {rng.choice(_NUM_OPS)} {_num_lit(rng)}"
    if kind == 1:
        return f"{rng.choice(text_cols)} {rng.choice(['=', '<>'])} {_text_lit(rng)}"
    if kind == 2:
        col = rng.choice(num_cols + text_cols)
        negated = "NOT " if rng.random() < 0.5 else ""
        return f"{col} IS {negated}NULL"
    if kind == 3:
        items = ", ".join(_num_lit(rng) for _ in range(rng.randint(1, 4)))
        return f"{rng.choice(num_cols)} IN ({items})"
    if kind == 4:
        lo, hi = sorted(rng.randint(-30, 30) for _ in range(2))
        return f"{rng.choice(num_cols)} BETWEEN {lo} AND {hi}"
    return rng.choice(_FOLDABLE)


def _where(rng, num_cols, text_cols):
    n = rng.randint(0, 3)
    if n == 0:
        return ""
    parts = [_predicate(rng, num_cols, text_cols) for _ in range(n)]
    return " WHERE " + " AND ".join(parts)


def _generate_query(rng):
    """One random SELECT; returns ``(sql, ordered)`` where *ordered* means
    the ORDER BY covers every output column (exact-sequence comparison)."""
    shape = rng.randrange(5)
    if shape == 0:
        source, num_cols, text_cols = "t", ["a", "b"], ["s"]
    elif shape == 1:
        source = "t JOIN u ON t.a = u.a"
        num_cols, text_cols = ["t.a", "t.b", "u.a"], ["t.s", "u.v"]
    elif shape == 2:
        source = "t LEFT JOIN u ON t.a = u.a"
        num_cols, text_cols = ["t.a", "t.b", "u.a"], ["t.s", "u.v"]
    elif shape == 3:
        source = "t JOIN u ON t.a = u.a JOIN w ON t.a = w.a"
        num_cols = ["t.a", "t.b", "u.a", "w.m"]
        text_cols = ["t.s", "u.v"]
    else:
        source = "t JOIN u ON t.a = u.a LEFT JOIN w ON u.a = w.a"
        num_cols = ["t.a", "t.b", "u.a", "w.m"]
        text_cols = ["t.s", "u.v"]
    where = _where(rng, num_cols, text_cols)

    if rng.random() < 0.3:  # aggregation shape
        key = rng.choice(text_cols)
        measure = rng.choice(num_cols)
        having = " HAVING count(*) > 1" if rng.random() < 0.4 else ""
        sql = (
            f"SELECT {key} AS g, count(*) AS c, sum({measure}) AS s1, "
            f"min({measure}) AS lo, max({measure}) AS hi "
            f"FROM {source}{where} GROUP BY {key}{having} ORDER BY {key}"
        )
        return sql, True

    columns = rng.sample(num_cols + text_cols, rng.randint(1, 3))
    items = ", ".join(f"{col} AS c{i}" for i, col in enumerate(columns))
    sql = f"SELECT {items} FROM {source}{where}"
    ordered = rng.random() < 0.6
    if ordered:
        keys = ", ".join(
            col + rng.choice(["", " DESC"]) for col in columns
        )
        sql += f" ORDER BY {keys}"
        if rng.random() < 0.4:
            sql += f" LIMIT {rng.randint(1, 10)}"
            if rng.random() < 0.5:
                sql += f" OFFSET {rng.randint(0, 5)}"
    return sql, ordered


# -- comparison ---------------------------------------------------------------


def _canonical(rows, ordered):
    typed = [tuple((type(v).__name__, repr(v)) for v in row) for row in rows]
    return typed if ordered else sorted(typed)


def _check_query(configs, sql, ordered, context=""):
    expected = None
    for name, db in configs:
        try:
            rows = db.execute(sql).rows
        except Exception as exc:  # keep the failing query visible
            raise AssertionError(
                f"[{name}]{context} failed executing {sql!r}: {exc!r}"
            ) from exc
        got = _canonical(rows, ordered)
        if expected is None:
            expected = got
        else:
            assert got == expected, (
                f"[{name}]{context} diverged from reference on {sql!r}"
            )


def _close(configs):
    for _, db in configs:
        db.close()


# -- seed corpus --------------------------------------------------------------

# Hand-picked regressions: one query per rewrite rule plus the shapes the
# fuzzer found worth pinning.  Append past fuzz failures here verbatim.
SEED_CORPUS = [
    ("SELECT a AS c0, b AS c1, s AS c2 FROM t WHERE 1 = 1", False),
    ("SELECT a AS c0 FROM t WHERE a > 0 AND 2 > 3", False),
    ("SELECT a AS c0 FROM t WHERE s = 'a' OR 1 = 1", False),
    ("SELECT a AS c0 FROM t WHERE NOT (a > 0)", False),
    ("SELECT -a AS c0 FROM t WHERE a IS NOT NULL ORDER BY a DESC", False),
    (
        "SELECT t.a AS c0, u.v AS c1 FROM t LEFT JOIN u ON t.a = u.a "
        "WHERE t.b > 0",
        False,
    ),
    (
        "SELECT t.a AS c0, u.v AS c1 FROM t JOIN u ON t.a = u.a "
        "WHERE u.v = 'b' AND t.b <= 10",
        False,
    ),
    (
        "SELECT s AS g, count(*) AS c FROM t GROUP BY s "
        "HAVING count(*) > 1 ORDER BY s",
        True,
    ),
    ("SELECT a AS c0 FROM t WHERE a IN (1, 2, 3) AND b BETWEEN -5 AND 5", False),
    ("SELECT a AS c0 FROM t WHERE a IS NULL OR b IS NOT NULL", False),
    ("SELECT a AS c0, b AS c1 FROM t ORDER BY a DESC, b LIMIT 3 OFFSET 1", True),
    (
        "SELECT t.s AS g, count(*) AS c, sum(t.b) AS s1, min(u.a) AS lo, "
        "max(u.a) AS hi FROM t JOIN u ON t.a = u.a WHERE u.a BETWEEN -20 AND 20 "
        "GROUP BY t.s ORDER BY t.s",
        True,
    ),
    (
        "SELECT t.a AS c0, w.m AS c1 FROM t JOIN u ON t.a = u.a "
        "JOIN w ON t.a = w.a WHERE t.s = 'a'",
        False,
    ),
    (
        "SELECT t.a AS c0, u.v AS c1, w.m AS c2 FROM t JOIN u ON t.a = u.a "
        "LEFT JOIN w ON u.a = w.a WHERE t.a IN (0, 1, 2) OR t.b < 0",
        False,
    ),
    # fuzz 2026-08-08: duplicate IN-list literals must not duplicate rows
    # through an index probe (IN is a set predicate)
    (
        "SELECT s AS c0, a AS c1 FROM t WHERE a BETWEEN -21 AND 7 "
        "AND b IS NOT NULL AND a IN (-2.25, -2.25) ORDER BY s, a DESC",
        True,
    ),
]


@pytest.mark.parametrize("profile", PROFILES)
def test_seed_corpus(profile):
    rng = random.Random(4207)
    t_rows, u_rows, w_rows = _random_tables(rng)
    configs = _configs(profile, t_rows, u_rows, w_rows)
    try:
        for sql, ordered in SEED_CORPUS:
            _check_query(configs, sql, ordered, context=f" profile={profile}")
    finally:
        _close(configs)


# -- the fuzz loop ------------------------------------------------------------


@pytest.mark.parametrize("profile", PROFILES)
def test_fuzz_differential(profile, fuzz_rounds):
    """``fuzz_rounds`` random queries, re-rolling the dataset every 10."""
    rng = random.Random(20260805 + _PROFILE_SALT[profile])
    remaining = fuzz_rounds
    while remaining > 0:
        t_rows, u_rows, w_rows = _random_tables(rng)
        configs = _configs(profile, t_rows, u_rows, w_rows)
        indexed = dict(configs)["opt-indexed"]
        modelled = dict(configs)["opt-models"]
        try:
            for _ in range(min(10, remaining)):
                if rng.random() < 0.3:
                    _churn_indexes(indexed, rng)
                if rng.random() < 0.3:
                    _churn_models(modelled, rng)
                sql, ordered = _generate_query(rng)
                _check_query(
                    configs, sql, ordered, context=f" profile={profile}"
                )
        finally:
            _close(configs)
        remaining -= 10


# -- hypothesis: shrinkable datasets -----------------------------------------

numeric = st.one_of(
    st.none(),
    st.integers(min_value=-50, max_value=50),
    st.sampled_from([0.5, -2.25, 7.75]),
)
text = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "d"]))


@st.composite
def fuzz_tables(draw):
    nt = draw(st.integers(min_value=0, max_value=20))
    nu = draw(st.integers(min_value=0, max_value=12))
    nw = draw(st.integers(min_value=0, max_value=10))
    t_rows = (
        draw(st.lists(numeric, min_size=nt, max_size=nt)),
        draw(st.lists(numeric, min_size=nt, max_size=nt)),
        draw(st.lists(text, min_size=nt, max_size=nt)),
    )
    u_rows = (
        draw(st.lists(numeric, min_size=nu, max_size=nu)),
        draw(st.lists(text, min_size=nu, max_size=nu)),
    )
    w_rows = (
        draw(st.lists(numeric, min_size=nw, max_size=nw)),
        draw(st.lists(numeric, min_size=nw, max_size=nw)),
    )
    return t_rows, u_rows, w_rows


@given(tables=fuzz_tables(), query_seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
@pytest.mark.parametrize("profile", PROFILES)
def test_fuzz_differential_shrinking(profile, tables, query_seed):
    """Hypothesis drives the dataset so failures shrink to minimal tables."""
    t_rows, u_rows, w_rows = tables
    configs = _configs(profile, t_rows, u_rows, w_rows)
    rng = random.Random(query_seed)
    try:
        for _ in range(3):
            sql, ordered = _generate_query(rng)
            _check_query(configs, sql, ordered, context=f" profile={profile}")
    finally:
        _close(configs)


# -- replica differential -----------------------------------------------------
#
# A streaming replica, once its lag drains, must answer every generated
# query byte-identically to an in-process reference over the same data —
# the replication twin of the config matrix above.  The replica
# bootstraps from a snapshot (the dataset loads bypass SQL, so only the
# snapshot can carry them) and then applies a few SQL writes off the
# live stream before each comparison batch.


@pytest.mark.server
@pytest.mark.replication
def test_fuzz_differential_replica(fuzz_rounds):
    from repro.sqldb import client as sql_client
    from repro.sqldb.replication import Primary, Replica

    def drained(primary, replica):
        return (
            replica.database.last_applied_commit_id
            >= primary.manager.last_commit_id
        )

    def wait_drained(primary, replica, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if drained(primary, replica):
                return True
            time.sleep(0.005)
        return False

    rng = random.Random(20260808)
    remaining = fuzz_rounds
    while remaining > 0:
        t_rows, u_rows, w_rows = _random_tables(rng)
        reference = Database("postgres")
        _load_tables(reference, t_rows, u_rows, w_rows)
        primary_db = Database("postgres", optimize=True)
        _load_tables(primary_db, t_rows, u_rows, w_rows)
        primary_db.analyze()
        primary = Primary(primary_db, host="127.0.0.1", port=0).start()
        replica = Replica(primary.address, name="fuzz-replica").start()
        conn = None
        try:
            assert wait_drained(primary, replica)
            conn = sql_client.connect(*replica.address)
            for _ in range(min(10, remaining)):
                # a couple of live writes ride the stream between
                # compared queries (applied to the reference too)
                for _ in range(rng.randint(0, 2)):
                    a = rng.randint(-20, 20)
                    b = rng.choice([rng.randint(-20, 20), 0.5, -2.25])
                    s = rng.choice(["a", "b", "c", "d"])
                    dml = f"INSERT INTO t VALUES ({a}, {b}, '{s}')"
                    reference.execute(dml)
                    primary_db.execute(dml)
                assert wait_drained(primary, replica)
                sql, ordered = _generate_query(rng)
                expected = _canonical(reference.execute(sql).rows, ordered)
                got = _canonical(conn.run_script(sql)[-1].rows, ordered)
                assert got == expected, (
                    f"replica diverged from reference on {sql!r}"
                )
        finally:
            if conn is not None:
                conn.close()
            replica.close()
            primary.kill()
            primary_db.close()
            reference.close()
        remaining -= 10
