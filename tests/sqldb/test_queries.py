"""Query execution tests, run against both engine profiles."""

import pytest

from repro.errors import SQLBindError, SQLExecutionError
from repro.sqldb import Database


@pytest.fixture(params=["postgres", "umbra"])
def db(request):
    database = Database(request.param)
    database.run_script(
        """
        CREATE TABLE people (name text, county text, age int, income float);
        INSERT INTO people VALUES
            ('ann', 'c1', 30, 10.0),
            ('bob', 'c2', 40, 20.0),
            ('cel', 'c2', 50, 30.0),
            ('dan', 'c3', 60, NULL);
        """
    )
    return database


class TestProjectionSelection:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM people")
        assert result.columns == ["name", "county", "age", "income"]
        assert result.rowcount == 4

    def test_ctid_hidden_from_star(self, db):
        result = db.execute("SELECT * FROM people")
        assert "ctid" not in result.columns

    def test_ctid_explicit(self, db):
        result = db.execute("SELECT ctid FROM people")
        assert result.column("ctid") == [0, 1, 2, 3]

    def test_where(self, db):
        result = db.execute("SELECT name FROM people WHERE age > 40")
        assert result.column("name") == ["cel", "dan"]

    def test_where_null_is_filtered(self, db):
        result = db.execute("SELECT name FROM people WHERE income > 0")
        assert result.column("name") == ["ann", "bob", "cel"]

    def test_in_list(self, db):
        result = db.execute(
            "SELECT name FROM people WHERE county IN ('c1', 'c3')"
        )
        assert result.column("name") == ["ann", "dan"]

    def test_computed_column(self, db):
        result = db.execute("SELECT age * 2 AS double_age FROM people LIMIT 1")
        assert result.scalar() == 60

    def test_case_expression(self, db):
        result = db.execute(
            "SELECT (CASE WHEN age >= 50 THEN 1 ELSE 0 END) AS old FROM people"
        )
        assert result.column("old") == [0, 0, 1, 1]

    def test_is_null(self, db):
        result = db.execute("SELECT name FROM people WHERE income IS NULL")
        assert result.column("name") == ["dan"]

    def test_boolean_column(self, db):
        result = db.execute("SELECT age > 35 AS older FROM people")
        assert result.column("older") == [False, True, True, True]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT county FROM people")
        assert sorted(result.column("county")) == ["c1", "c2", "c3"]

    def test_order_by_desc(self, db):
        result = db.execute("SELECT name FROM people ORDER BY age DESC")
        assert result.column("name") == ["dan", "cel", "bob", "ann"]

    def test_order_by_nulls_last_asc(self, db):
        result = db.execute("SELECT name FROM people ORDER BY income")
        assert result.column("name")[-1] == "dan"

    def test_limit_offset(self, db):
        result = db.execute("SELECT name FROM people ORDER BY age LIMIT 2 OFFSET 1")
        assert result.column("name") == ["bob", "cel"]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 2 AS x").scalar() == 3

    def test_unknown_column_raises(self, db):
        with pytest.raises(SQLBindError):
            db.execute("SELECT nope FROM people")

    def test_like(self, db):
        result = db.execute("SELECT name FROM people WHERE name LIKE '%a%'")
        assert result.column("name") == ["ann", "dan"]

    def test_between(self, db):
        result = db.execute(
            "SELECT name FROM people WHERE age BETWEEN 40 AND 50"
        )
        assert result.column("name") == ["bob", "cel"]


class TestAggregation:
    def test_count_star(self, db):
        assert db.execute("SELECT count(*) FROM people").scalar() == 4

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT count(income) FROM people").scalar() == 3

    def test_group_by_count(self, db):
        result = db.execute(
            "SELECT county, count(*) AS cnt FROM people GROUP BY county "
            "ORDER BY county"
        )
        assert result.rows == [("c1", 1), ("c2", 2), ("c3", 1)]

    def test_avg(self, db):
        assert db.execute("SELECT avg(income) FROM people").scalar() == 20.0

    def test_sum_min_max(self, db):
        result = db.execute(
            "SELECT sum(age) AS s, min(age) AS lo, max(age) AS hi FROM people"
        )
        assert result.rows == [(180, 30, 60)]

    def test_stddev_pop(self, db):
        value = db.execute("SELECT stddev_pop(income) FROM people").scalar()
        assert value == pytest.approx(8.16496580927726)

    def test_count_distinct(self, db):
        assert db.execute("SELECT count(DISTINCT county) FROM people").scalar() == 3

    def test_array_agg(self, db):
        result = db.execute(
            "SELECT county, array_agg(name) AS names FROM people "
            "GROUP BY county ORDER BY county"
        )
        assert result.rows[1] == ("c2", ["bob", "cel"])

    def test_having(self, db):
        result = db.execute(
            "SELECT county FROM people GROUP BY county HAVING count(*) > 1"
        )
        assert result.column("county") == ["c2"]

    def test_aggregate_of_expression(self, db):
        assert db.execute("SELECT sum(age * 2) FROM people").scalar() == 360

    def test_empty_table_count_star_is_zero(self, db):
        db.execute("CREATE TABLE void (x int)")
        assert db.execute("SELECT count(*) FROM void").scalar() == 0

    def test_min_max_on_text(self, db):
        result = db.execute("SELECT min(name) AS lo, max(name) AS hi FROM people")
        assert result.rows == [("ann", "dan")]

    def test_bare_column_not_in_group_by_raises(self, db):
        with pytest.raises(SQLBindError):
            db.execute("SELECT name, count(*) FROM people GROUP BY county")


class TestJoins:
    @pytest.fixture(autouse=True)
    def _extra(self, db):
        db.run_script(
            """
            CREATE TABLE counties (county text, region text);
            INSERT INTO counties VALUES ('c1', 'north'), ('c2', 'south');
            """
        )

    def test_inner_join(self, db):
        result = db.execute(
            "SELECT p.name, c.region FROM people p "
            "JOIN counties c ON p.county = c.county ORDER BY p.name"
        )
        assert result.rows == [
            ("ann", "north"),
            ("bob", "south"),
            ("cel", "south"),
        ]

    def test_left_join_null_padded(self, db):
        result = db.execute(
            "SELECT p.name, c.region FROM people p "
            "LEFT JOIN counties c ON p.county = c.county "
            "WHERE c.region IS NULL"
        )
        assert result.column("name") == ["dan"]

    def test_right_outer_join(self, db):
        db.execute("INSERT INTO counties VALUES ('c9', 'west')")
        result = db.execute(
            "SELECT c.region, p.name FROM people p "
            "RIGHT OUTER JOIN counties c ON p.county = c.county "
            "ORDER BY c.region"
        )
        regions = result.column("region")
        assert "west" in regions

    def test_cross_join(self, db):
        result = db.execute("SELECT count(*) FROM people CROSS JOIN counties")
        assert result.scalar() == 8

    def test_comma_join_with_where(self, db):
        result = db.execute(
            "SELECT count(*) FROM people p, counties c "
            "WHERE p.county = c.county"
        )
        assert result.scalar() == 3

    def test_null_safe_join_condition(self, db):
        # the transpiler's pandas-null-join pattern (§5.1.2)
        db.run_script(
            """
            CREATE TABLE l (k text);
            CREATE TABLE r (k text);
            INSERT INTO l VALUES ('a'), (NULL);
            INSERT INTO r VALUES (NULL), ('a');
            """
        )
        plain = db.execute(
            "SELECT count(*) FROM l JOIN r ON l.k = r.k"
        ).scalar()
        null_safe = db.execute(
            "SELECT count(*) FROM l JOIN r ON l.k = r.k "
            "OR (l.k IS NULL AND r.k IS NULL)"
        ).scalar()
        assert plain == 1
        assert null_safe == 2

    def test_non_equi_join(self, db):
        result = db.execute(
            "SELECT count(*) FROM counties a JOIN counties b ON b.county <= a.county"
        )
        assert result.scalar() == 3  # rank-style self join

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(SQLBindError):
            db.execute(
                "SELECT county FROM people p JOIN counties c "
                "ON p.county = c.county"
            )


class TestCtesViewsSubqueries:
    def test_cte_chain(self, db):
        result = db.execute(
            "WITH adults AS (SELECT * FROM people WHERE age >= 40), "
            "rich AS (SELECT * FROM adults WHERE income >= 20) "
            "SELECT count(*) FROM rich"
        )
        assert result.scalar() == 2

    def test_cte_referenced_twice(self, db):
        result = db.execute(
            "WITH base AS (SELECT age FROM people) "
            "SELECT count(*) FROM base a JOIN base b ON a.age = b.age"
        )
        assert result.scalar() == 4

    def test_scalar_subquery(self, db):
        result = db.execute(
            "SELECT name FROM people WHERE age > (SELECT avg(age) FROM people)"
        )
        assert result.column("name") == ["cel", "dan"]

    def test_subquery_in_from(self, db):
        result = db.execute(
            "SELECT s.c FROM (SELECT count(*) AS c FROM people) s"
        )
        assert result.scalar() == 4

    def test_view_roundtrip(self, db):
        db.execute("CREATE VIEW adults AS SELECT * FROM people WHERE age >= 40")
        assert db.execute("SELECT count(*) FROM adults").scalar() == 3

    def test_view_sees_new_rows(self, db):
        db.execute("CREATE VIEW adults AS SELECT * FROM people WHERE age >= 40")
        db.execute("INSERT INTO people VALUES ('eve', 'c1', 70, 5.0)")
        assert db.execute("SELECT count(*) FROM adults").scalar() == 4

    def test_materialized_view(self, db):
        db.execute(
            "CREATE MATERIALIZED VIEW stats AS "
            "SELECT county, count(*) AS cnt FROM people GROUP BY county"
        )
        result = db.execute("SELECT sum(cnt) FROM stats")
        assert result.scalar() == 4

    def test_union_all(self, db):
        result = db.execute(
            "SELECT name FROM people WHERE age < 40 "
            "UNION ALL SELECT name FROM people WHERE age > 50"
        )
        assert sorted(result.column("name")) == ["ann", "dan"]

    def test_unnest_expands_arrays(self, db):
        result = db.execute(
            "WITH grouped AS (SELECT county, array_agg(ctid) AS ids "
            "FROM people GROUP BY county) "
            "SELECT county, unnest(ids) AS id FROM grouped ORDER BY id"
        )
        assert result.rowcount == 4
        assert result.column("id") == [0, 1, 2, 3]

    def test_scalar_subquery_multi_row_raises(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT (SELECT age FROM people) FROM people")

    def test_coalesce(self, db):
        result = db.execute(
            "SELECT coalesce(income, 0.0) AS inc FROM people ORDER BY ctid"
        )
        assert result.column("inc") == [10.0, 20.0, 30.0, 0.0]

    def test_regexp_replace_whole_string(self, db):
        result = db.execute(
            "SELECT REGEXP_REPLACE(name, '^ann$', 'anna') AS n FROM people "
            "ORDER BY ctid LIMIT 2"
        )
        assert result.column("n") == ["anna", "bob"]
