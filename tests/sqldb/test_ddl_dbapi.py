"""Tests for DDL statements, COPY, the DB-API adapter and engine profiles."""

import pytest

from repro.errors import CatalogError, SQLError, SQLExecutionError
from repro.sqldb import Database, connect
from repro.sqldb.profile import POSTGRES, UMBRA, profile_by_name


@pytest.fixture
def db():
    return Database("umbra")


class TestCreateTable:
    def test_create_and_describe(self, db):
        db.execute("CREATE TABLE t (a int, b text, c double precision)")
        table = db.catalog.table("t")
        assert table.column_names == ["a", "b", "c"]
        assert table.column_types == ["int", "text", "float"]

    def test_duplicate_table_rejected(self, db):
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a int)")

    def test_reserved_ctid_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (ctid int)")

    def test_serial_column_autonumbers(self, db):
        db.execute("CREATE TABLE t (index_ serial, v text)")
        db.execute("INSERT INTO t (v) VALUES ('a'), ('b')")
        result = db.execute("SELECT index_, v FROM t ORDER BY index_")
        assert result.rows == [(0, "a"), (1, "b")]

    def test_drop_table(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("DROP TABLE t")
        assert not db.catalog.has("t")

    def test_drop_if_exists_silent(self, db):
        db.execute("DROP TABLE IF EXISTS nothing")

    def test_drop_missing_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE nothing")


class TestInsert:
    def test_nulls_and_negatives(self, db):
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t VALUES (-5, NULL), (NULL, 'x')")
        result = db.execute("SELECT * FROM t")
        assert result.rows == [(-5, None), (None, "x")]

    def test_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a int, b int)")
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_non_literal_rejected(self, db):
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO t VALUES (1 + 1)")


class TestCopy:
    def test_copy_with_null_text(self, db, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a,b\n1,foo\n?,bar\n3,?\n")
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute(
            f"COPY t (\"a\", \"b\") FROM '{path}' WITH "
            "(DELIMITER ',', NULL '?', FORMAT CSV, HEADER TRUE)"
        )
        result = db.execute("SELECT * FROM t ORDER BY ctid")
        assert result.rows == [(1, "foo"), (None, "bar"), (3, None)]

    def test_empty_csv_field_is_null(self, db, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a\n\n7\n")
        db.execute("CREATE TABLE t (a int)")
        db.execute(f"COPY t (\"a\") FROM '{path}' WITH (FORMAT CSV, HEADER TRUE)")
        assert db.execute("SELECT count(*) FROM t").scalar() == 1  # blank skipped

    def test_copy_bad_number_raises(self, db, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a\nnot-a-number\n")
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(SQLExecutionError):
            db.execute(f"COPY t (\"a\") FROM '{path}' WITH (FORMAT CSV, HEADER TRUE)")

    def test_ctid_assigned_sequentially(self, db, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a\n10\n20\n")
        db.execute("CREATE TABLE t (a int)")
        db.execute(f"COPY t (\"a\") FROM '{path}' WITH (FORMAT CSV, HEADER TRUE)")
        assert db.execute("SELECT ctid FROM t").column("ctid") == [0, 1]


class TestMaterializedViewMaintenance:
    def test_snapshot_refreshes_on_dependent_table_change(self, db):
        db.run_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1);"
            "CREATE MATERIALIZED VIEW m AS SELECT count(*) AS c FROM t"
        )
        assert db.execute("SELECT c FROM m").scalar() == 1
        db.execute("INSERT INTO t VALUES (2)")
        assert db.execute("SELECT c FROM m").scalar() == 2

    def test_unrelated_table_change_does_not_refresh(self, db):
        db.run_script(
            "CREATE TABLE t (a int); CREATE TABLE other (b int);"
            "CREATE MATERIALIZED VIEW m AS SELECT count(*) AS c FROM t"
        )
        view = db.catalog.resolve("m")
        before = view.snapshot
        db.execute("INSERT INTO other VALUES (1)")
        assert db.catalog.resolve("m").snapshot is before

    def test_transitive_view_refresh(self, db):
        db.run_script(
            "CREATE TABLE t (a int);"
            "CREATE VIEW v1 AS SELECT a FROM t;"
            "CREATE MATERIALIZED VIEW m AS SELECT count(*) AS c FROM v1"
        )
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.execute("SELECT c FROM m").scalar() == 2


class TestProfiles:
    def test_profile_lookup(self):
        assert profile_by_name("postgres") is POSTGRES
        assert profile_by_name("UMBRA") is UMBRA
        with pytest.raises(ValueError):
            profile_by_name("oracle")

    def test_profiles_agree_on_results(self):
        script = (
            "CREATE TABLE t (a int, g text);"
            "INSERT INTO t VALUES (1,'x'), (2,'x'), (3,'y');"
        )
        query = (
            "WITH s AS (SELECT g, sum(a) AS total FROM t GROUP BY g) "
            "SELECT * FROM s ORDER BY g"
        )
        pg, umbra = Database("postgres"), Database("umbra")
        pg.run_script(script)
        umbra.run_script(script)
        assert pg.execute(query).rows == umbra.execute(query).rows

    def test_explain_shows_barrier_vs_inlined(self):
        script = "CREATE TABLE t (a int, b int);"
        query = "WITH s AS (SELECT a, b FROM t) SELECT a FROM s"
        pg, umbra = Database("postgres"), Database("umbra")
        pg.run_script(script)
        umbra.run_script(script)
        assert "materialized" in pg.explain(query)
        assert "inlined" in umbra.explain(query)

    def test_not_materialized_overrides_pg_default(self):
        pg = Database("postgres")
        pg.execute("CREATE TABLE t (a int, b int)")
        plan = pg.explain(
            "WITH s AS NOT MATERIALIZED (SELECT a, b FROM t) SELECT a FROM s"
        )
        assert "inlined" in plan

    def test_pruning_through_inlined_cte(self):
        umbra = Database("umbra")
        umbra.execute("CREATE TABLE t (a int, b int, c int)")
        plan = umbra.explain("WITH s AS (SELECT a, b, c FROM t) SELECT a FROM s")
        # the shared CTE plan keeps only the needed column
        assert "Project(a)" in plan

    def test_no_pruning_through_barrier(self):
        pg = Database("postgres")
        pg.execute("CREATE TABLE t (a int, b int, c int)")
        plan = pg.explain("WITH s AS (SELECT a, b, c FROM t) SELECT a FROM s")
        assert "Project(a, b, c)" in plan


class TestDbApi:
    def test_cursor_roundtrip(self):
        conn = connect("umbra")
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2)")
        cursor.execute("SELECT a FROM t ORDER BY a")
        assert cursor.fetchone() == (1,)
        assert cursor.fetchall() == [(2,)]
        assert cursor.fetchone() is None

    def test_description(self):
        conn = connect("umbra")
        cursor = conn.cursor()
        cursor.execute("SELECT 1 AS x, 'a' AS y")
        assert [d[0] for d in cursor.description] == ["x", "y"]

    def test_fetchmany(self):
        conn = connect("umbra")
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE t (a int); INSERT INTO t VALUES (1),(2),(3)")
        cursor.execute("SELECT a FROM t")
        assert len(cursor.fetchmany(2)) == 2
        assert len(cursor.fetchmany(2)) == 1

    def test_rowcount(self):
        conn = connect("umbra")
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE t (a int)")
        cursor.execute("INSERT INTO t VALUES (1), (2)")
        assert cursor.rowcount == 2

    def test_parameters_bind(self):
        cursor = connect("umbra").cursor()
        cursor.execute("SELECT %s", (1,))
        assert cursor.fetchall() == [(1,)]

    def test_parameter_count_mismatch(self):
        cursor = connect("umbra").cursor()
        with pytest.raises(SQLError):
            cursor.execute("SELECT ?", (1, 2))

    def test_closed_connection_rejects_cursor(self):
        conn = connect("umbra")
        conn.close()
        with pytest.raises(SQLError):
            conn.cursor()

    def test_context_managers(self):
        with connect("umbra") as conn:
            with conn.cursor() as cursor:
                cursor.execute("SELECT 1")
                assert cursor.fetchall() == [(1,)]


class TestCursorErrorState:
    """Regression: a cursor whose last execute raised must not serve the
    *previous* statement's rows to a later fetch — silently feeding a
    harness stale results on error is the worst failure mode a driver
    can have."""

    @pytest.fixture
    def cursor(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t (a) VALUES (1), (2)")
        return connect(database=db).cursor()

    def test_fetch_after_failed_execute_raises(self, cursor):
        from repro.sqldb.dbapi import InterfaceError, ProgrammingError

        assert cursor.execute("SELECT a FROM t ORDER BY a").fetchone() == (1,)
        with pytest.raises(ProgrammingError):
            cursor.execute("SELECT nope FROM t")
        with pytest.raises(InterfaceError):
            cursor.fetchone()
        with pytest.raises(InterfaceError):
            cursor.fetchmany(2)
        with pytest.raises(InterfaceError):
            cursor.fetchall()
        assert cursor.description is None
        assert cursor.rowcount == -1

    def test_successful_execute_clears_error_state(self, cursor):
        from repro.sqldb.dbapi import ProgrammingError

        with pytest.raises(ProgrammingError):
            cursor.execute("SELEKT 1")
        rows = cursor.execute("SELECT a FROM t ORDER BY a").fetchall()
        assert rows == [(1,), (2,)]

    def test_failed_executemany_sets_error_state(self, cursor):
        from repro.sqldb.dbapi import InterfaceError

        with pytest.raises(SQLError):
            cursor.executemany(
                "INSERT INTO nosuch (a) VALUES (%s)", [(1,), (2,)]
            )
        with pytest.raises(InterfaceError):
            cursor.fetchall()
