"""Plan cache: hit/miss accounting, invalidation, equivalence properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database


def _make_db(plan_cache_size=128):
    db = Database("postgres", plan_cache_size=plan_cache_size)
    db.run_script(
        """
        CREATE TABLE t (n int, s text);
        INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a'), (NULL, 'c');
        """
    )
    return db


class TestCacheAccounting:
    def test_repeat_execution_hits(self):
        db = _make_db()
        sql = "SELECT s, count(*) FROM t GROUP BY s ORDER BY s"
        db.execute(sql)
        misses = db.plan_cache.stats["misses"]
        db.execute(sql)
        db.execute(sql)
        assert db.plan_cache.stats["hits"] >= 2
        assert db.plan_cache.stats["misses"] == misses

    def test_whitespace_variants_share_entry(self):
        db = _make_db()
        db.execute("SELECT n FROM t WHERE n = 1")
        assert db.execute("select  n\nfrom t where n = 1").rows == [(1,)]
        assert db.plan_cache.stats["hits"] >= 1

    def test_disabled_cache(self):
        db = _make_db(plan_cache_size=0)
        sql = "SELECT n FROM t WHERE n = 1"
        assert db.execute(sql).rows == db.execute(sql).rows == [(1,)]
        assert len(db.plan_cache) == 0
        assert db.plan_cache.stats["hits"] == 0

    def test_lru_eviction_bounds_size(self):
        db = _make_db(plan_cache_size=4)
        for i in range(20):
            db.execute(f"SELECT n + {i} FROM t")
        assert len(db.plan_cache) <= 4

    def test_clear(self):
        db = _make_db()
        db.execute("SELECT n FROM t")
        assert len(db.plan_cache) > 0
        db.plan_cache.clear()
        assert len(db.plan_cache) == 0


class TestInvalidation:
    def test_create_table_invalidates(self):
        db = _make_db()
        db.execute("SELECT count(*) FROM t")
        db.execute("CREATE TABLE other (x int)")
        misses = db.plan_cache.stats["misses"]
        db.execute("SELECT count(*) FROM t")
        assert db.plan_cache.stats["misses"] == misses + 1

    def test_drop_and_recreate_sees_new_schema(self):
        db = _make_db()
        assert db.execute("SELECT count(*) FROM t").rows == [(4,)]
        db.run_script("DROP TABLE t; CREATE TABLE t (n int, s text)")
        assert db.execute("SELECT count(*) FROM t").rows == [(0,)]

    def test_insert_invalidates(self):
        db = _make_db()
        sql = "SELECT count(*) FROM t"
        assert db.execute(sql).rows == [(4,)]
        db.execute("INSERT INTO t VALUES (9, 'z')")
        assert db.execute(sql).rows == [(5,)]

    def test_view_replacement_not_stale(self):
        db = _make_db()
        db.execute("CREATE VIEW v AS SELECT n FROM t WHERE n > 1")
        assert db.execute("SELECT count(*) FROM v").rows == [(2,)]
        db.run_script(
            "DROP VIEW v; CREATE VIEW v AS SELECT n FROM t WHERE n >= 1"
        )
        assert db.execute("SELECT count(*) FROM v").rows == [(3,)]


queries = st.sampled_from(
    [
        "SELECT n, s FROM t ORDER BY n, s",
        "SELECT s, count(*) AS c, sum(n) AS total FROM t GROUP BY s ORDER BY s",
        "SELECT n * 2 FROM t WHERE n IS NOT NULL ORDER BY n",
        "SELECT DISTINCT s FROM t ORDER BY s",
        "SELECT a.n FROM t a INNER JOIN t b ON a.s = b.s ORDER BY a.n",
    ]
)


@given(st.lists(queries, min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_cold_and_warm_results_identical(batch):
    cached = _make_db()
    uncached = _make_db(plan_cache_size=0)
    # run the batch twice: the second pass is fully warm on `cached`
    for sql in batch + batch:
        assert cached.execute(sql).rows == uncached.execute(sql).rows


@given(
    st.lists(st.integers(min_value=-50, max_value=50), min_size=0, max_size=20)
)
@settings(max_examples=40, deadline=None)
def test_inserts_between_repeats_always_visible(ints):
    db = _make_db()
    sql = "SELECT count(*), sum(n) FROM t WHERE n IS NOT NULL"
    expected_count, expected_sum = 3, 6
    for value in ints:
        db.execute("INSERT INTO t VALUES (?, 'x')", (value,))
        expected_count += 1
        expected_sum += value
        assert db.execute(sql).rows == [(expected_count, expected_sum)]


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=30))
@settings(max_examples=40, deadline=None)
def test_cache_never_exceeds_maxsize(maxsize, n_queries):
    db = _make_db(plan_cache_size=maxsize)
    for i in range(n_queries):
        db.execute(f"SELECT n + {i} FROM t")
        assert len(db.plan_cache) <= maxsize
