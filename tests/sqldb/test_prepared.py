"""Prepared statements: normalization, parameter binding, executemany."""

import pytest

from repro.errors import SQLError, SQLExecutionError
from repro.sqldb import Database, dbapi
from repro.sqldb.prepared import bind_parameters, normalize_sql


class TestNormalizeSql:
    def test_whitespace_and_case_insensitive_keywords(self):
        a, _ = normalize_sql("SELECT  a\nFROM t")
        b, _ = normalize_sql("select a from t")
        assert a == b

    def test_unquoted_identifiers_fold_to_lowercase(self):
        # PostgreSQL folds unquoted identifiers, so A and a share an entry
        a, _ = normalize_sql("SELECT A FROM t")
        b, _ = normalize_sql("SELECT a FROM t")
        assert a == b

    def test_quoted_mixed_case_identifier_distinct(self):
        a, _ = normalize_sql('SELECT "A" FROM t')
        b, _ = normalize_sql("SELECT a FROM t")
        assert a != b

    def test_quoted_identifier_vs_keyword_no_collision(self):
        a, _ = normalize_sql('SELECT "select" FROM t')
        b, _ = normalize_sql("SELECT select FROM t")
        assert a != b

    def test_string_vs_identifier_no_collision(self):
        a, _ = normalize_sql("SELECT 'a' FROM t")
        b, _ = normalize_sql("SELECT a FROM t")
        assert a != b

    def test_string_with_quote_roundtrip(self):
        a, _ = normalize_sql("SELECT 'it''s'")
        b, _ = normalize_sql("SELECT 'it'")
        assert a != b

    def test_placeholder_styles_normalize_identically(self):
        a, n_a = normalize_sql("SELECT ? , ?")
        b, n_b = normalize_sql("SELECT %s , %s")
        assert a == b
        assert n_a == n_b == 2

    def test_modulo_is_not_a_placeholder(self):
        _, n = normalize_sql("SELECT a % s FROM t")
        assert n == 0


class TestBindParameters:
    def test_exact_count(self):
        assert bind_parameters((1, 2), 2) == (1, 2)

    def test_none_means_no_params(self):
        assert bind_parameters(None, 0) == ()

    def test_count_mismatch(self):
        with pytest.raises(SQLError):
            bind_parameters((1,), 2)
        with pytest.raises(SQLError):
            bind_parameters((1, 2, 3), 2)


@pytest.fixture(params=["postgres", "umbra"])
def db(request):
    database = Database(request.param)
    database.run_script(
        """
        CREATE TABLE t (a int, b text);
        INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL);
        """
    )
    return database


class TestExecuteWithParams:
    def test_select_where_param(self, db):
        result = db.execute("SELECT b FROM t WHERE a = ?", (2,))
        assert result.rows == [("y",)]

    def test_pyformat_placeholder(self, db):
        result = db.execute("SELECT a FROM t WHERE b = %s", ("x",))
        assert result.rows == [(1,)]

    def test_param_in_select_list(self, db):
        result = db.execute("SELECT ? + a FROM t WHERE a = 1", (10,))
        assert result.rows == [(11,)]

    def test_none_param_is_null(self, db):
        result = db.execute("SELECT a FROM t WHERE b IS NULL AND ? IS NULL", (None,))
        assert result.rows == [(3,)]

    def test_same_text_different_params(self, db):
        sql = "SELECT b FROM t WHERE a = ?"
        assert db.execute(sql, (1,)).rows == [("x",)]
        assert db.execute(sql, (2,)).rows == [("y",)]

    def test_insert_with_params(self, db):
        db.execute("INSERT INTO t VALUES (?, ?)", (9, "z"))
        result = db.execute("SELECT b FROM t WHERE a = 9")
        assert result.rows == [("z",)]

    def test_missing_params_rejected(self, db):
        with pytest.raises(SQLError):
            db.execute("SELECT a FROM t WHERE a = ?")


class TestExecutemany:
    def test_insert_many(self, db):
        total = db.executemany(
            "INSERT INTO t VALUES (?, ?)", [(10, "p"), (11, "q"), (12, "r")]
        )
        assert total == 3
        result = db.execute("SELECT b FROM t WHERE a >= 10 ORDER BY a")
        assert result.column("b") == ["p", "q", "r"]

    def test_count_validated_per_row(self, db):
        with pytest.raises(SQLError):
            db.executemany("INSERT INTO t VALUES (?, ?)", [(1, "a"), (2,)])


class TestDbApiParams:
    def test_cursor_execute_params(self):
        cursor = dbapi.connect("postgres").cursor()
        cursor.execute("CREATE TABLE t (a int)")
        cursor.execute("INSERT INTO t VALUES (?)", (5,))
        cursor.execute("SELECT a FROM t WHERE a = %s", (5,))
        assert cursor.fetchall() == [(5,)]

    def test_cursor_executemany(self):
        cursor = dbapi.connect("postgres").cursor()
        cursor.execute("CREATE TABLE t (a int)")
        cursor.executemany("INSERT INTO t VALUES (?)", [(1,), (2,), (3,)])
        assert cursor.rowcount == 3
        cursor.execute("SELECT count(*) FROM t")
        assert cursor.fetchone() == (3,)
