"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.lexer import TokenKind, tokenize
from repro.sqldb.parser import parse_expression, parse_script, parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:3])

    def test_unquoted_identifiers_lowercased(self):
        assert tokenize("MyTable")[0].value == "mytable"

    def test_quoted_identifier_preserves_case(self):
        token = tokenize('"Age_Group"')[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == "Age_Group"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 .5")[:-1]]
        assert values == ["1", "2.5", "1e3", ".5"]

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- comment\n 1")
        assert [t.value for t in tokens[:-1]] == ["select", "1"]

    def test_block_comment_skipped(self):
        tokens = tokenize("SELECT /* x */ 1")
        assert len(tokens) == 3

    def test_operators(self):
        ops = [t.value for t in tokenize("<> != <= >= :: ||")[:-1]]
        assert ops == ["<>", "<>", "<=", ">=", "::", "||"]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")


class TestExpressionParsing:
    def test_precedence_mul_before_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a or b and c")
        assert expr.op == "or"

    def test_comparison_chain(self):
        expr = parse_expression("a > 1.2 * b")
        assert expr.op == ">"

    def test_in_list(self):
        expr = parse_expression("county IN ('c2', 'c3')")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 2

    def test_not_in(self):
        expr = parse_expression("x NOT IN (1)")
        assert isinstance(expr, ast.InList)
        assert expr.negated

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("x IS NULL"), ast.IsNull)
        expr = parse_expression("x IS NOT NULL")
        assert expr.negated

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 2")
        assert isinstance(expr, ast.Between)

    def test_case_when(self):
        expr = parse_expression("CASE WHEN x >= 50 THEN 1 ELSE 0 END")
        assert isinstance(expr, ast.Case)
        assert len(expr.whens) == 1

    def test_cast_double_colon(self):
        expr = parse_expression("x::int")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "int"

    def test_cast_function_form(self):
        expr = parse_expression("CAST(x AS double precision)")
        assert expr.type_name == "double precision"

    def test_function_call_star(self):
        expr = parse_expression("count(*)")
        assert expr.star

    def test_function_call_distinct(self):
        expr = parse_expression("count(DISTINCT s)")
        assert expr.distinct

    def test_qualified_column(self):
        expr = parse_expression("tb1.ssn")
        assert expr.table == "tb1"

    def test_quoted_qualified_column(self):
        expr = parse_expression('tb_orig."age_group"')
        assert expr.name == "age_group"

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert isinstance(expr, ast.UnaryOp)

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT count(*) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)


class TestStatementParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t WHERE a > 1")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert stmt.where is not None

    def test_select_star_and_alias_star(self):
        stmt = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.table == "t"

    def test_with_cte_chain(self):
        stmt = parse_statement(
            "WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM b"
        )
        assert [c.name for c in stmt.ctes] == ["a", "b"]

    def test_not_materialized_cte(self):
        stmt = parse_statement(
            "WITH a AS NOT MATERIALIZED (SELECT 1) SELECT * FROM a"
        )
        assert stmt.ctes[0].materialized is False

    def test_join_kinds(self):
        stmt = parse_statement(
            "SELECT * FROM a INNER JOIN b ON a.x = b.x "
            "RIGHT OUTER JOIN c ON b.y = c.y"
        )
        join = stmt.sources[0]
        assert join.kind == "right"
        assert join.left.kind == "inner"

    def test_cross_join_no_condition(self):
        stmt = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert stmt.sources[0].condition is None

    def test_comma_sources(self):
        stmt = parse_statement("SELECT * FROM a, b")
        assert len(stmt.sources) == 2

    def test_group_by_having_order_limit(self):
        stmt = parse_statement(
            "SELECT s, count(*) FROM t GROUP BY s HAVING count(*) > 1 "
            "ORDER BY s DESC LIMIT 5 OFFSET 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert not stmt.order_by[0].ascending
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_union_all(self):
        stmt = parse_statement("SELECT 1 UNION ALL SELECT 2")
        assert stmt.union_all_with is not None

    def test_subquery_source(self):
        stmt = parse_statement("SELECT * FROM (SELECT 1 AS x) sub")
        assert isinstance(stmt.sources[0], ast.SubquerySource)
        assert stmt.sources[0].alias == "sub"

    def test_create_table(self):
        stmt = parse_statement('CREATE TABLE t ("a" int, b text, c serial)')
        assert isinstance(stmt, ast.CreateTable)
        assert [c.name for c in stmt.columns] == ["a", "b", "c"]

    def test_create_table_array_type(self):
        stmt = parse_statement("CREATE TABLE t (ids int[])")
        assert stmt.columns[0].type_name == "int[]"

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT 1")
        assert isinstance(stmt, ast.CreateView)
        assert not stmt.materialized

    def test_create_materialized_view(self):
        stmt = parse_statement("CREATE MATERIALIZED VIEW v AS SELECT 1")
        assert stmt.materialized

    def test_insert_plain(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2

    def test_insert_paper_listing1_form(self):
        # Listing 1 wraps VALUES in parentheses
        stmt = parse_statement("INSERT INTO data (values (1,1), (1,2))")
        assert len(stmt.rows) == 2
        assert stmt.columns == []

    def test_copy_with_options(self):
        stmt = parse_statement(
            "COPY t (\"a\", \"b\") FROM 'x.csv' WITH "
            "(DELIMITER ',', NULL '', FORMAT CSV, HEADER TRUE)"
        )
        assert isinstance(stmt, ast.Copy)
        assert stmt.columns == ["a", "b"]
        assert stmt.header

    def test_drop_table_if_exists(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_drop_view(self):
        stmt = parse_statement("DROP VIEW v")
        assert stmt.kind == "view"

    def test_script_splits_statements(self):
        script = parse_script("SELECT 1; SELECT 2; ")
        assert len(script) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1 garbage extra !")

    def test_listing5_shape_parses(self):
        # abridged version of the paper's generated query (Listing 5)
        sql = """
        WITH patients_ctid AS (
            SELECT *, ctid AS patients_51_mlinid0_ctid FROM patients
        ), block_mlinid3_54 AS (
            SELECT array_agg(tb1.patients_51_mlinid0_ctid) AS
                patients_51_mlinid0_ctid, "age_group",
                AVG("complications") AS "mean_complications"
            FROM patients_ctid tb1 GROUP BY "age_group"
        )
        SELECT tb_orig."age_group", count(*)
        FROM block_mlinid3_54 tb_curr JOIN patients_ctid tb_orig
            ON tb_curr.patients_51_mlinid0_ctid = tb_orig.patients_51_mlinid0_ctid
        GROUP BY tb_orig."age_group"
        """
        stmt = parse_statement(sql)
        assert len(stmt.ctes) == 2
