"""The unified error hierarchy: SQLSTATE codes and the PEP 249 mapping."""

import pytest

from repro.errors import (
    CatalogError,
    DurabilityError,
    QueryCancelled,
    ReproError,
    SQLBindError,
    SQLError,
    SQLExecutionError,
    SQLSyntaxError,
    TransactionError,
)
from repro.sqldb import dbapi


class TestSqlstates:
    def test_class_defaults(self):
        assert SQLError("x").sqlstate == "XX000"
        assert SQLSyntaxError("x").sqlstate == "42601"
        assert SQLBindError("x").sqlstate == "42703"
        assert SQLExecutionError("x").sqlstate == "22000"
        assert CatalogError("x").sqlstate == "42P01"
        assert TransactionError("x").sqlstate == "25000"
        assert QueryCancelled("x").sqlstate == "57014"
        assert DurabilityError("x").sqlstate == "58030"

    def test_per_raise_override(self):
        exc = CatalogError("dup", sqlstate="42P07")
        assert exc.sqlstate == "42P07"
        # the class default is untouched
        assert CatalogError("other").sqlstate == "42P01"

    def test_all_sql_errors_are_repro_errors(self):
        for cls in (
            SQLSyntaxError,
            SQLBindError,
            SQLExecutionError,
            CatalogError,
            TransactionError,
            QueryCancelled,
            DurabilityError,
        ):
            assert issubclass(cls, SQLError)
            assert issubclass(cls, ReproError)

    def test_engine_raises_coded_errors(self):
        from repro.sqldb.engine import Database

        db = Database("umbra")
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(CatalogError) as info:
            db.execute("CREATE TABLE t (a int)")
        assert info.value.sqlstate == "42P07"  # duplicate_table override
        with pytest.raises(TransactionError) as info:
            db.execute("COMMIT")
        assert info.value.sqlstate == "25P01"


class TestDbapiMapping:
    def test_module_globals(self):
        assert dbapi.apilevel == "2.0"
        assert dbapi.paramstyle == "qmark"
        assert dbapi.threadsafety == 2

    def test_hierarchy_shape(self):
        for cls in (
            dbapi.DataError,
            dbapi.OperationalError,
            dbapi.IntegrityError,
            dbapi.InternalError,
            dbapi.ProgrammingError,
            dbapi.NotSupportedError,
        ):
            assert issubclass(cls, dbapi.DatabaseError)
        assert issubclass(dbapi.DatabaseError, dbapi.Error)
        assert issubclass(dbapi.InterfaceError, dbapi.Error)

    def test_map_exception_preserves_both_hierarchies(self):
        mapped = dbapi.map_exception(SQLSyntaxError("bad syntax"))
        assert isinstance(mapped, dbapi.ProgrammingError)
        assert isinstance(mapped, SQLSyntaxError)
        assert mapped.sqlstate == "42601"
        assert "bad syntax" in str(mapped)

    def test_mapped_classes_are_cached(self):
        a = dbapi.map_exception(CatalogError("one"))
        b = dbapi.map_exception(CatalogError("two"))
        assert type(a) is type(b)

    def test_mapping_table(self):
        cases = [
            (SQLSyntaxError, dbapi.ProgrammingError),
            (SQLBindError, dbapi.ProgrammingError),
            (CatalogError, dbapi.ProgrammingError),
            (TransactionError, dbapi.OperationalError),
            (QueryCancelled, dbapi.OperationalError),
            (DurabilityError, dbapi.OperationalError),
            (SQLExecutionError, dbapi.DataError),
            (SQLError, dbapi.DatabaseError),
        ]
        for engine_cls, dbapi_cls in cases:
            assert isinstance(dbapi.map_exception(engine_cls("x")), dbapi_cls)

    def test_override_sqlstate_survives_mapping(self):
        mapped = dbapi.map_exception(CatalogError("dup", sqlstate="42P07"))
        assert mapped.sqlstate == "42P07"

    def test_cursor_raises_mapped_errors(self):
        conn = dbapi.connect("umbra")
        cursor = conn.cursor()
        with pytest.raises(dbapi.ProgrammingError):
            cursor.execute("SELEC 1")
        with pytest.raises(SQLSyntaxError):  # old-style catch still works
            cursor.execute("SELEC 1")
        with pytest.raises(dbapi.ProgrammingError):
            cursor.execute("SELECT * FROM no_such_table")
        with pytest.raises(dbapi.OperationalError):
            cursor.execute("COMMIT")

    def test_executemany_raises_mapped_errors(self):
        conn = dbapi.connect("umbra")
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE t (a int)")
        with pytest.raises(dbapi.DatabaseError):
            cursor.executemany("INSERT INTO t (a) VALUES (?)", [("boom",)])
        cursor.execute("SELECT count(*) FROM t")
        assert cursor.fetchone() == (0,)

    def test_connection_transaction_api(self):
        conn = dbapi.connect("umbra")
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE t (a int)")
        conn.begin()
        assert conn.in_transaction
        cursor.execute("INSERT INTO t (a) VALUES (1)")
        conn.rollback()
        assert not conn.in_transaction
        cursor.execute("SELECT count(*) FROM t")
        assert cursor.fetchone() == (0,)
        conn.commit()  # no-op outside a transaction

    def test_closed_connection_interface_error(self):
        conn = dbapi.connect("umbra")
        conn.close()
        with pytest.raises(dbapi.InterfaceError):
            conn.cursor()
        with pytest.raises(dbapi.InterfaceError):
            conn.commit()
