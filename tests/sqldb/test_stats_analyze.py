"""ANALYZE statistics collection and its plan-cache interaction.

Covers the collection edge cases (null-heavy, all-equal, all-null and
empty columns, text min/max), the ``ANALYZE [table]`` statement, and the
invalidation contract: a stats refresh bumps ``stats_version`` so cached
plans optimized under the old statistics stop matching.
"""

import pytest

from repro.errors import CatalogError
from repro.sqldb import Database

from repro.sqldb.catalog import ColumnStats, TableStats


@pytest.fixture
def db():
    database = Database("postgres")
    database.run_script(
        """
        CREATE TABLE people (age int, name text, score double precision);
        INSERT INTO people (age, name, score) VALUES
            (30, 'ann', 1.5), (30, 'bob', NULL), (41, NULL, 2.5),
            (NULL, 'ann', NULL), (55, 'cid', 0.0);
        CREATE TABLE empty_t (x int, y text);
        """
    )
    yield database
    database.close()


def test_numeric_column_stats(db):
    db.analyze("people")
    stats = db.catalog.table_stats("people")
    assert isinstance(stats, TableStats)
    assert stats.n_rows == 5
    age = stats.columns["age"]
    assert isinstance(age, ColumnStats)
    assert age.n_nulls == 1
    assert age.null_fraction == pytest.approx(0.2)
    assert age.ndv == 3  # 30 appears twice
    assert age.min_value == 30.0
    assert age.max_value == 55.0


def test_text_column_stats(db):
    db.analyze("people")
    name = db.catalog.table_stats("people").columns["name"]
    assert name.n_nulls == 1
    assert name.ndv == 3
    assert (name.min_value, name.max_value) == ("ann", "cid")


def test_all_null_and_all_equal_columns():
    db = Database("postgres")
    db.run_script(
        """
        CREATE TABLE t (c int, k int);
        INSERT INTO t (c, k) VALUES (NULL, 7), (NULL, 7), (NULL, 7);
        """
    )
    db.analyze()
    stats = db.catalog.table_stats("t")
    all_null = stats.columns["c"]
    assert all_null.n_nulls == 3
    assert all_null.null_fraction == pytest.approx(1.0)
    assert all_null.ndv == 0
    assert all_null.min_value is None and all_null.max_value is None
    all_equal = stats.columns["k"]
    assert all_equal.ndv == 1
    assert all_equal.min_value == all_equal.max_value == 7.0
    db.close()


def test_empty_table_stats(db):
    db.analyze("empty_t")
    stats = db.catalog.table_stats("empty_t")
    assert stats.n_rows == 0
    for column in stats.columns.values():
        assert column.n_nulls == 0
        assert column.null_fraction == 0.0
        assert column.ndv == 0


def test_analyze_statement(db):
    # bare ANALYZE covers every base table; rowcount reports how many
    result = db.execute("ANALYZE")
    assert result.rowcount == 2
    assert db.catalog.analyzed_tables == ["empty_t", "people"]
    # single-table form
    db2 = Database("umbra")
    db2.execute("CREATE TABLE only (x int)")
    assert db2.execute("ANALYZE only").rowcount == 1
    assert db2.catalog.analyzed_tables == ["only"]
    db2.close()


def test_analyze_unknown_table_raises(db):
    with pytest.raises(CatalogError):
        db.analyze("nope")


def test_stats_version_bumps_and_drop_clears(db):
    assert db.catalog.stats_version == 0
    db.analyze("people")
    assert db.catalog.stats_version == 1
    db.analyze()
    assert db.catalog.stats_version == 2
    db.execute("DROP TABLE people")
    assert db.catalog.table_stats("people") is None
    assert db.catalog.analyzed_tables == ["empty_t"]


def test_stats_refresh_reflects_new_data(db):
    db.analyze("people")
    assert db.catalog.table_stats("people").n_rows == 5
    db.execute("INSERT INTO people (age, name, score) VALUES (60, 'dee', 9.0)")
    # PostgreSQL-style: stats stay stale until the next ANALYZE
    assert db.catalog.table_stats("people").n_rows == 5
    db.analyze("people")
    assert db.catalog.table_stats("people").n_rows == 6


def test_plan_cache_invalidated_on_analyze():
    db = Database("postgres", optimize=True)
    db.run_script(
        """
        CREATE TABLE t (a int, b int);
        INSERT INTO t (a, b) VALUES (1, 10), (2, 20), (3, 30);
        """
    )
    query = "SELECT a FROM t WHERE a > 1 AND b < 25"
    db.execute(query)
    misses_before = db.plan_cache.stats["misses"]
    db.execute(query)
    assert db.plan_cache.stats["hits"] >= 1  # second run hit the cache
    db.analyze()
    db.execute(query)
    # the stats refresh changed the cache key: the old entry stops matching
    assert db.plan_cache.stats["misses"] == misses_before + 1
    db.close()


def test_optimize_flag_partitions_the_cache():
    """The same SQL planned with and without the rewrite layer must not
    share one cache entry (the plans differ)."""
    db_off = Database("postgres")
    db_on = Database("postgres", optimize=True)
    for db in (db_off, db_on):
        db.run_script(
            """
            CREATE TABLE t (a int, b int);
            INSERT INTO t (a, b) VALUES (1, 10), (2, 20);
            """
        )
    db_on.adopt_plan_cache(db_off)  # shared cache, like a reconnect
    query = "SELECT a FROM t WHERE a > 0 AND b > 0"
    db_off.execute(query)
    misses = db_on.plan_cache.stats["misses"]
    db_on.execute(query)
    assert db_on.plan_cache.stats["misses"] == misses + 1
    db_off.close()
    db_on.close()
