"""Morsel-driven parallel execution: serial/parallel byte-identity.

Every query in the corpus runs on a serial reference database and on
parallel databases with several worker counts and a tiny morsel size (so
even small tables split into many morsels).  Rows must compare equal AND
repr-identical — the latter catches Python-level divergences (numpy
scalar vs Python scalar, int vs float) that ``==`` would mask.
"""

import numpy as np
import pytest

from repro.sqldb import Database
from repro.sqldb.engine import WORKERS_ENV

N_ROWS = 700
MORSEL = 97  # forces 8 morsels with a ragged tail


def _fill(db: Database, n=N_ROWS) -> None:
    db.execute(
        "CREATE TABLE t (id int, grp text, val double precision, "
        "flag boolean, tag text)"
    )
    db.execute("CREATE TABLE dim (tag text, weight int)")
    rng = np.random.RandomState(42)
    data = {
        "id": list(range(n)),
        "grp": [f"g{rng.randint(0, 23)}" for _ in range(n)],
        "val": [
            None if rng.rand() < 0.08 else float(rng.randint(-500, 500))
            for _ in range(n)
        ],
        "flag": [bool(rng.rand() < 0.5) for _ in range(n)],
        "tag": [
            None if rng.rand() < 0.05 else f"tag{rng.randint(0, 6)}"
            for _ in range(n)
        ],
    }
    db.catalog.table("t").append_columns(data, n)
    db.catalog.table("dim").append_columns(
        {"tag": [f"tag{i}" for i in range(6)], "weight": list(range(6))}, 6
    )
    db.catalog.bump_version()


QUERIES = [
    # pure pipelines: filter / project over a scan
    "SELECT id, val FROM t WHERE val > 100",
    "SELECT id, val * 2 AS v2, grp FROM t WHERE flag AND val IS NOT NULL",
    "SELECT id FROM t WHERE grp = 'g3' OR tag = 'tag1'",
    "SELECT id, CASE WHEN val > 0 THEN 'pos' ELSE 'neg' END AS sign FROM t "
    "WHERE val IS NOT NULL",
    # empty result (dtype of the empty batch must survive the concat)
    "SELECT id, val FROM t WHERE val > 100000",
    # grouped aggregates: exact merge path
    "SELECT grp, count(*) AS c FROM t GROUP BY grp ORDER BY grp",
    "SELECT grp, count(*) AS c, sum(val) AS s, min(val) AS lo, "
    "max(val) AS hi, avg(val) AS mean FROM t GROUP BY grp ORDER BY grp",
    "SELECT grp, tag, count(val) AS c FROM t GROUP BY grp, tag "
    "ORDER BY grp, tag",
    "SELECT tag, array_agg(id) AS ids FROM t GROUP BY tag ORDER BY tag",
    "SELECT grp, count(*) FILTER (WHERE flag) AS flagged FROM t "
    "GROUP BY grp ORDER BY grp",
    # scalar aggregates
    "SELECT count(*), sum(val), min(val), max(val), avg(val) FROM t",
    "SELECT count(*) FROM t WHERE val > 0",
    # non-decomposable aggregates: concat fallback path
    "SELECT grp, count(DISTINCT tag) AS tags FROM t GROUP BY grp ORDER BY grp",
    "SELECT grp, stddev(val) AS sd, var_pop(val) AS vp FROM t "
    "GROUP BY grp ORDER BY grp",
    # avg over non-integral values: exactness certificate fails -> fallback
    "SELECT grp, avg(val / 3) AS m FROM t GROUP BY grp ORDER BY grp",
    "SELECT grp, sum(val * 0.5) AS s FROM t GROUP BY grp ORDER BY grp",
    # joins: morselized probe side, shared build side
    "SELECT t.id, t.tag, dim.weight FROM t JOIN dim ON t.tag = dim.tag "
    "WHERE t.val > 0",
    "SELECT t.id, dim.weight FROM t LEFT JOIN dim ON t.tag = dim.tag "
    "ORDER BY t.id LIMIT 40",
    "SELECT a.id, b.id AS other FROM t a JOIN t b ON a.id = b.id "
    "WHERE a.val > 400",
    # join feeding an aggregate
    "SELECT dim.weight, count(*) AS c FROM t JOIN dim ON t.tag = dim.tag "
    "GROUP BY dim.weight ORDER BY dim.weight",
    # pipeline breakers above a parallel pipeline
    "SELECT id, val FROM t WHERE val > 250 ORDER BY val DESC, id",
    "SELECT DISTINCT grp FROM t WHERE flag ORDER BY grp",
    "SELECT id, val, row_number() OVER (PARTITION BY grp ORDER BY id) AS rn "
    "FROM t WHERE val IS NOT NULL ORDER BY id LIMIT 60",
    # set operations and CTEs
    "SELECT id FROM t WHERE val > 450 UNION ALL SELECT id FROM t "
    "WHERE val < -450",
    "WITH big AS (SELECT id, grp, val FROM t WHERE val > 0) "
    "SELECT grp, count(*) AS c FROM big GROUP BY grp ORDER BY grp",
    "WITH big AS NOT MATERIALIZED (SELECT id, val FROM t WHERE val > 0) "
    "SELECT count(*) FROM big WHERE val < 250",
    # scalar subquery inside a parallel filter
    "SELECT id FROM t WHERE val > (SELECT avg(val) FROM t) ORDER BY id "
    "LIMIT 25",
]


@pytest.fixture(scope="module")
def reference():
    dbs = {}
    for profile in ("postgres", "umbra"):
        db = Database(profile)
        _fill(db)
        dbs[profile] = db
    return dbs


@pytest.fixture(scope="module")
def parallel_dbs():
    dbs = {}
    for profile in ("postgres", "umbra"):
        for workers in (2, 8):
            db = Database(profile, workers=workers, morsel_size=MORSEL)
            _fill(db)
            dbs[(profile, workers)] = db
    yield dbs
    for db in dbs.values():
        db.close()


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("profile", ["postgres", "umbra"])
@pytest.mark.parametrize("workers", [2, 8])
def test_parallel_matches_serial(reference, parallel_dbs, query, profile, workers):
    expected = reference[profile].execute(query)
    got = parallel_dbs[(profile, workers)].execute(query)
    assert got.columns == expected.columns
    assert got.rows == expected.rows
    # repr-identity: same Python types, not merely ==
    assert [tuple(map(repr, row)) for row in got.rows] == [
        tuple(map(repr, row)) for row in expected.rows
    ]


def test_morsel_boundary_edges():
    """Source length exactly at / around a multiple of the morsel size."""
    for n in (96, 97, 98, 194, 195):
        serial = Database("umbra")
        parallel = Database("umbra", workers=3, morsel_size=97)
        for db in (serial, parallel):
            db.execute("CREATE TABLE e (x int)")
            db.catalog.table("e").append_columns({"x": list(range(n))}, n)
            db.catalog.bump_version()
        q = "SELECT x, x * x AS sq FROM e WHERE x % 2 = 0"
        assert parallel.execute(q).rows == serial.execute(q).rows
        q = "SELECT count(*) AS c, sum(x) AS s FROM e WHERE x > 3"
        assert parallel.execute(q).rows == serial.execute(q).rows
        parallel.close()


def test_workers_env_variable(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "4")
    db = Database("umbra")
    assert db.workers == 4
    monkeypatch.setenv(WORKERS_ENV, "banana")
    with pytest.raises(Exception):
        Database("umbra")
    monkeypatch.delenv(WORKERS_ENV)
    assert Database("umbra").workers == 1  # profile default stays serial
    assert Database("umbra", workers=6).workers == 6  # arg beats env


def test_parallel_execution_actually_morselizes():
    db = Database("umbra", workers=4, morsel_size=50, collect_exec_stats=True)
    _fill(db, n=400)
    db.execute("SELECT grp, count(*) FROM t WHERE val > 0 GROUP BY grp")
    stats = db.last_exec_stats
    assert stats is not None
    morselized = [s for s in stats.nodes.values() if s.parallel_morsels]
    assert morselized, "no operator ran morsel-parallel"
    assert any(s.parallel_morsels == 8 for s in morselized)  # 400 / 50
    db.close()


def test_explain_analyze_reports_counts():
    db = Database("umbra", workers=2, morsel_size=100)
    _fill(db, n=300)
    text = db.explain_analyze("SELECT id FROM t WHERE val > 0")
    assert "actual rows=" in text
    assert "morsels=3" in text
    assert "Execution time:" in text
    # cumulative counters aggregate by operator label
    assert db.operator_counters
    assert any("Filter" in label for label in db.operator_counters)
    db.close()


def test_explain_analyze_serial_database():
    db = Database("postgres")
    _fill(db, n=40)
    text = db.explain_analyze("SELECT grp, count(*) FROM t GROUP BY grp")
    expected = db.execute("SELECT count(DISTINCT grp) FROM t").scalar()
    assert f"actual rows={expected}" in text
    assert "morsels" not in text


def test_plan_cache_reexecution_with_workers():
    """Cached plans must be re-executable under parallel dispatch."""
    db = Database("umbra", workers=4, morsel_size=64)
    _fill(db)
    q = "SELECT grp, sum(val) AS s FROM t WHERE val > ? GROUP BY grp ORDER BY grp"
    first = db.execute(q, [0])
    again = db.execute(q, [0])
    assert db.plan_cache.stats["hits"] >= 1
    assert first.rows == again.rows
    shifted = db.execute(q, [200])
    assert shifted.rows != first.rows
    db.close()


# ---------------------------------------------------------------------------
# vectorised unnest regressions (satellite 1)
# ---------------------------------------------------------------------------


def _unnest_db(profile="umbra", **kwargs) -> Database:
    db = Database(profile, **kwargs)
    db.execute("CREATE TABLE arrs (id int, xs text)")
    return db


def test_unnest_basic_expansion():
    db = Database("umbra")
    db.execute("CREATE TABLE s (g text)")
    db.execute("INSERT INTO s VALUES ('a'), ('b'), ('a')")
    result = db.execute(
        "SELECT u.val FROM (SELECT unnest(array_agg(g)) AS val FROM s) u"
    )
    assert [r[0] for r in result.rows] == ["a", "b", "a"]


def test_unnest_empty_arrays():
    db = Database("umbra")
    db.execute("CREATE TABLE s (g text, k int)")
    db.execute("INSERT INTO s VALUES ('a', 1), ('b', 2)")
    # array_agg FILTER produces an empty list for every group: zero rows out
    result = db.execute(
        "SELECT unnest(array_agg(g) FILTER (WHERE k > 5)) AS v, k FROM s "
        "GROUP BY k"
    )
    assert result.rows == []


def test_unnest_all_null_lead():
    from repro.sqldb.executor import _expand_unnest
    from repro.sqldb.vector import from_values

    columns = {
        "u": from_values([None, None]),
        "k": from_values([1, 2]),
    }
    batch = _expand_unnest(2, columns, ["u"])
    assert batch.length == 0


def test_unnest_mismatched_lengths():
    from repro.errors import SQLExecutionError
    from repro.sqldb.executor import _expand_unnest
    from repro.sqldb.vector import from_values

    columns = {
        "a": from_values([[1, 2], [3]]),
        "b": from_values([[1], [2]]),
    }
    with pytest.raises(SQLExecutionError, match="mismatched"):
        _expand_unnest(2, columns, ["a", "b"])


def test_unnest_non_array_argument():
    from repro.errors import SQLExecutionError
    from repro.sqldb.executor import _expand_unnest
    from repro.sqldb.vector import from_values

    columns = {"a": from_values(["not-a-list", [1]])}
    with pytest.raises(SQLExecutionError, match="not an array"):
        _expand_unnest(2, columns, ["a"])


def test_unnest_matches_serial_under_parallelism():
    serial = Database("umbra")
    parallel = Database("umbra", workers=4, morsel_size=7)
    for db in (serial, parallel):
        db.execute("CREATE TABLE s (g text, k int)")
        n = 60
        db.catalog.table("s").append_columns(
            {"g": [f"v{i % 9}" for i in range(n)], "k": [i % 4 for i in range(n)]},
            n,
        )
        db.catalog.bump_version()
    q = (
        "SELECT k2, unnest(vals) AS v FROM (SELECT k AS k2, array_agg(g) AS "
        "vals FROM s GROUP BY k) sub"
    )
    assert parallel.execute(q).rows == serial.execute(q).rows
    parallel.close()
