"""Unit tests for the Vector value model and the factorisation kernels."""

import numpy as np
import pytest

from repro.sqldb import hashing, vector
from repro.sqldb.vector import Vector, constant, from_values, gather


class TestVectorConstruction:
    def test_from_values_numeric(self):
        v = from_values([1, 2, None])
        assert v.values.dtype == np.float64
        assert v.nulls.tolist() == [False, False, True]

    def test_from_values_bool(self):
        v = from_values([True, False])
        assert v.is_bool

    def test_from_values_text(self):
        v = from_values(["a", None])
        assert v.values.dtype == object

    def test_item_integral_float_becomes_int(self):
        v = from_values([2.0, 2.5])
        assert v.item(0) == 2 and isinstance(v.item(0), int)
        assert v.item(1) == 2.5

    def test_item_null_is_none(self):
        assert from_values([None]).item(0) is None

    def test_constant_null(self):
        v = constant(None, 3)
        assert v.nulls.all()

    def test_constant_text(self):
        assert constant("x", 2).tolist() == ["x", "x"]


class TestVectorOps:
    def test_arithmetic_null_propagates(self):
        out = vector.arithmetic("+", from_values([1, None]), from_values([1, 1]))
        assert out.tolist() == [2, None]

    def test_division_by_zero_null(self):
        out = vector.arithmetic("/", from_values([1]), from_values([0]))
        assert out.tolist() == [None]

    def test_concat_strings_and_arrays(self):
        strings = vector.arithmetic(
            "||", from_values(["a"]), from_values(["b"])
        )
        assert strings.tolist() == ["ab"]
        arrays = vector.arithmetic(
            "||", from_values([[1, 2]]), from_values([3])
        )
        assert arrays.tolist() == [[1, 2, 3]]

    def test_compare_null_is_unknown(self):
        out = vector.compare("=", from_values([None]), from_values([1]))
        assert out.nulls.tolist() == [True]

    def test_three_valued_and_or(self):
        true = from_values([True])
        null = Vector(np.array([False]), np.array([True]))
        false = from_values([False])
        assert vector.logical_and(null, false).nulls.tolist() == [False]
        assert vector.logical_and(null, true).nulls.tolist() == [True]
        assert vector.logical_or(null, true).nulls.tolist() == [False]
        assert vector.logical_or(null, false).nulls.tolist() == [True]

    def test_gather_with_holes(self):
        v = from_values(["a", "b"])
        out = gather(v, np.array([1, -1, 0]), missing_null=True)
        assert out.tolist() == ["b", None, "a"]

    def test_gather_empty_vector_all_holes(self):
        v = from_values([])
        out = gather(v, np.array([-1, -1]), missing_null=True)
        assert out.tolist() == [None, None]

    def test_concat_vectors_mixed_dtypes(self):
        out = vector.concat_vectors([from_values([1]), from_values(["x"])])
        assert out.tolist() == [1.0, "x"]


class TestFactorization:
    def test_equal_values_share_codes_across_sides(self):
        left = from_values(["a", "b", "c"])
        right = from_values(["c", "a"])
        lc, rc = hashing.factorize_columns([(left, right)], [False])
        assert lc[0] == rc[1]  # 'a'
        assert lc[2] == rc[0]  # 'c'
        assert lc[1] not in (rc[0], rc[1])  # 'b' unmatched

    def test_nulls_invalid_unless_null_safe(self):
        left = from_values([None, "a"])
        right = from_values([None])
        lc, rc = hashing.factorize_columns([(left, right)], [False])
        assert lc[0] == hashing.INVALID
        assert rc[0] == hashing.INVALID
        lc, rc = hashing.factorize_columns([(left, right)], [True])
        assert lc[0] == rc[0] != hashing.INVALID

    def test_multi_column_keys(self):
        a = from_values(["x", "x"])
        b = from_values([1, 2])
        lc, rc = hashing.factorize_columns(
            [(a, a), (b, b)], [False, False]
        )
        assert lc[0] != lc[1]  # ('x',1) vs ('x',2)
        assert (lc == rc).all()

    def test_group_codes_null_is_a_group(self):
        codes, representatives = hashing.group_codes(
            [from_values(["a", None, "a", None])]
        )
        assert codes[0] == codes[2]
        assert codes[1] == codes[3]
        assert codes[0] != codes[1]
        assert len(representatives) == 2

    def test_group_codes_numeric_sorted_order(self):
        codes, _ = hashing.group_codes([from_values([30, 10, 20])])
        assert codes.tolist() == [2, 0, 1]

    def test_group_codes_empty(self):
        codes, representatives = hashing.group_codes([from_values([])])
        assert len(codes) == 0
        assert len(representatives) == 0

    def test_mixed_type_object_column_falls_back(self):
        mixed = from_values([1, "a", 1, "a"])
        codes, reps = hashing.group_codes([mixed])
        assert codes[0] == codes[2]
        assert codes[1] == codes[3]
        assert len(reps) == 2
