"""Crash/fault-injection property tests for the durability layer.

The central property: **crash at any crashpoint, under any workload,
recovery yields the state as of some acknowledged commit boundary —
either the last acked commit, or (when the crash hit mid-commit) that
plus the in-flight transaction.  Never a partial transaction.**

The harness runs a deterministic randomized workload against a durable
database with one crashpoint armed, mirrors every *acknowledged*
statement onto a non-durable oracle database, then "crashes" (abandons
the object), recovers from the WAL path, and compares against the
oracle's acceptable states.  Both crash models are exercised: process
crash (file as flushed) and power loss (file truncated to the last
fsync).

Rounds are budgeted for tier-1 by default; ``--fault-rounds 200`` (or
more) runs the full acceptance sweep.
"""

import random

import pytest

from repro.errors import SQLError
from repro.sqldb.engine import Database
from repro.sqldb.faults import (
    CRASHPOINTS,
    NO_FAULTS,
    FaultInjector,
    SimulatedCrash,
)
from repro.sqldb.wal import truncate_wal

pytestmark = pytest.mark.faults

#: rounds of the randomized workload property when --fault-rounds is not
#: given (enough to touch every crashpoint under both crash models)
DEFAULT_ROUNDS = 26


@pytest.fixture
def fault_rounds(request):
    return request.config.getoption("--fault-rounds") or DEFAULT_ROUNDS


# -- workload generation ------------------------------------------------------


def _gen_ops(rng):
    """A randomized workload: a flat list of ops.

    Schema ops stay in autocommit (the generator tracks live tables so
    every statement is valid); transaction blocks insert and exercise
    savepoints, committing or rolling back at random.
    """
    ops = []
    tables = {"t0"}
    ops.append(("sql", "CREATE TABLE t0 (a int, b text)", ()))
    n_ops = rng.randint(3, 10)
    for _ in range(n_ops):
        kind = rng.random()
        table = rng.choice(sorted(tables))
        if kind < 0.35:  # autocommit insert
            ops.append(
                (
                    "sql",
                    f"INSERT INTO {table} (a, b) VALUES (?, ?)",
                    (rng.randint(0, 99), f"v{rng.randint(0, 9)}"),
                )
            )
        elif kind < 0.5:  # executemany batch
            rows = [
                (rng.randint(0, 99), f"m{j}") for j in range(rng.randint(1, 5))
            ]
            ops.append(
                ("many", f"INSERT INTO {table} (a, b) VALUES (?, ?)", rows)
            )
        elif kind < 0.75:  # transaction block (inserts + savepoints)
            ops.append(("sql", "BEGIN", ()))
            for _ in range(rng.randint(1, 4)):
                roll = rng.random()
                if roll < 0.25:
                    ops.append(("sql", "SAVEPOINT sp", ()))
                    ops.append(
                        (
                            "sql",
                            f"INSERT INTO {table} (a, b) VALUES (?, ?)",
                            (rng.randint(0, 99), "sp"),
                        )
                    )
                    if rng.random() < 0.5:
                        ops.append(("sql", "ROLLBACK TO sp", ()))
                else:
                    ops.append(
                        (
                            "sql",
                            f"INSERT INTO {table} (a, b) VALUES (?, ?)",
                            (rng.randint(0, 99), "tx"),
                        )
                    )
            ops.append(
                ("sql", "COMMIT" if rng.random() < 0.7 else "ROLLBACK", ())
            )
        elif kind < 0.85:  # checkpoint
            ops.append(("checkpoint",))
        elif kind < 0.95 and len(tables) < 3:  # create another table
            name = f"t{len(tables)}"
            tables.add(name)
            ops.append(("sql", f"CREATE TABLE {name} (a int, b text)", ()))
        elif len(tables) > 1:  # drop a non-primary table
            name = sorted(tables)[-1]
            tables.discard(name)
            ops.append(("sql", f"DROP TABLE {name}", ()))
    return ops


def _apply(db, op):
    if op[0] == "sql":
        db.execute(op[1], op[2] or None)
    elif op[0] == "many":
        db.executemany(op[1], op[2])
    else:  # checkpoint — durable databases only; a logical no-op
        if db.durable:
            db.execute("CHECKPOINT")


def _state(db):
    out = []
    for name in db.catalog.table_names:
        result = db.execute(f"SELECT a, b FROM {name}")
        out.append((name, tuple(sorted(result.rows))))
    return tuple(out)


# -- the crash-at-any-point property ------------------------------------------


def _run_round(tmp_path, seed, point, model):
    """One randomized workload with *point* armed; returns the fired
    crashpoint (or None when the workload never reached it)."""
    wal_path = str(tmp_path / f"round{seed}.wal")
    oracle = Database("umbra")
    faults = FaultInjector()
    rng = random.Random(seed)
    # torn crashpoints only fire via their pending() pre-check, which
    # looks one hit ahead — they must be armed with hits=1
    hits = 1 if point.endswith(".torn") else rng.randint(1, 3)
    faults.arm(point, hits=hits)
    db = Database("umbra", wal_path=wal_path, faults=faults)

    committed = _state(oracle)
    crashed_op = None
    for op in _gen_ops(rng):
        try:
            _apply(db, op)
        except SimulatedCrash:
            crashed_op = op
            break
        _apply(oracle, op)  # the statement was acknowledged: mirror it
        if not oracle.in_transaction:
            committed = _state(oracle)

    acceptable = {committed}
    if crashed_op is not None:
        # the crash hit mid-commit; recovery may also surface the state
        # with the in-flight transaction applied
        try:
            _apply(oracle, crashed_op)
        except SQLError:
            pass
        if oracle.in_transaction:
            oracle.execute("COMMIT")
        acceptable.add(_state(oracle))

    synced_size = db._wal.synced_size
    db.close()
    if model == "powerloss" and crashed_op is not None:
        # everything after the last fsync never reached the disk
        truncate_wal(wal_path, synced_size)

    recovered = Database("umbra", wal_path=wal_path)
    got = _state(recovered)
    recovered.close()
    assert got in acceptable, (
        f"seed={seed} point={point} model={model}: recovered state "
        f"{got!r} is neither the last acked commit nor the in-flight "
        f"transaction's post-state {acceptable!r}"
    )
    return faults.fired


class TestCrashAtEveryPoint:
    def test_randomized_workloads_recover_consistently(
        self, tmp_path, fault_rounds
    ):
        """The acceptance property: every crashpoint x randomized
        workloads x both crash models, recovery is never partial."""
        fired = set()
        for i in range(fault_rounds):
            point = CRASHPOINTS[i % len(CRASHPOINTS)]
            model = ("process", "powerloss")[(i // len(CRASHPOINTS)) % 2]
            outcome = _run_round(tmp_path, seed=1000 + i, point=point, model=model)
            if outcome:
                fired.add(outcome)
        # the sweep must actually exercise the armed points, not dodge them
        assert len(fired) >= min(fault_rounds, len(CRASHPOINTS)) // 2

    def test_every_crashpoint_fires_on_a_known_workload(self, tmp_path):
        """Deterministic sweep: one insert + checkpoint reaches every
        crashpoint; recovery always yields pre- or post-state."""
        for point in CRASHPOINTS:
            wal_path = str(tmp_path / f"det-{point}.wal")
            db = Database("umbra", wal_path=wal_path)
            db.execute("CREATE TABLE t (a int)")
            db.execute("INSERT INTO t (a) VALUES (1)")
            db.close()

            faults = FaultInjector()
            faults.arm(point)
            db = Database("umbra", wal_path=wal_path, faults=faults)
            with pytest.raises(SimulatedCrash):
                db.execute("INSERT INTO t (a) VALUES (2)")
                db.execute("CHECKPOINT")
            assert faults.fired == point
            db.close()

            recovered = Database("umbra", wal_path=wal_path)
            rows = sorted(recovered.execute("SELECT a FROM t").column("a"))
            assert rows in ([1], [1, 2]), (point, rows)
            recovered.close()

    def test_crash_during_commit_never_yields_partial_txn(self, tmp_path):
        """A multi-statement transaction recovers all-or-nothing even
        when the crash lands between its WAL records."""
        for hits in (1, 2, 3, 4):
            wal_path = str(tmp_path / f"partial-{hits}.wal")
            db = Database("umbra", wal_path=wal_path)
            db.execute("CREATE TABLE t (a int)")
            db.close()

            faults = FaultInjector()
            faults.arm("wal.append.after", hits=hits)
            db = Database("umbra", wal_path=wal_path, faults=faults)
            db.execute("BEGIN")
            db.execute("INSERT INTO t (a) VALUES (1)")
            db.execute("INSERT INTO t (a) VALUES (2)")
            with pytest.raises(SimulatedCrash):
                db.execute("COMMIT")
            db.close()

            recovered = Database("umbra", wal_path=wal_path)
            rows = sorted(recovered.execute("SELECT a FROM t").column("a"))
            # crash after the commit record: both rows; earlier: neither
            assert rows in ([], [1, 2]), (hits, rows)
            recovered.close()

    def test_torn_commit_record_discards_whole_txn(self, tmp_path):
        wal_path = str(tmp_path / "torn.wal")
        db = Database("umbra", wal_path=wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.close()

        faults = FaultInjector()
        faults.arm("wal.append.torn")
        db = Database("umbra", wal_path=wal_path, faults=faults)
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a) VALUES (1)")
        with pytest.raises(SimulatedCrash):
            db.execute("COMMIT")  # the first appended record tears
        db.close()

        recovered = Database("umbra", wal_path=wal_path)
        assert recovered.execute("SELECT count(*) FROM t").scalar() == 0
        recovered.close()

    def test_crash_between_checkpoint_rename_and_reset(self, tmp_path):
        """The WAL survives a crash right after the checkpoint rename;
        replaying it over the new snapshot must not double-apply."""
        wal_path = str(tmp_path / "ckpt.wal")
        db = Database("umbra", wal_path=wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        db.close()

        faults = FaultInjector()
        faults.arm("checkpoint.after_rename")
        db = Database("umbra", wal_path=wal_path, faults=faults)
        with pytest.raises(SimulatedCrash):
            db.execute("CHECKPOINT")
        db.close()

        recovered = Database("umbra", wal_path=wal_path)
        # the insert is in the checkpoint AND still in the un-reset WAL;
        # last_txn filtering keeps it single
        assert recovered.execute("SELECT a FROM t").column("a") == [1]
        recovered.close()


class TestFaultInjector:
    def test_unknown_crashpoint_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("wal.bogus")

    def test_nth_hit_fires(self):
        faults = FaultInjector()
        faults.arm("wal.fsync.before", hits=3)
        faults.check("wal.fsync.before")
        faults.check("wal.fsync.before")
        with pytest.raises(SimulatedCrash):
            faults.check("wal.fsync.before")
        assert faults.fired == "wal.fsync.before"
        assert faults.trace == ["wal.fsync.before"] * 3

    def test_disarm_and_clear(self):
        faults = FaultInjector()
        faults.arm("wal.fsync.before")
        faults.disarm("wal.fsync.before")
        faults.check("wal.fsync.before")  # no crash
        faults.arm("wal.fsync.after")
        faults.clear()
        faults.check("wal.fsync.after")

    def test_no_faults_is_inert(self):
        with pytest.raises(ValueError):
            NO_FAULTS.arm("wal.fsync.before")
        NO_FAULTS.check("wal.fsync.before")
        assert not NO_FAULTS.pending("wal.fsync.before")
