"""Multi-session MVCC: snapshot isolation, first-committer-wins,
per-table locking with deadlock detection, and session-scoped cancel."""

import threading
import time

import pytest

from repro.errors import (
    CatalogError,
    DeadlockDetected,
    SerializationFailure,
    TransactionError,
    TransactionRollback,
)
from repro.sqldb import dbapi
from repro.sqldb.engine import Database


@pytest.fixture
def db():
    database = Database("umbra")
    database.execute("CREATE TABLE t (a int, b text)")
    database.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    return database


def rows(executor, table="t"):
    return sorted(executor.execute(f"SELECT * FROM {table}").rows)


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestSnapshotIsolation:
    def test_uncommitted_writes_are_invisible_to_peers(self, db):
        a, b = db.session(), db.session()
        a.begin()
        a.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        assert rows(a) == [(1, "x"), (2, "y"), (3, "z")]
        # b (autocommit) and the default session still see committed state
        assert rows(b) == [(1, "x"), (2, "y")]
        assert rows(db) == [(1, "x"), (2, "y")]
        a.commit()
        assert rows(b) == [(1, "x"), (2, "y"), (3, "z")]

    def test_open_snapshot_ignores_later_commits(self, db):
        a, b = db.session(), db.session()
        a.begin()
        assert rows(a) == [(1, "x"), (2, "y")]
        b.execute("INSERT INTO t (a, b) VALUES (7, 'q')")
        # a's snapshot was captured at BEGIN: the new row stays invisible
        assert rows(a) == [(1, "x"), (2, "y")]
        a.commit()
        # after commit the session reads committed state again
        assert rows(a) == [(1, "x"), (2, "y"), (7, "q")]

    def test_snapshot_covers_ddl(self, db):
        a, b = db.session(), db.session()
        a.begin()
        b.execute("CREATE TABLE fresh (n int)")
        with pytest.raises(CatalogError):
            a.execute("SELECT * FROM fresh")
        a.rollback()
        assert a.execute("SELECT * FROM fresh").rows == []

    def test_read_only_transactions_commit_without_conflict(self, db):
        a, b = db.session(), db.session()
        a.begin()
        rows(a)
        b.execute("INSERT INTO t (a, b) VALUES (9, 'w')")
        a.commit()  # no writes, no conflict check, no error

    def test_sessions_have_independent_transaction_state(self, db):
        a, b = db.session(), db.session()
        a.begin()
        assert a.in_transaction and not b.in_transaction
        assert not db.in_transaction  # the default session is its own
        b.begin()
        a.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        b.rollback()
        a.commit()
        assert rows(db) == [(1, "x"), (2, "y"), (3, "z")]


class TestFirstCommitterWins:
    def test_write_write_conflict_raises_40001(self, db):
        a, b = db.session(), db.session()
        a.begin()
        b.begin()
        a.execute("INSERT INTO t (a, b) VALUES (11, 'a')")
        a.commit()
        b.execute("INSERT INTO t (a, b) VALUES (12, 'b')")
        with pytest.raises(SerializationFailure) as excinfo:
            b.commit()
        assert excinfo.value.sqlstate == "40001"
        assert isinstance(excinfo.value, TransactionRollback)
        # b's transaction is gone; its write never surfaced
        assert not b.in_transaction
        assert (12, "b") not in rows(db)

    def test_retry_after_40001_succeeds(self, db):
        a, b = db.session(), db.session()
        a.begin()
        b.begin()
        a.execute("INSERT INTO t (a, b) VALUES (20, 'a')")
        a.commit()  # releases t's lock; b's snapshot predates the commit
        b.execute("INSERT INTO t (a, b) VALUES (21, 'b')")
        with pytest.raises(SerializationFailure):
            b.commit()
        # the standard client loop: re-run the transaction from BEGIN
        b.begin()
        b.execute("INSERT INTO t (a, b) VALUES (21, 'b')")
        b.commit()
        assert (20, "a") in rows(db) and (21, "b") in rows(db)

    def test_disjoint_write_sets_do_not_conflict(self, db):
        db.execute("CREATE TABLE u (n int)")
        a, b = db.session(), db.session()
        a.begin()
        b.begin()
        a.execute("INSERT INTO t (a, b) VALUES (30, 'a')")
        b.execute("INSERT INTO u (n) VALUES (1)")
        a.commit()
        b.commit()
        assert (30, "a") in rows(db)
        assert rows(db, "u") == [(1,)]

    def test_drop_conflicts_with_concurrent_insert(self, db):
        a, b = db.session(), db.session()
        a.begin()
        b.execute("DROP TABLE t")
        # a's snapshot still has t, and t's lock is free again — but the
        # committed drop left a version tombstone behind
        a.execute("INSERT INTO t (a, b) VALUES (40, 'a')")
        with pytest.raises(SerializationFailure):
            a.commit()
        with pytest.raises(CatalogError):
            rows(db)

    def test_create_view_checks_referenced_tables(self, db):
        a, b = db.session(), db.session()
        a.begin()
        a.execute("CREATE MATERIALIZED VIEW mv AS SELECT a FROM t")
        b.execute("INSERT INTO t (a, b) VALUES (50, 'n')")
        # t moved under the view's feet: serial replay would materialise
        # different contents, so the commit must not succeed silently
        with pytest.raises(SerializationFailure):
            a.commit()

    def test_commit_order_ids_are_monotonic(self, db):
        a, b = db.session(), db.session()
        a.execute("INSERT INTO t (a, b) VALUES (60, 'a')")
        first = a.last_commit_id
        b.begin()
        b.execute("INSERT INTO t (a, b) VALUES (61, 'b')")
        b.commit()
        assert first is not None and b.last_commit_id > first


class TestLockingAndDeadlock:
    def test_writer_blocks_writer_on_same_table(self, db):
        a, b = db.session(), db.session()
        a.begin()
        a.execute("INSERT INTO t (a, b) VALUES (1, 'l')")
        started = threading.Event()
        done = threading.Event()

        def blocked_insert():
            started.set()
            b.execute("INSERT INTO t (a, b) VALUES (2, 'm')")
            done.set()

        thread = threading.Thread(target=blocked_insert)
        thread.start()
        assert started.wait(5)
        # b cannot proceed while a holds t's lock
        assert not done.wait(0.3)
        a.rollback()
        assert done.wait(10)
        thread.join(timeout=10)
        assert (2, "m") in rows(db)

    def test_deadlock_victim_gets_40p01_and_peer_proceeds(self, db):
        db.execute("CREATE TABLE u (n int)")
        a, b = db.session(), db.session()
        a.begin()
        b.begin()
        a.execute("INSERT INTO t (a, b) VALUES (1, 'a')")  # a holds t
        b.execute("INSERT INTO u (n) VALUES (1)")  # b holds u
        unblocked = threading.Event()

        def a_wants_u():
            a.execute("INSERT INTO u (n) VALUES (2)")  # blocks on b
            unblocked.set()

        thread = threading.Thread(target=a_wants_u)
        thread.start()
        assert wait_until(lambda: a.session_id in db.locks._waiting)
        # b closing the cycle is the victim, deterministically
        with pytest.raises(DeadlockDetected) as excinfo:
            b.execute("INSERT INTO t (a, b) VALUES (2, 'b')")
        assert excinfo.value.sqlstate == "40P01"
        # the victim's locks were released immediately: a unblocks and
        # can commit
        assert unblocked.wait(10)
        thread.join(timeout=10)
        a.commit()
        assert (1, "a") in rows(db)
        # b's transaction is aborted until ROLLBACK
        with pytest.raises(TransactionError) as aborted:
            b.execute("SELECT 1")
        assert aborted.value.sqlstate == "25P02"
        b.rollback()
        assert rows(b, "u") == [(2,)]  # only a's committed row

    def test_commit_of_aborted_transaction_rolls_back_quietly(self, db):
        db.execute("CREATE TABLE u (n int)")
        a, b = db.session(), db.session()
        a.begin()
        b.begin()
        a.execute("INSERT INTO t (a, b) VALUES (1, 'a')")
        b.execute("INSERT INTO u (n) VALUES (1)")
        blocked = threading.Thread(
            target=lambda: a.execute("INSERT INTO u (n) VALUES (2)")
        )
        blocked.start()
        assert wait_until(lambda: a.session_id in db.locks._waiting)
        with pytest.raises(DeadlockDetected):
            b.execute("INSERT INTO t (a, b) VALUES (2, 'b')")
        blocked.join(timeout=10)
        a.commit()
        # PostgreSQL: COMMIT of an aborted transaction reports ROLLBACK
        # instead of raising again
        b.execute("COMMIT")
        assert not b.in_transaction
        assert (1,) not in rows(db, "u")

    def test_autocommit_locks_are_transient(self, db):
        a = db.session()
        a.execute("INSERT INTO t (a, b) VALUES (5, 'a')")
        assert db.locks.held_by(a.session_id) == set()

    def test_transaction_locks_released_on_close(self, db):
        a = db.session()
        a.begin()
        a.execute("INSERT INTO t (a, b) VALUES (5, 'a')")
        assert db.locks.held_by(a.session_id) == {"t"}
        a.close()
        assert db.locks.held_by(a.session_id) == set()
        assert (5, "a") not in rows(db)  # close rolled the txn back


class TestSessionScopedCancel:
    def test_cancel_scopes_to_one_session(self, db):
        a, b = db.session(), db.session()
        with a.statement_guard() as ea, b.statement_guard() as eb:
            db.cancel(b)
            assert eb.is_set() and not ea.is_set()
            db.cancel()  # default session only: a and b untouched
            assert not ea.is_set()
            db.cancel_all()
            assert ea.is_set()

    def test_cancel_one_session_leaves_peer_running(self, tmp_path):
        path = tmp_path / "big.csv"
        with open(path, "w") as handle:
            handle.write("a,b\n")
            for i in range(20_000):
                handle.write(f"{i % 977},{i % 31}\n")
        db = Database("umbra", workers=2, morsel_size=256)
        db.execute("CREATE TABLE big (a int, b int)")
        db.execute(f"COPY big FROM '{path}' WITH (FORMAT CSV, HEADER TRUE)")
        a, b = db.session(), db.session()
        outcome = {}

        def run(name, session):
            try:
                outcome[name] = session.execute(
                    "SELECT a, sum(b) FROM big WHERE a % 3 = 0 GROUP BY a"
                )
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                outcome[name] = exc

        threads = [
            threading.Thread(target=run, args=("a", a)),
            threading.Thread(target=run, args=("b", b)),
        ]
        for thread in threads:
            thread.start()
        wait_until(lambda: b.has_active_statements, timeout=5.0)
        db.cancel(b)
        for thread in threads:
            thread.join(timeout=30)
        # a must never be collateral damage of b's cancel
        assert not isinstance(outcome["a"], Exception)
        db.close()


class TestSharedDatabaseConnections:
    def test_connections_share_data_but_not_transactions(self, db):
        c1 = dbapi.connect(database=db)
        c2 = dbapi.connect(database=db)
        c1.begin()
        cur1 = c1.cursor()
        cur1.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        cur2 = c2.cursor()
        cur2.execute("SELECT * FROM t")
        assert len(cur2.fetchall()) == 2  # c1's insert is uncommitted
        c1.commit()
        cur2.execute("SELECT * FROM t")
        assert len(cur2.fetchall()) == 3
        c1.close()
        c2.close()

    def test_serialization_failure_maps_to_operational_error(self, db):
        c1 = dbapi.connect(database=db)
        c2 = dbapi.connect(database=db)
        c1.begin()
        c2.begin()
        c1.cursor().execute("INSERT INTO t (a, b) VALUES (1, 'p')")
        c1.commit()  # releases t's lock; c2's snapshot predates this commit
        c2.cursor().execute("INSERT INTO t (a, b) VALUES (2, 'q')")
        with pytest.raises(dbapi.OperationalError) as excinfo:
            c2.commit()
        assert excinfo.value.sqlstate == "40001"
        c1.close()
        c2.close()

    def test_closing_shared_connection_keeps_database_alive(self, db):
        conn = dbapi.connect(database=db)
        conn.cursor().execute("INSERT INTO t (a, b) VALUES (8, 'k')")
        conn.close()
        with pytest.raises(dbapi.InterfaceError):
            conn.cursor()
        assert (8, "k") in rows(db)

    def test_owned_connection_shares_default_session(self):
        # connector code reaches through connection.database directly;
        # both paths must observe one transaction state
        conn = dbapi.connect("umbra")
        conn.cursor().execute("CREATE TABLE t (a int)")
        conn.begin()
        assert conn.database.in_transaction
        conn.database.execute("INSERT INTO t (a) VALUES (1)")
        conn.rollback()
        cur = conn.cursor()
        cur.execute("SELECT * FROM t")
        assert cur.fetchall() == []
        conn.close()


class TestCloseUnblocksPeers:
    def test_blocked_peer_unblocks_when_lock_holder_closes(self, db):
        """Regression: Session.close() must release *every* lock the
        session holds — a peer blocked on one of them unblocks instead
        of waiting forever on a session that no longer exists."""
        holder, peer = db.session(), db.session()
        holder.begin()
        holder.execute("INSERT INTO t (a, b) VALUES (5, 'h')")
        assert db.locks.held_by(holder.session_id) == {"t"}

        done = []

        def blocked_write():
            peer.execute("INSERT INTO t (a, b) VALUES (6, 'p')")
            done.append(True)

        thread = threading.Thread(target=blocked_write)
        thread.start()
        assert wait_until(
            lambda: peer.session_id in db.locks._waiting
        )
        holder.close()  # no explicit rollback: close must do it all
        thread.join(timeout=15)
        assert done == [True]
        assert db.locks.held_by(holder.session_id) == set()
        # the holder's uncommitted insert is gone, the peer's landed
        assert (5, "h") not in rows(db)
        assert (6, "p") in rows(db)
        assert holder.session_id not in db._sessions
        peer.close()

    def test_close_is_idempotent_and_forgets_session(self, db):
        session = db.session()
        session.execute("INSERT INTO t (a, b) VALUES (7, 'i')")
        assert session.session_id in db._sessions
        session.close()
        session.close()  # second close is a no-op
        assert session.session_id not in db._sessions
