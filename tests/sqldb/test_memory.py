"""The memory governor: accounting, admission, spill execution, faults.

The load-bearing property is *oracle identity*: a query that degrades to
spill-to-disk execution (external merge sort, Grace-partitioned hash
join, partitioned aggregation / DISTINCT) must return rows byte-identical
to the unbounded in-memory twin — same values, same nulls, same Python
value types, same order where SQL pins one.  ``--memory-rounds N``
raises the randomized-differential budget.

The rest is lifecycle: grants released on success, error and
cancellation alike; spill files reclaimed at statement end (the autouse
``_no_spill_leaks`` fixture in conftest audits the temp dir after every
test here too); a saturated global pool queues then sheds with SQLSTATE
53200 (retryable) instead of deadlocking; acked commits never depend on
spilled state.
"""

import os
import random
import threading
import time

import pytest

from repro.core.connectors import RETRYABLE_SQLSTATES, is_retryable
from repro.errors import (
    ConfigurationLimitExceeded,
    OutOfMemory,
    QueryCancelled,
)
from repro.sqldb import Database
from repro.sqldb.memory import (
    ALLOCATION_POINTS,
    MemoryBroker,
    MemoryFaultInjector,
    SpillFile,
    parse_memory_limit,
)

pytestmark = pytest.mark.memory

#: a per-query budget that forces sorts, join builds, aggregation and
#: distinct hash tables over _ROWS-row tables to spill, while leaving
#: room for the non-degradable allocations (result batches, materialised
#: CTEs, spill working chunks) of every workload query
_LIMIT = "64kb"
_ROWS = 1200


@pytest.fixture
def memory_rounds(request):
    value = request.config.getoption("--memory-rounds")
    return value if value is not None else 15


def _load(db, rows=_ROWS, seed=20260808):
    """big: wide-ish fact table; side: sparse-keyed probe table.

    Key ranges keep join fan-out near one match per row so every
    workload's *result batch* stays within the per-query budget while
    the intermediate hash tables and sort buffers exceed it."""
    rng = random.Random(seed)
    db.execute(
        "CREATE TABLE big "
        "(k integer, g integer, v double precision, s text)"
    )
    db.executemany(
        "INSERT INTO big VALUES (?, ?, ?, ?)",
        [
            (
                rng.randint(0, 600),
                rng.randint(0, 5),
                rng.choice([None, float(rng.randint(-500, 500)) / 4.0]),
                rng.choice([None, "a", "b", "c", "dd", "eee"]),
            )
            for _ in range(rows)
        ],
    )
    db.execute("CREATE TABLE side (k integer, w double precision)")
    db.executemany(
        "INSERT INTO side VALUES (?, ?)",
        [
            (rng.randint(0, 4800), float(rng.randint(-100, 100)))
            for _ in range(rows)
        ],
    )


#: one workload per memory-hungry operator; every query pins its order
_WORKLOAD = [
    "SELECT k, v FROM big ORDER BY v DESC NULLS LAST, k DESC",
    "SELECT b.k, b.v, side.w FROM big b JOIN side ON b.k = side.k "
    "ORDER BY b.k, b.v NULLS FIRST, side.w",
    "SELECT b.k, side.w FROM big b LEFT JOIN side ON b.k = side.k "
    "ORDER BY b.k, side.w NULLS LAST",
    "SELECT s, count(*) AS c, sum(v) AS t, min(v) AS lo, max(k) AS hi "
    "FROM big GROUP BY s ORDER BY s NULLS FIRST",
    "SELECT DISTINCT s, g FROM big ORDER BY s NULLS LAST, g",
    "SELECT k, row_number() OVER (PARTITION BY s ORDER BY v, k) "
    "AS rn FROM big ORDER BY k, rn",
    "WITH c AS (SELECT k, v FROM big WHERE v > 0) "
    "SELECT a.k, a.v, b.v FROM c a JOIN c b ON a.k = b.k "
    "ORDER BY a.k, a.v, b.v",
    "SELECT count(*) AS n, sum(v) AS t FROM big",
]


def _rows(db, sql):
    return db.execute(sql).rows


def _assert_identical(reference, candidate, context):
    assert len(reference) == len(candidate), context
    for i, (want, got) in enumerate(zip(reference, candidate)):
        assert want == got, f"{context}: row {i}: {want!r} != {got!r}"
        for a, b in zip(want, got):
            assert type(a) is type(b), (
                f"{context}: row {i}: type {type(a)} != {type(b)}"
            )


def _assert_quiesced(db):
    """No reserved bytes, no live grants, no spill files left behind."""
    snap = db.memory.snapshot()
    assert snap["reserved_bytes"] == 0, snap
    assert snap["active_grants"] == 0, snap
    assert db.memory.spill.live_files() == []


# -- units --------------------------------------------------------------------


class TestParsing:
    def test_parse_memory_limit_suffixes(self):
        assert parse_memory_limit("512") == 512
        assert parse_memory_limit("64kb") == 64 * 1024
        assert parse_memory_limit("8MB") == 8 * 1024 * 1024
        assert parse_memory_limit("1gb") == 1024**3
        assert parse_memory_limit("1.5kb") == 1536

    def test_parse_memory_limit_rejects_garbage(self):
        for bad in ("", "mb", "-1", "0", "12tb", "lots"):
            with pytest.raises(ValueError):
                parse_memory_limit(bad)

    def test_env_default_arms_the_broker(self, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MEMORY_LIMIT", "2mb")
        db = Database()
        try:
            assert db.memory is not None
            assert db.memory.limit == 2 * 1024 * 1024
        finally:
            db.close()
        monkeypatch.delenv("REPRO_SQL_MEMORY_LIMIT")
        db = Database()
        try:
            assert db.memory is None  # unbounded: the zero-overhead path
        finally:
            db.close()

    def test_query_limit_above_global_is_53400(self):
        with pytest.raises(ConfigurationLimitExceeded) as err:
            MemoryBroker(limit=1024, query_limit=2048)
        assert err.value.sqlstate == "53400"

    def test_memory_sqlstates_are_retryable(self):
        assert "53200" in RETRYABLE_SQLSTATES
        assert "53400" in RETRYABLE_SQLSTATES
        assert is_retryable(OutOfMemory("x"))
        assert is_retryable(ConfigurationLimitExceeded("x"))

    def test_fault_injector_rejects_unknown_points(self):
        with pytest.raises(ValueError):
            MemoryFaultInjector().deny("join.probe")


class TestSpillFile:
    def test_roundtrip_and_checksum(self, tmp_path):
        spill = SpillFile(str(tmp_path / "x.spill"))
        payloads = [{"a": 1}, [1, 2, None], "text", (b"bytes", 7)]
        for payload in payloads:
            assert spill.append(payload) > 0
        spill.finish_writing()
        assert list(spill.records()) == payloads
        spill.remove()
        assert not os.path.exists(spill.path)

    def test_empty_file_yields_nothing(self, tmp_path):
        spill = SpillFile(str(tmp_path / "empty.spill"))
        assert list(spill.records()) == []

    def test_torn_frame_is_durability_error(self, tmp_path):
        from repro.errors import DurabilityError

        spill = SpillFile(str(tmp_path / "torn.spill"))
        spill.append(list(range(100)))
        spill.finish_writing()
        with open(spill.path, "r+b") as handle:
            handle.truncate(os.path.getsize(spill.path) - 3)
        with pytest.raises(DurabilityError):
            list(spill.records())

    def test_corrupted_payload_is_durability_error(self, tmp_path):
        from repro.errors import DurabilityError

        spill = SpillFile(str(tmp_path / "bad.spill"))
        spill.append(list(range(100)))
        spill.finish_writing()
        with open(spill.path, "r+b") as handle:
            handle.seek(40)
            handle.write(b"\xff\xff")
        with pytest.raises(DurabilityError):
            list(spill.records())


# -- spill-path oracle identity ----------------------------------------------


class TestSpillDifferential:
    def test_limit_driven_spills_match_unbounded(self):
        reference = Database()
        limited = Database(query_memory_limit=_LIMIT)
        try:
            _load(reference)
            _load(limited)
            for sql in _WORKLOAD:
                _assert_identical(
                    _rows(reference, sql), _rows(limited, sql), sql
                )
            stats = limited.memory_stats()
            assert stats["session"]["spilled_bytes"] > 0
            assert stats["session"]["peak_memory_bytes"] > 0
            assert stats["spills"] > 0
            _assert_quiesced(limited)
        finally:
            reference.close()
            limited.close()

    def test_deny_at_every_allocation_point(self):
        """Sweep the registry: a denial at any point either degrades to
        a byte-identical spill plan or shed cleanly with 53200 — never a
        wrong answer, never a leak."""
        reference = Database()
        try:
            _load(reference)
            oracle = {sql: _rows(reference, sql) for sql in _WORKLOAD}
        finally:
            reference.close()
        for point in ALLOCATION_POINTS:
            faults = MemoryFaultInjector().deny(point)
            db = Database(memory_faults=faults)
            try:
                _load(db)
                for sql in _WORKLOAD:
                    try:
                        rows = _rows(db, sql)
                    except OutOfMemory as exc:
                        assert exc.sqlstate == "53200"
                        continue
                    _assert_identical(oracle[sql], rows, f"{point}: {sql}")
                _assert_quiesced(db)
            finally:
                db.close()

    def test_degradable_points_degrade_not_fail(self):
        """The four degradable reserves must *spill*, not error."""
        degradable = (
            "sort.buffer",
            "join.build",
            "agg.hashtable",
            "distinct.hashtable",
        )
        faults = MemoryFaultInjector()
        for point in degradable:
            faults.deny(point)
        reference = Database()
        db = Database(memory_faults=faults)
        try:
            _load(reference)
            _load(db)
            for sql in _WORKLOAD:
                _assert_identical(_rows(reference, sql), _rows(db, sql), sql)
            for point in degradable:
                assert point in faults.trace, sorted(set(faults.trace))
            assert db.memory.spill.total_spilled_bytes > 0
            _assert_quiesced(db)
        finally:
            reference.close()
            db.close()

    def test_randomized_differential(self, memory_rounds):
        """Random queries over random data: limited == unbounded."""
        rng = random.Random(0xB10E)
        reference = Database()
        limited = Database(query_memory_limit=_LIMIT)
        try:
            _load(reference, seed=rng.randint(0, 1 << 30))
            _load(limited, seed=20260808)
            reference.reset_storage()
            _load(reference, seed=20260808)
            for round_no in range(memory_rounds):
                sql = self._random_query(rng)
                _assert_identical(
                    _rows(reference, sql),
                    _rows(limited, sql),
                    f"round {round_no}: {sql}",
                )
            _assert_quiesced(limited)
        finally:
            reference.close()
            limited.close()

    @staticmethod
    def _random_query(rng):
        dirs = ["ASC", "DESC"]
        nulls = ["NULLS FIRST", "NULLS LAST"]

        def order(col):
            return f"{col} {rng.choice(dirs)} {rng.choice(nulls)}"

        kind = rng.randrange(4)
        if kind == 0:  # multi-key sort with a filter
            return (
                "SELECT k, v FROM big "
                f"WHERE k {rng.choice(['<', '>=', '<>'])} "
                f"{rng.randint(100, 500)} "
                f"ORDER BY {order('v')}, k {rng.choice(dirs)}"
            )
        if kind == 1:  # join + sort
            return (
                "SELECT b.k, b.v, side.w FROM big b "
                f"{rng.choice(['JOIN', 'LEFT JOIN'])} side ON b.k = side.k "
                f"WHERE side.w IS NULL OR side.w > {rng.randint(-80, 40)} "
                f"ORDER BY b.k, {order('b.v')}, side.w"
            )
        if kind == 2:  # grouped aggregation
            having = rng.choice(["", f"HAVING count(*) > {rng.randint(1, 4)} "])
            return (
                "SELECT g, count(*) AS c, sum(v) AS t, max(s) AS m "
                f"FROM big GROUP BY g {having}ORDER BY g"
            )
        return (  # distinct
            "SELECT DISTINCT s, g FROM big "
            f"WHERE k < {rng.randint(300, 600)} "
            f"ORDER BY {order('s')}, g DESC"
        )


# -- fault arms ---------------------------------------------------------------


class TestFaultArms:
    def test_fail_arm_surfaces_53200_then_recovers(self):
        faults = MemoryFaultInjector().fail("join.build", hits=1)
        db = Database(memory_faults=faults)
        try:
            _load(db)
            sql = _WORKLOAD[1]
            with pytest.raises(OutOfMemory) as err:
                db.execute(sql)
            assert err.value.sqlstate == "53200"
            assert is_retryable(err.value)
            assert db.memory_stats()["session"]["memory_shed"] == 1
            # the arm was one-shot: the retry succeeds
            assert len(_rows(db, sql)) > 0
            _assert_quiesced(db)
        finally:
            db.close()

    def test_pressure_scales_reservations(self):
        """pressure=4 makes every allocation look 4x bigger, pushing a
        comfortably-sized query over its budget and onto the spill path."""
        roomy = Database(query_memory_limit="256kb")
        squeezed = Database(
            query_memory_limit="256kb",
            memory_faults=MemoryFaultInjector(pressure=8.0),
        )
        try:
            _load(roomy, rows=300)
            _load(squeezed, rows=300)
            sql = _WORKLOAD[0]
            _assert_identical(_rows(roomy, sql), _rows(squeezed, sql), sql)
            assert roomy.memory.spill.total_spilled_bytes == 0
            assert squeezed.memory.spill.total_spilled_bytes > 0
        finally:
            roomy.close()
            squeezed.close()

    def test_stall_arm_delays_spill_writes(self):
        faults = MemoryFaultInjector().deny("sort.buffer").stall(
            "spill.write", 0.01
        )
        db = Database(memory_faults=faults)
        try:
            _load(db, rows=60)
            started = time.perf_counter()
            db.execute("SELECT k FROM big ORDER BY v, k")
            assert time.perf_counter() - started >= 0.01
            assert "spill.write" in faults.trace
        finally:
            db.close()


# -- cancellation -------------------------------------------------------------


class TestCancellation:
    def test_statement_timeout_mid_spill(self):
        """A timeout that lands inside spill writes cancels with 57014
        and reclaims every grant byte and temp file."""
        faults = MemoryFaultInjector().stall("spill.write", 0.05)
        db = Database(
            query_memory_limit=_LIMIT,
            statement_timeout_ms=20,
            memory_faults=faults,
        )
        try:
            _load(db)
            with pytest.raises(QueryCancelled) as err:
                db.execute(_WORKLOAD[0])
            assert err.value.sqlstate == "57014"
            _assert_quiesced(db)
        finally:
            db.close()

    def test_explicit_cancel_mid_spill(self):
        faults = MemoryFaultInjector().stall("spill.write", 0.05)
        db = Database(query_memory_limit=_LIMIT, memory_faults=faults)
        try:
            _load(db)
            timer = threading.Timer(0.02, db.cancel)
            timer.start()
            try:
                with pytest.raises(QueryCancelled):
                    db.execute(_WORKLOAD[0])
            finally:
                timer.cancel()
            _assert_quiesced(db)
        finally:
            db.close()

    def test_cancel_while_waiting_for_grant(self):
        broker = MemoryBroker(limit=1024, query_limit=1024)
        held = broker.begin_query()
        cancel = threading.Event()
        results = []

        def waiter():
            try:
                broker.begin_query(cancel_event=cancel)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                results.append(exc)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        cancel.set()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert len(results) == 1 and isinstance(results[0], QueryCancelled)
        broker.end_query(held)
        assert broker.reserved_total == 0
        broker.close()


# -- admission: queueing, shedding, saturation -------------------------------


class TestAdmission:
    def test_grant_queue_sheds_on_timeout_then_recovers(self):
        broker = MemoryBroker(
            limit=2048, query_limit=1024, grant_timeout_ms=50.0
        )
        first = broker.begin_query()
        second = broker.begin_query()
        with pytest.raises(OutOfMemory) as err:
            broker.begin_query()
        assert err.value.sqlstate == "53200"
        assert "retry" in str(err.value)
        assert broker.stats["shed"] == 1
        assert broker.stats["queued"] == 1
        broker.end_query(first)
        third = broker.begin_query()  # freed budget admits the retry
        broker.end_query(second)
        broker.end_query(third)
        assert broker.reserved_total == 0
        broker.close()

    def test_full_queue_sheds_immediately(self):
        broker = MemoryBroker(
            limit=1024, query_limit=1024, queue_depth=0, grant_timeout_ms=None
        )
        held = broker.begin_query()
        started = time.perf_counter()
        with pytest.raises(OutOfMemory):
            broker.begin_query()
        assert time.perf_counter() - started < 1.0  # shed, not queued
        broker.end_query(held)
        broker.close()

    def test_mid_query_pool_exhaustion_is_53200(self):
        """Pay-as-you-go pool (no per-query carve-out): a require that
        cannot be served sheds the query, it does not deadlock."""
        db = Database(memory_limit="64kb")
        try:
            _load(db)
            hog = db.memory.begin_query()
            assert hog.reserve(60 * 1024, "join.build")
            with pytest.raises(OutOfMemory) as err:
                db.execute(_WORKLOAD[0])
            assert err.value.sqlstate == "53200"
            db.memory.end_query(hog)
            assert len(_rows(db, _WORKLOAD[0])) > 0  # recovered
            _assert_quiesced(db)
        finally:
            db.close()

    def test_eight_client_saturation_recovers(self):
        """memory_limit = 8 x query_memory_limit: twelve workers hammer
        spill-heavy queries; waiters queue, every statement eventually
        succeeds (shed 53200s are retried), and the pool drains to zero."""
        query_limit = parse_memory_limit(_LIMIT)
        db = Database(
            memory_limit=8 * query_limit, query_memory_limit=query_limit
        )
        failures = []
        done = []

        def worker(worker_id):
            session = db.session()
            rng = random.Random(worker_id)
            try:
                for _ in range(4):
                    sql = rng.choice(_WORKLOAD[:5])
                    for attempt in range(20):
                        try:
                            db.execute(sql, session=session)
                            break
                        except OutOfMemory:
                            time.sleep(0.01 * (attempt + 1))
                    else:
                        raise AssertionError(f"never admitted: {sql}")
                done.append(worker_id)
            except BaseException as exc:  # noqa: BLE001
                failures.append((worker_id, exc))

        try:
            _load(db)
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(12)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not failures, failures
            assert len(done) == 12
            snap = db.memory.snapshot()
            assert snap["grants"] >= 48
            _assert_quiesced(db)
        finally:
            db.close()


# -- observability ------------------------------------------------------------


class TestObservability:
    def test_explain_analyze_reports_peak_and_spill(self):
        db = Database(query_memory_limit=_LIMIT)
        try:
            _load(db)
            text = db.explain_analyze(_WORKLOAD[0])
            assert "peak_bytes=" in text
            assert "spilled_bytes=" in text
        finally:
            db.close()

    def test_explain_analyze_silent_when_unbounded(self):
        db = Database()
        try:
            _load(db, rows=50)
            text = db.explain_analyze(_WORKLOAD[0])
            assert "spilled_bytes=" not in text
        finally:
            db.close()

    def test_memory_stats_shape(self):
        db = Database(query_memory_limit=_LIMIT)
        try:
            _load(db)
            db.execute(_WORKLOAD[0])
            stats = db.memory_stats()
            for key in (
                "limit",
                "query_limit",
                "reserved_bytes",
                "active_grants",
                "grants",
                "queued",
                "shed",
                "spills",
                "peak_reserved_bytes",
                "total_spilled_bytes",
                "session",
            ):
                assert key in stats, key
            assert stats["query_limit"] == parse_memory_limit(_LIMIT)
            session = stats["session"]
            assert session["peak_memory_bytes"] > 0
            assert session["spilled_bytes"] > 0
            assert session["memory_shed"] == 0
        finally:
            db.close()

    def test_unbounded_memory_stats_empty(self):
        db = Database()
        try:
            assert db.memory_stats() == {}
        finally:
            db.close()

    def test_session_shed_counter(self):
        db = Database(
            memory_faults=MemoryFaultInjector().fail("join.build", hits=1)
        )
        try:
            _load(db)
            with pytest.raises(OutOfMemory):
                db.execute(_WORKLOAD[1])
            assert db.memory_stats()["session"]["memory_shed"] == 1
        finally:
            db.close()


@pytest.mark.server
class TestServerReporting:
    def test_stats_frame_carries_memory_section(self):
        from repro.sqldb import client
        from repro.sqldb.server import DatabaseServer

        db = Database(query_memory_limit=_LIMIT)
        _load(db)
        server = DatabaseServer(db).start()
        try:
            conn = client.connect("127.0.0.1", server.port)
            try:
                with conn.cursor() as cursor:
                    cursor.execute(_WORKLOAD[0])
                    assert cursor.fetchall()
                stats = conn.memory_stats()
                assert stats["query_limit"] == parse_memory_limit(_LIMIT)
                assert stats["reserved_bytes"] == 0
                assert stats["grants"] >= 1
                assert stats["session"]["spilled_bytes"] > 0
                assert stats["session"]["peak_memory_bytes"] > 0
            finally:
                conn.close()
        finally:
            server.shutdown()
            db.close()

    def test_stats_frame_omits_memory_when_unbounded(self):
        from repro.sqldb import client
        from repro.sqldb.server import DatabaseServer

        db = Database()
        server = DatabaseServer(db).start()
        try:
            conn = client.connect("127.0.0.1", server.port)
            try:
                assert conn.memory_stats() == {}
            finally:
                conn.close()
        finally:
            server.shutdown()
            db.close()


# -- lifecycle ----------------------------------------------------------------


class TestLifecycle:
    def test_reset_storage_reclaims_spill_files(self):
        db = Database(query_memory_limit=_LIMIT)
        try:
            grant = db.memory.begin_query()
            spill = grant.spill_file("probe")
            spill.append([1, 2, 3])
            spill.finish_writing()
            assert db.memory.spill.live_files()
            db.reset_storage()
            assert db.memory.spill.live_files() == []
            assert not os.path.exists(spill.path)
            db.memory.end_query(grant)  # idempotent on reclaimed files
        finally:
            db.close()

    def test_close_removes_spill_directory(self):
        db = Database(query_memory_limit=_LIMIT)
        _load(db)
        db.execute(_WORKLOAD[0])
        spill_dir = db.memory.spill.directory
        assert spill_dir is not None and os.path.isdir(spill_dir)
        db.close()
        assert not os.path.exists(spill_dir)

    def test_error_paths_release_grants(self):
        db = Database(query_memory_limit=_LIMIT)
        try:
            _load(db)
            for _ in range(3):
                with pytest.raises(Exception):
                    db.execute("SELECT no_such_column FROM big ORDER BY v")
            db.execute(_WORKLOAD[0])
            _assert_quiesced(db)
        finally:
            db.close()

    def test_acked_commit_never_depends_on_spilled_state(self, tmp_path):
        """Spill files carry only intra-query operator state: deleting
        every one of them after a commit loses nothing on recovery."""
        wal = str(tmp_path / "db.wal")
        db = Database(query_memory_limit=_LIMIT, wal_path=wal, durable=True)
        _load(db)
        total = db.execute("SELECT count(*) FROM big").rows[0][0]
        db.execute(_WORKLOAD[0])  # spills, after the inserts committed
        db.memory.spill.cleanup_all()  # simulate losing every temp file
        db.close()
        recovered = Database(
            query_memory_limit=_LIMIT, wal_path=wal, durable=True
        )
        try:
            assert (
                recovered.execute("SELECT count(*) FROM big").rows[0][0]
                == total
            )
        finally:
            recovered.close()


# -- TRAIN under a budget -----------------------------------------------------


class TestTrainUnderLimit:
    def test_training_matches_unbounded(self):
        reference = Database()
        limited = Database(query_memory_limit="64kb")
        try:
            for db in (reference, limited):
                _load(db, rows=300, seed=5)
                db.execute(
                    "TRAIN m USING (SELECT g, k, v AS label FROM big "
                    "WHERE v IS NOT NULL) "
                    "WITH (estimator = 'linear_regression', max_iter = 5)"
                )
            assert reference.model("m").coef == limited.model("m").coef
            assert (
                reference.model("m").intercept == limited.model("m").intercept
            )
            _assert_quiesced(limited)
        finally:
            reference.close()
            limited.close()
