"""Regression tests for PostgreSQL-conformance fixes.

Each class pins one bug that produced output diverging from PostgreSQL:
float-to-text rendering ('1.0x' where PostgreSQL says '1x'), ORDER BY
NULLS FIRST/LAST, and aggregate FILTER (WHERE ...).
"""

import pytest

from repro.errors import SQLBindError, SQLSyntaxError
from repro.sqldb import Database
from repro.sqldb.functions import pg_text


@pytest.fixture(params=["postgres", "umbra"])
def db(request):
    return Database(request.param)


class TestPgTextRendering:
    def test_integral_float_concat(self, db):
        # regression: CAST(1.0 AS text) || 'x' rendered as '1.0x'
        result = db.execute("SELECT CAST(1.0 AS DOUBLE PRECISION) || 'x'")
        assert result.rows == [("1x",)]

    def test_int_concat(self, db):
        assert db.execute("SELECT 1 || 'x'").rows == [("1x",)]

    def test_bool_cast_text(self, db):
        assert db.execute("SELECT CAST(TRUE AS text)").rows == [("true",)]
        assert db.execute("SELECT CAST(FALSE AS text)").rows == [("false",)]

    def test_fractional_float_preserved(self, db):
        assert db.execute("SELECT 1.5 || 'x'").rows == [("1.5x",)]

    def test_like_on_numeric(self, db):
        db.run_script(
            "CREATE TABLE t (n float); INSERT INTO t VALUES (10.0), (2.5)"
        )
        result = db.execute("SELECT n FROM t WHERE n LIKE '10%'")
        assert result.rows == [(10.0,)]

    def test_regexp_replace_on_integral_float(self, db):
        result = db.execute(
            "SELECT REGEXP_REPLACE(CAST(42.0 AS DOUBLE PRECISION) || '', '2', '9')"
        )
        assert result.rows == [("49",)]

    def test_pg_text_scalar_rules(self):
        assert pg_text(None) is None
        assert pg_text(True) == "true"
        assert pg_text(7) == "7"
        assert pg_text(7.0) == "7"
        assert pg_text(7.25) == "7.25"
        assert pg_text([1.0, None]) == "{1,NULL}"


class TestNullsPlacement:
    @pytest.fixture(autouse=True)
    def _table(self, db):
        db.run_script(
            "CREATE TABLE t (n int); "
            "INSERT INTO t VALUES (2), (NULL), (1), (NULL), (3)"
        )

    def test_default_asc_nulls_last(self, db):
        rows = db.execute("SELECT n FROM t ORDER BY n").column("n")
        assert rows == [1, 2, 3, None, None]

    def test_default_desc_nulls_first(self, db):
        rows = db.execute("SELECT n FROM t ORDER BY n DESC").column("n")
        assert rows == [None, None, 3, 2, 1]

    def test_asc_nulls_first(self, db):
        rows = db.execute("SELECT n FROM t ORDER BY n NULLS FIRST").column("n")
        assert rows == [None, None, 1, 2, 3]

    def test_desc_nulls_last(self, db):
        rows = db.execute(
            "SELECT n FROM t ORDER BY n DESC NULLS LAST"
        ).column("n")
        assert rows == [3, 2, 1, None, None]

    def test_asc_nulls_last_explicit(self, db):
        rows = db.execute(
            "SELECT n FROM t ORDER BY n ASC NULLS LAST"
        ).column("n")
        assert rows == [1, 2, 3, None, None]

    def test_multi_key_mixed_placement(self, db):
        db.run_script(
            "CREATE TABLE u (a int, b int); "
            "INSERT INTO u VALUES (1, NULL), (1, 5), (2, NULL), (2, 3)"
        )
        result = db.execute(
            "SELECT a, b FROM u ORDER BY a, b NULLS FIRST"
        )
        assert result.rows == [(1, None), (1, 5), (2, None), (2, 3)]

    def test_nulls_requires_first_or_last(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("SELECT n FROM t ORDER BY n NULLS MIDDLE")


class TestAggregateFilter:
    @pytest.fixture(autouse=True)
    def _table(self, db):
        db.run_script(
            "CREATE TABLE t (g text, n int); "
            "INSERT INTO t VALUES "
            "('a', 1), ('a', 2), ('a', NULL), ('b', 3), ('b', 4)"
        )

    def test_count_star_filter(self, db):
        result = db.execute(
            "SELECT g, count(*) FILTER (WHERE n > 1) AS c "
            "FROM t GROUP BY g ORDER BY g"
        )
        assert result.rows == [("a", 1), ("b", 2)]

    def test_filter_vs_where_on_count_star(self, db):
        # count(*) observes every unfiltered row, so FILTER must drop rows,
        # not null them out
        result = db.execute(
            "SELECT count(*) FILTER (WHERE g = 'a') AS a_rows, "
            "count(*) AS all_rows FROM t"
        )
        assert result.rows == [(3, 5)]

    def test_sum_filter(self, db):
        result = db.execute(
            "SELECT sum(n) FILTER (WHERE g = 'b') FROM t"
        )
        assert result.rows == [(7,)]

    def test_filter_everything_out(self, db):
        result = db.execute("SELECT sum(n) FILTER (WHERE g = 'z') FROM t")
        assert result.rows == [(None,)]

    def test_ungrouped_multiple_filters(self, db):
        result = db.execute(
            "SELECT count(n) FILTER (WHERE g = 'a') AS a_n, "
            "count(n) FILTER (WHERE g = 'b') AS b_n FROM t"
        )
        assert result.rows == [(2, 2)]

    def test_filter_on_scalar_function_rejected(self, db):
        with pytest.raises(SQLBindError):
            db.execute("SELECT abs(n) FILTER (WHERE n > 0) FROM t")

    def test_aggregate_inside_filter_rejected(self, db):
        with pytest.raises(SQLBindError):
            db.execute("SELECT count(*) FILTER (WHERE sum(n) > 0) FROM t")

    def test_filter_as_identifier_still_usable(self, db):
        # `filter` is not reserved: valid as an alias when no '(' follows
        result = db.execute("SELECT count(*) filter FROM t")
        assert result.columns == ["filter"]
        assert result.rows == [(5,)]
