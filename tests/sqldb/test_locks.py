"""Unit tests for the concurrency primitives in repro.sqldb.locks.

The ReadWriteLock tests pin the writer-preference fix: under the old
readers-preference latch a continuous stream of readers could starve a
writer forever; now a queued writer blocks *new* readers and acquires as
soon as in-flight readers drain.
"""

import threading
import time

import pytest

from repro.errors import DeadlockDetected, QueryCancelled
from repro.sqldb.locks import LockManager, ReadWriteLock


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=10)

        def reader():
            with lock.read():
                inside.wait()  # all three readers in simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        order = []

        def writer(tag):
            with lock.write():
                order.append(("enter", tag))
                time.sleep(0.02)
                order.append(("exit", tag))

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        # strictly serialised: every enter is immediately followed by the
        # matching exit
        for i in range(0, len(order), 2):
            assert order[i][0] == "enter"
            assert order[i + 1] == ("exit", order[i][1])

    def test_writer_is_not_starved_by_reader_stream(self):
        # regression for the PR 4 readers-preference latch: keep a
        # continuous overlapping stream of readers running and check a
        # writer still gets in promptly
        lock = ReadWriteLock()
        stop = threading.Event()
        writer_done = threading.Event()

        def reader_stream():
            while not stop.is_set():
                with lock.read():
                    time.sleep(0.005)

        readers = [
            threading.Thread(target=reader_stream, daemon=True)
            for _ in range(4)
        ]
        for t in readers:
            t.start()
        time.sleep(0.05)  # the stream is saturated before the writer queues

        def writer():
            with lock.write():
                writer_done.set()

        started = time.monotonic()
        w = threading.Thread(target=writer)
        w.start()
        assert writer_done.wait(timeout=5.0), "writer starved by readers"
        elapsed = time.monotonic() - started
        w.join(timeout=10)
        stop.set()
        for t in readers:
            t.join(timeout=10)
        # prompt, not merely eventual: the writer only has to outwait the
        # readers already inside, not the whole stream
        assert elapsed < 2.0

    def test_queued_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        reader_inside = threading.Event()
        release_reader = threading.Event()
        writer_queued = threading.Event()
        late_reader_inside = threading.Event()

        def first_reader():
            with lock.read():
                reader_inside.set()
                release_reader.wait(timeout=10)

        def writer():
            writer_queued.set()
            with lock.write():
                pass

        def late_reader():
            with lock.read():
                late_reader_inside.set()

        r1 = threading.Thread(target=first_reader)
        r1.start()
        assert reader_inside.wait(timeout=10)
        w = threading.Thread(target=writer)
        w.start()
        assert writer_queued.wait(timeout=10)
        assert wait_until(lambda: lock._writers_waiting == 1)
        r2 = threading.Thread(target=late_reader)
        r2.start()
        # the late reader queues behind the waiting writer
        time.sleep(0.1)
        assert not late_reader_inside.is_set()
        release_reader.set()
        for t in (r1, w, r2):
            t.join(timeout=10)
        assert late_reader_inside.is_set()


class TestLockManager:
    def test_acquire_returns_newly_acquired_only(self):
        locks = LockManager()
        assert locks.acquire(1, ["b", "a"]) == ["a", "b"]
        # reentrant: holding sessions skip, transient callers get []
        assert locks.acquire(1, ["a", "c"]) == ["c"]
        assert locks.held_by(1) == {"a", "b", "c"}

    def test_release_specific_and_all(self):
        locks = LockManager()
        locks.acquire(1, ["a", "b"])
        locks.release(1, ["a"])
        assert locks.held_by(1) == {"b"}
        locks.release_all(1)
        assert locks.held_by(1) == set()
        # a's lock is actually free again
        assert locks.acquire(2, ["a", "b"]) == ["a", "b"]

    def test_blocked_acquire_proceeds_after_release(self):
        locks = LockManager()
        locks.acquire(1, ["t"])
        got = []

        def blocked():
            got.extend(locks.acquire(2, ["t"]))

        thread = threading.Thread(target=blocked)
        thread.start()
        assert wait_until(lambda: 2 in locks._waiting)
        locks.release_all(1)
        thread.join(timeout=10)
        assert got == ["t"]
        assert locks.held_by(2) == {"t"}

    def test_deadlock_victim_is_the_requester_closing_the_cycle(self):
        # session 1 holds a and waits for b; session 2 holds b and then
        # requests a — session 2's request closes the cycle and raises
        locks = LockManager()
        locks.acquire(1, ["a"])
        locks.acquire(2, ["b"])
        errors = []

        def session1():
            try:
                locks.acquire(1, ["b"])
            except DeadlockDetected as exc:
                errors.append(("s1", exc))
                locks.release_all(1)

        t1 = threading.Thread(target=session1)
        t1.start()
        assert wait_until(lambda: 1 in locks._waiting)
        with pytest.raises(DeadlockDetected) as excinfo:
            locks.acquire(2, ["a"])
        assert excinfo.value.sqlstate == "40P01"
        locks.release_all(2)  # the engine aborts the victim's transaction
        t1.join(timeout=10)
        # session 1 was never victimised; it got b once 2 released
        assert errors == []
        assert locks.held_by(1) == {"a", "b"}

    def test_wait_honours_cancel_event(self):
        locks = LockManager()
        locks.acquire(1, ["t"])
        cancel = threading.Event()
        caught = []

        def blocked():
            try:
                locks.acquire(2, ["t"], cancel_event=cancel)
            except QueryCancelled as exc:
                caught.append(exc)

        thread = threading.Thread(target=blocked)
        thread.start()
        assert wait_until(lambda: 2 in locks._waiting)
        cancel.set()
        thread.join(timeout=10)
        assert len(caught) == 1
        assert caught[0].sqlstate == "57014"
        assert locks.held_by(2) == set()

    def test_wait_honours_deadline(self):
        locks = LockManager()
        locks.acquire(1, ["t"])
        with pytest.raises(QueryCancelled):
            locks.acquire(2, ["t"], deadline=time.monotonic() + 0.1)
        assert locks.held_by(2) == set()

    def test_sorted_order_prevents_ab_ba_deadlock(self):
        # both sessions request {a, b} in one call; sorted acquisition
        # means whoever gets a first also gets b first — no deadlock
        locks = LockManager()
        done = []

        def grab(sid):
            locks.acquire(sid, ["b", "a"])
            time.sleep(0.01)
            locks.release_all(sid)
            done.append(sid)

        threads = [
            threading.Thread(target=grab, args=(sid,)) for sid in (1, 2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert sorted(done) == [1, 2]


class TestAllOrNothingAcquire:
    """Regression: a multi-table acquire that fails part-way used to leak
    the tables it had already taken.  For an autocommit statement no
    commit or rollback ever follows, so the leaked lock was permanent
    and every peer touching that table wedged."""

    def test_deadline_mid_acquire_releases_partial(self):
        locks = LockManager()
        locks.acquire(1, ["b"])  # peer holds b
        with pytest.raises(QueryCancelled):
            # takes a (sorted order), then times out waiting for b
            locks.acquire(2, ["a", "b"], deadline=time.monotonic() + 0.1)
        assert locks.held_by(2) == set()
        # a must be free again — a third session acquires it instantly
        assert locks.acquire(3, ["a"], deadline=time.monotonic() + 0.5) == [
            "a"
        ]

    def test_cancel_mid_acquire_releases_partial(self):
        locks = LockManager()
        locks.acquire(1, ["b"])
        event = threading.Event()

        def fire_once_blocked():
            wait_until(lambda: 2 in locks._waiting)
            event.set()

        blocked = threading.Thread(target=fire_once_blocked)
        blocked.start()
        with pytest.raises(QueryCancelled):
            locks.acquire(2, ["a", "b"], cancel_event=event)
        blocked.join(timeout=10)
        assert locks.held_by(2) == set()
        assert locks.acquire(3, ["a"], deadline=time.monotonic() + 0.5) == [
            "a"
        ]

    def test_deadlock_victim_releases_partial(self):
        # session 2 grabs a, blocks on b (held by 1); session 1 then
        # requests a, closing the cycle — whoever loses, no lock taken
        # by the failing *call* may survive it
        locks = LockManager()
        locks.acquire(1, ["b"])
        errors = {}

        def multi():
            try:
                locks.acquire(2, ["a", "b"])
                locks.release_all(2)
            except DeadlockDetected:
                errors["two"] = True

        thread = threading.Thread(target=multi)
        thread.start()
        assert wait_until(lambda: locks._waiting.get(2) == "b")
        try:
            locks.acquire(1, ["a"])
            locks.release_all(1)
        except DeadlockDetected:
            errors["one"] = True
            locks.release_all(1)
        thread.join(timeout=10)
        assert errors  # exactly one of them was the victim
        # whatever happened, nothing is left held or waiting
        assert wait_until(
            lambda: not locks._owner and not locks._waiting
        ), (locks._owner, locks._waiting)
