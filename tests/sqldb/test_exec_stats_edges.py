"""Regression tests for runtime-stats edges left untested by the
parallel-execution work: the exact EXPLAIN ANALYZE output shape, counter
accumulation across repeated cursor reuse, and strict parsing of the
``REPRO_SQL_WORKERS`` environment variable."""

import re

import pytest

from repro.errors import SQLExecutionError
from repro.sqldb import Database, connect
from repro.sqldb.engine import WORKERS_ENV, resolve_workers
from repro.sqldb.profile import UMBRA


def _fill(db, n=60):
    db.execute("CREATE TABLE t (id int, grp text, val int)")
    db.catalog.table("t").append_columns(
        {
            "id": list(range(n)),
            "grp": [("g%d" % (i % 3)) for i in range(n)],
            "val": [i - n // 2 for i in range(n)],
        },
        n,
    )
    db.catalog.bump_version()


_NODE_LINE = re.compile(
    r"^(  )*\w+.*"  # indented operator label
    r"  \(estimated rows=\d+\)"
    r"  \((actual rows=\d+ calls=\d+ time=\d+\.\d{3}ms( morsels=\d+)?"
    r"|never executed)\)$"
)


def test_explain_analyze_output_shape():
    db = Database("postgres")
    _fill(db)
    text = db.explain_analyze("SELECT grp, count(*) AS c FROM t GROUP BY grp")
    lines = text.splitlines()
    # trailer: a rewrites summary then the timing footer, in that order
    assert lines[-2] == "Rewrites: none"  # optimizer off on stock profiles
    assert re.fullmatch(
        r"Execution time: \d+\.\d{3} ms \(workers=1\)", lines[-1]
    )
    node_lines = lines[:-2]
    assert node_lines, "no plan nodes in EXPLAIN ANALYZE output"
    for line in node_lines:
        assert _NODE_LINE.match(line), f"malformed node line: {line!r}"
    db.close()


def test_explain_analyze_lists_fired_rewrites():
    db = Database("postgres", optimize=True)
    _fill(db)
    db.analyze()
    text = db.explain_analyze(
        "SELECT id FROM t WHERE val > 0 AND grp = 'g1' AND 1 = 1"
    )
    (rewrite_line,) = [
        line for line in text.splitlines() if line.startswith("Rewrites: ")
    ]
    assert "predicate-pushdown" in rewrite_line or "Rewrites: none" != rewrite_line
    assert "remove-trivial-filter" in rewrite_line
    assert "estimated rows=" in text
    db.close()


def test_exec_stats_accumulate_across_cursor_reuse():
    connection = connect(UMBRA, collect_exec_stats=True)
    _fill(connection.database)
    cursor = connection.cursor()
    query = "SELECT grp, count(*) AS c FROM t GROUP BY grp ORDER BY grp"
    calls_seen = []
    for _ in range(3):
        cursor.execute(query)
        assert len(cursor.fetchall()) == 3
        counters = connection.database.operator_counters
        label = next(l for l in counters if "Aggregate" in l)
        calls_seen.append(counters[label]["calls"])
    # cumulative counters grow monotonically; per-execution stats reset
    assert calls_seen == sorted(calls_seen)
    assert calls_seen[0] < calls_seen[-1]
    last = connection.database.last_exec_stats
    assert last is not None
    assert all(entry.calls >= 1 for entry in last.nodes.values())
    connection.close()


def test_workers_env_invalid_values(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "banana")
    with pytest.raises(SQLExecutionError, match="REPRO_SQL_WORKERS"):
        resolve_workers(None, UMBRA)
    monkeypatch.setenv(WORKERS_ENV, "2.5")
    with pytest.raises(SQLExecutionError):
        resolve_workers(None, UMBRA)
    monkeypatch.setenv(WORKERS_ENV, "")
    with pytest.raises(SQLExecutionError):
        resolve_workers(None, UMBRA)
    # explicit argument always wins over a broken environment
    assert resolve_workers(3, UMBRA) == 3
    # non-positive values clamp to serial rather than erroring
    monkeypatch.setenv(WORKERS_ENV, "0")
    assert resolve_workers(None, UMBRA) == 1
    monkeypatch.setenv(WORKERS_ENV, "-4")
    assert resolve_workers(None, UMBRA) == 1
    # int() tolerates surrounding whitespace, so "  2  " is fine
    monkeypatch.setenv(WORKERS_ENV, "  2  ")
    assert resolve_workers(None, UMBRA) == 2
