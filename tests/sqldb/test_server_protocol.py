"""Wire-protocol codec units and server abuse tests.

The codec tests pin the framing contract (clean EOF vs torn frame,
oversized length rejected before allocation, JSON shape enforced).  The
abuse tests throw hostile byte streams at a live server — garbage
headers, oversized frames, mid-frame disconnects, pre-handshake
nonsense, cancel racing completion — and assert the invariant that
matters: no worker thread crash, the server keeps serving well-formed
clients, and the engine's session registry is restored to its baseline
(no leaked sessions, ever)."""

import socket
import struct
import threading
import time

import pytest

from repro.errors import ProtocolViolation, QueryCancelled, SQLSyntaxError
from repro.sqldb import client
from repro.sqldb.engine import Database, Result
from repro.sqldb.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    error_to_wire,
    exception_from_wire,
    recv_frame,
    result_from_wire,
    result_to_wire,
    send_frame,
)
from repro.sqldb.server import DatabaseServer

pytestmark = pytest.mark.server


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class _Pipe:
    """A connected local socket pair for codec tests."""

    def __enter__(self):
        self.a, self.b = socket.socketpair()
        return self.a, self.b

    def __exit__(self, *exc):
        for sock in (self.a, self.b):
            try:
                sock.close()
            except OSError:
                pass


class TestFrameCodec:
    def test_roundtrip(self):
        with _Pipe() as (a, b):
            send_frame(a, {"type": "query", "sql": "SELECT 1", "n": 7})
            assert recv_frame(b) == {
                "type": "query",
                "sql": "SELECT 1",
                "n": 7,
            }

    def test_clean_eof_is_none(self):
        with _Pipe() as (a, b):
            a.close()
            assert recv_frame(b) is None

    def test_eof_mid_header_is_torn_frame(self):
        with _Pipe() as (a, b):
            a.sendall(b"\x00\x00")  # half a length prefix
            a.close()
            with pytest.raises(ProtocolViolation):
                recv_frame(b)

    def test_eof_mid_payload_is_torn_frame(self):
        with _Pipe() as (a, b):
            frame = encode_frame({"type": "query", "sql": "SELECT 1"})
            a.sendall(frame[: len(frame) - 3])
            a.close()
            with pytest.raises(ProtocolViolation):
                recv_frame(b)

    def test_oversized_length_rejected_before_allocation(self):
        with _Pipe() as (a, b):
            a.sendall(struct.pack(">I", 2**31))
            with pytest.raises(ProtocolViolation, match="exceeds"):
                recv_frame(b, max_bytes=1024)

    def test_undecodable_json_rejected(self):
        with _Pipe() as (a, b):
            payload = b"\xff\xfenot json"
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolViolation, match="undecodable"):
                recv_frame(b)

    def test_non_object_payload_rejected(self):
        with _Pipe() as (a, b):
            payload = b"[1,2,3]"
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolViolation, match="object"):
                recv_frame(b)

    def test_missing_type_rejected(self):
        with _Pipe() as (a, b):
            payload = b'{"sql":"SELECT 1"}'
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolViolation, match="'type'"):
                recv_frame(b)

    def test_numpy_scalars_encode(self):
        numpy = pytest.importorskip("numpy")
        frame = encode_frame(
            {"type": "x", "a": numpy.int64(7), "b": numpy.float64(1.5)}
        )
        with _Pipe() as (a, b):
            a.sendall(frame)
            assert recv_frame(b) == {"type": "x", "a": 7, "b": 1.5}


class TestResultWire:
    def test_roundtrip(self):
        result = Result(
            columns=["a", "b"],
            rows=[(1, "x"), (2, None)],
            rowcount=2,
            statement="SELECT",
        )
        back = result_from_wire(result_to_wire(result))
        assert back.columns == ["a", "b"]
        assert back.rows == [(1, "x"), (2, None)]
        assert back.rowcount == 2
        assert back.statement == "SELECT"


class TestErrorWire:
    def test_engine_error_roundtrips_class_and_sqlstate(self):
        wire = error_to_wire(SQLSyntaxError("bad token"))
        exc = exception_from_wire(wire)
        assert isinstance(exc, SQLSyntaxError)
        assert exc.sqlstate == "42601"
        assert "bad token" in str(exc)

    def test_unknown_class_falls_back_to_sqlerror(self):
        from repro.errors import SQLError

        exc = exception_from_wire(
            {
                "type": "error",
                "error_class": "NoSuchThing",
                "sqlstate": "57014",
                "message": "boom",
            }
        )
        assert type(exc) is SQLError
        assert exc.sqlstate == "57014"  # sqlstate still travels verbatim

    def test_internal_error_reported_as_xx000(self):
        wire = error_to_wire(RuntimeError("worker bug"))
        assert wire["sqlstate"] == "XX000"
        assert "worker bug" in wire["message"]


@pytest.fixture
def served():
    db = Database("umbra")
    db.execute("CREATE TABLE t (a int)")
    db.execute("INSERT INTO t (a) VALUES (1), (2)")
    server = DatabaseServer(db, handshake_timeout_s=2.0).start()
    yield server, db
    server.shutdown(drain_s=2.0)
    db.close()


def _raw(server):
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def _sessions_restored(db, baseline):
    # teardown is asynchronous (worker thread unwinding); poll briefly
    return wait_until(lambda: len(db._sessions) == baseline)


def _still_serves(server):
    with client.connect("127.0.0.1", server.port) as conn:
        rows = conn.cursor().execute("SELECT a FROM t ORDER BY a").fetchall()
    assert rows == [(1,), (2,)]


class TestServerAbuse:
    def test_garbage_header_gets_error_and_close(self, served):
        server, db = served
        baseline = len(db._sessions)
        with _raw(server) as sock:
            sock.sendall(struct.pack(">I", 2**31))  # absurd length prefix
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert reply["sqlstate"] == "08P01"
            assert recv_frame(sock) is None  # server hangs up
        assert _sessions_restored(db, baseline)
        assert server.stats["protocol_errors"] >= 1
        _still_serves(server)

    def test_undecodable_payload_pre_handshake(self, served):
        server, db = served
        baseline = len(db._sessions)
        with _raw(server) as sock:
            sock.sendall(struct.pack(">I", 4) + b"\xff\xff\xff\xff")
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert reply["sqlstate"] == "08P01"
        assert _sessions_restored(db, baseline)
        _still_serves(server)

    def test_mid_frame_disconnect_pre_handshake(self, served):
        server, db = served
        baseline = len(db._sessions)
        sock = _raw(server)
        frame = encode_frame({"type": "hello", "version": PROTOCOL_VERSION})
        sock.sendall(frame[:-2])
        sock.close()  # vanish mid-frame
        assert _sessions_restored(db, baseline)
        _still_serves(server)

    def test_mid_frame_disconnect_after_handshake(self, served):
        server, db = served
        baseline = len(db._sessions)
        sock = _raw(server)
        send_frame(sock, {"type": "hello", "version": PROTOCOL_VERSION})
        assert recv_frame(sock)["type"] == "hello_ok"
        assert wait_until(lambda: len(db._sessions) == baseline + 1)
        frame = encode_frame({"type": "query", "sql": "SELECT 1"})
        sock.sendall(frame[:-5])
        sock.close()
        # the half-open session must be torn down, not leaked
        assert _sessions_restored(db, baseline)
        _still_serves(server)

    def test_oversized_frame_after_handshake(self, served):
        server, db = served
        server.max_frame_bytes = 1024
        baseline = len(db._sessions)
        with _raw(server) as sock:
            send_frame(sock, {"type": "hello", "version": PROTOCOL_VERSION})
            assert recv_frame(sock)["type"] == "hello_ok"
            big = encode_frame({"type": "query", "sql": "x" * 4096})
            sock.sendall(big)
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert reply["sqlstate"] == "08P01"
        assert _sessions_restored(db, baseline)
        _still_serves(server)

    def test_first_frame_not_hello(self, served):
        server, db = served
        baseline = len(db._sessions)
        with _raw(server) as sock:
            send_frame(sock, {"type": "query", "sql": "SELECT 1"})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert reply["sqlstate"] == "08P01"
        assert _sessions_restored(db, baseline)
        _still_serves(server)

    def test_version_mismatch_refused(self, served):
        server, db = served
        baseline = len(db._sessions)
        with _raw(server) as sock:
            send_frame(sock, {"type": "hello", "version": 999})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert reply["sqlstate"] == "08P01"
            assert "version" in reply["message"]
        assert _sessions_restored(db, baseline)
        _still_serves(server)

    def test_silent_client_times_out_at_handshake(self, served):
        server, db = served
        baseline = len(db._sessions)
        with _raw(server) as sock:
            sock.settimeout(10.0)
            # send nothing: the handshake timeout (2 s) must reap us
            assert recv_frame(sock) is None
        assert _sessions_restored(db, baseline)
        _still_serves(server)

    def test_unknown_message_type_after_handshake(self, served):
        server, db = served
        baseline = len(db._sessions)
        with _raw(server) as sock:
            send_frame(sock, {"type": "hello", "version": PROTOCOL_VERSION})
            assert recv_frame(sock)["type"] == "hello_ok"
            send_frame(sock, {"type": "flarble"})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert reply["sqlstate"] == "08P01"
        assert _sessions_restored(db, baseline)
        _still_serves(server)

    def test_query_frame_without_sql_string(self, served):
        server, db = served
        with _raw(server) as sock:
            send_frame(sock, {"type": "hello", "version": PROTOCOL_VERSION})
            assert recv_frame(sock)["type"] == "hello_ok"
            send_frame(sock, {"type": "query", "sql": 42})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert reply["sqlstate"] == "08P01"
        _still_serves(server)


class TestAuth:
    def test_bad_token_refused_good_token_admitted(self):
        db = Database("umbra")
        db.execute("CREATE TABLE t (a int)")
        with DatabaseServer(db, auth_token="sesame") as server:
            with pytest.raises(Exception) as info:
                client.connect(
                    "127.0.0.1", server.port, auth_token="wrong"
                )
            assert getattr(info.value, "sqlstate", None) == "28000"
            with pytest.raises(Exception) as info:
                client.connect("127.0.0.1", server.port)  # token omitted
            assert getattr(info.value, "sqlstate", None) == "28000"
            assert server.stats["auth_failures"] == 2
            assert len(db._sessions) == 1  # only the default session

            with client.connect(
                "127.0.0.1", server.port, auth_token="sesame"
            ) as conn:
                cur = conn.cursor().execute("SELECT count(*) FROM t")
                assert cur.fetchone() == (0,)
        db.close()


class TestCancelRaces:
    def test_cancel_after_completion_is_harmless(self, served):
        """The OOB cancel racing a statement that already finished must
        not poison the *next* statement on that session."""
        server, db = served
        with client.connect("127.0.0.1", server.port) as conn:
            cur = conn.cursor().execute("SELECT a FROM t ORDER BY a")
            assert cur.fetchall() == [(1,), (2,)]
            conn.cancel()  # statement already done: nothing in flight
            assert wait_until(lambda: server.stats["cancels"] == 1)
            cur = conn.cursor().execute("SELECT count(*) FROM t")
            assert cur.fetchone() == (2,)

    def test_bogus_cancel_key_silently_ignored(self, served):
        server, db = served
        with _raw(server) as sock:
            send_frame(sock, {"type": "cancel", "key": "deadbeef"})
            assert recv_frame(sock)["type"] == "ok"  # no probing oracle
        assert server.stats["cancels"] == 0
        _still_serves(server)

    def test_cancel_key_without_string_ignored(self, served):
        server, db = served
        with _raw(server) as sock:
            send_frame(sock, {"type": "cancel", "key": 12345})
            assert recv_frame(sock)["type"] == "ok"
        _still_serves(server)

    def test_cancel_racing_completion_stress(self, served):
        """Fire cancels while short statements run back to back: every
        statement must either succeed or fail with 57014 — never a torn
        connection, never a leaked session."""
        server, db = served
        baseline = len(db._sessions)
        conn = client.connect("127.0.0.1", server.port)
        stop = threading.Event()

        def cancel_loop():
            while not stop.is_set():
                conn.cancel()
                time.sleep(0.002)  # bound the OOB connection churn

        canceller = threading.Thread(target=cancel_loop, daemon=True)
        canceller.start()
        completed = cancelled = 0
        try:
            for _ in range(30):
                try:
                    cur = conn.cursor().execute("SELECT count(*) FROM t")
                    assert cur.fetchone() == (2,)
                    completed += 1
                except QueryCancelled:
                    cancelled += 1
        finally:
            stop.set()
            canceller.join(timeout=10)
            conn.close()
        assert completed + cancelled == 30
        assert _sessions_restored(db, baseline)
        _still_serves(server)
