"""Window functions (RANK / DENSE_RANK / ROW_NUMBER) — the paper's §5.2.2
mentions RANK as an alternative way to number one-hot categories."""

import pytest

from repro.errors import SQLBindError
from repro.sqldb import Database


@pytest.fixture(params=["postgres", "umbra"])
def db(request):
    database = Database(request.param)
    database.run_script(
        "CREATE TABLE scores (g text, v int);"
        "INSERT INTO scores VALUES "
        "('a', 10), ('a', 20), ('a', 20), ('b', 5), ('b', 7)"
    )
    return database


class TestWindowFunctions:
    def test_row_number_global(self, db):
        result = db.execute(
            "SELECT v, row_number() OVER (ORDER BY v) AS rn FROM scores "
            "ORDER BY rn"
        )
        assert result.column("rn") == [1, 2, 3, 4, 5]
        assert result.column("v") == [5, 7, 10, 20, 20]

    def test_rank_with_ties(self, db):
        result = db.execute(
            "SELECT v, rank() OVER (ORDER BY v) AS r FROM scores "
            "WHERE g = 'a' ORDER BY r"
        )
        assert result.rows == [(10, 1), (20, 2), (20, 2)]

    def test_dense_rank(self, db):
        result = db.execute(
            "SELECT v, dense_rank() OVER (ORDER BY v DESC) AS r FROM scores "
            "WHERE g = 'a' ORDER BY v"
        )
        assert dict(result.rows) == {10: 2, 20: 1}

    def test_partition_by(self, db):
        result = db.execute(
            "SELECT g, v, row_number() OVER (PARTITION BY g ORDER BY v) AS rn "
            "FROM scores ORDER BY g, v"
        )
        assert result.rows == [
            ("a", 10, 1), ("a", 20, 2), ("a", 20, 3),
            ("b", 5, 1), ("b", 7, 2),
        ]

    def test_onehot_rank_via_window(self, db):
        """The §5.2.2 alternative: category ranks from RANK()."""
        result = db.execute(
            "WITH fit AS (SELECT DISTINCT g FROM scores) "
            "SELECT g, rank() OVER (ORDER BY g) AS rank FROM fit ORDER BY g"
        )
        assert result.rows == [("a", 1), ("b", 2)]

    def test_window_result_usable_downstream(self, db):
        result = db.execute(
            "WITH numbered AS (SELECT g, v, "
            "row_number() OVER (ORDER BY v DESC) AS rn FROM scores) "
            "SELECT g, v FROM numbered WHERE rn = 1"
        )
        assert result.rows[0][1] == 20

    def test_window_in_where_rejected(self, db):
        with pytest.raises(SQLBindError):
            db.execute(
                "SELECT v FROM scores WHERE rank() OVER (ORDER BY v) = 1"
            )

    def test_unsupported_window_function(self, db):
        with pytest.raises(SQLBindError):
            db.execute("SELECT lag() OVER (ORDER BY v) FROM scores")

    def test_profiles_agree(self):
        query = (
            "SELECT g, v, rank() OVER (PARTITION BY g ORDER BY v) AS r "
            "FROM scores ORDER BY g, v, r"
        )
        results = []
        for profile in ("postgres", "umbra"):
            database = Database(profile)
            database.run_script(
                "CREATE TABLE scores (g text, v int);"
                "INSERT INTO scores VALUES ('a', 2), ('a', 1), ('b', 9)"
            )
            results.append(database.execute(query).rows)
        assert results[0] == results[1]
