"""Explicit transactions, savepoints, and statement-level atomicity."""

import pytest

from repro.errors import (
    CatalogError,
    SQLError,
    SQLExecutionError,
    TransactionError,
)
from repro.sqldb.engine import Database


@pytest.fixture
def db():
    database = Database("umbra")
    database.execute("CREATE TABLE t (a int, b text)")
    database.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    return database


def rows(db, table="t"):
    return sorted(db.execute(f"SELECT * FROM {table}").rows)


class TestExplicitTransactions:
    def test_commit_keeps_changes(self, db):
        db.execute("BEGIN")
        assert db.in_transaction
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        db.execute("COMMIT")
        assert not db.in_transaction
        assert rows(db) == [(1, "x"), (2, "y"), (3, "z")]

    def test_rollback_undoes_insert(self, db):
        before = rows(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        assert len(rows(db)) == 3  # visible inside the transaction
        db.execute("ROLLBACK")
        assert rows(db) == before
        assert not db.in_transaction

    def test_rollback_undoes_ddl(self, db):
        db.execute("BEGIN")
        db.execute("CREATE TABLE extra (v int)")
        db.execute("INSERT INTO extra (v) VALUES (7)")
        db.execute("ROLLBACK")
        with pytest.raises(SQLError):
            db.execute("SELECT * FROM extra")

    def test_rollback_restores_dropped_table(self, db):
        db.execute("BEGIN")
        db.execute("DROP TABLE t")
        with pytest.raises(SQLError):
            db.execute("SELECT * FROM t")
        db.execute("ROLLBACK")
        assert rows(db) == [(1, "x"), (2, "y")]

    def test_rollback_restores_serial_counter(self):
        db = Database("umbra")
        db.execute("CREATE TABLE s (id serial, v int)")
        db.execute("INSERT INTO s (v) VALUES (10)")
        db.execute("BEGIN")
        db.execute("INSERT INTO s (v) VALUES (11)")
        db.execute("ROLLBACK")
        db.execute("INSERT INTO s (v) VALUES (12)")
        # the rolled-back row's serial id is handed out again
        assert sorted(db.execute("SELECT id FROM s").column("id")) == [0, 1]

    def test_rollback_restores_materialized_view(self, db):
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT count(*) AS n FROM t")
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        assert db.execute("SELECT n FROM mv").scalar() == 3
        db.execute("ROLLBACK")
        assert db.execute("SELECT n FROM mv").scalar() == 2

    def test_keyword_variants(self, db):
        db.execute("BEGIN TRANSACTION")
        db.execute("COMMIT WORK")
        db.execute("BEGIN WORK")
        db.execute("ROLLBACK TRANSACTION")
        assert not db.in_transaction

    def test_begin_inside_transaction_raises(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError) as info:
            db.execute("BEGIN")
        assert info.value.sqlstate == "25001"
        db.execute("ROLLBACK")

    def test_commit_outside_transaction_raises(self, db):
        with pytest.raises(TransactionError) as info:
            db.execute("COMMIT")
        assert info.value.sqlstate == "25P01"

    def test_rollback_outside_transaction_raises(self, db):
        with pytest.raises(TransactionError):
            db.execute("ROLLBACK")

    def test_api_commit_rollback_are_noops_outside_txn(self, db):
        # DB-API convention: commit()/rollback() never raise in autocommit
        db.commit()
        db.rollback()
        assert rows(db) == [(1, "x"), (2, "y")]

    def test_api_begin_commit(self, db):
        db.begin()
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        db.commit()
        assert len(rows(db)) == 3
        db.begin()
        db.execute("INSERT INTO t (a, b) VALUES (4, 'w')")
        db.rollback()
        assert len(rows(db)) == 3


class TestSavepoints:
    def test_rollback_to_savepoint(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        db.execute("SAVEPOINT s1")
        db.execute("INSERT INTO t (a, b) VALUES (4, 'w')")
        db.execute("ROLLBACK TO s1")
        db.execute("COMMIT")
        assert rows(db) == [(1, "x"), (2, "y"), (3, "z")]

    def test_savepoint_survives_rollback_to(self, db):
        db.execute("BEGIN")
        db.execute("SAVEPOINT s1")
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        db.execute("ROLLBACK TO s1")
        db.execute("INSERT INTO t (a, b) VALUES (4, 'w')")
        db.execute("ROLLBACK TO SAVEPOINT s1")  # usable repeatedly
        db.execute("COMMIT")
        assert rows(db) == [(1, "x"), (2, "y")]

    def test_nested_savepoints(self, db):
        db.execute("BEGIN")
        db.execute("SAVEPOINT outer_sp")
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        db.execute("SAVEPOINT inner_sp")
        db.execute("INSERT INTO t (a, b) VALUES (4, 'w')")
        db.execute("ROLLBACK TO inner_sp")
        assert len(rows(db)) == 3
        db.execute("ROLLBACK TO outer_sp")
        assert len(rows(db)) == 2
        db.execute("COMMIT")
        assert rows(db) == [(1, "x"), (2, "y")]

    def test_rollback_to_drops_later_savepoints(self, db):
        db.execute("BEGIN")
        db.execute("SAVEPOINT s1")
        db.execute("SAVEPOINT s2")
        db.execute("ROLLBACK TO s1")
        with pytest.raises(TransactionError) as info:
            db.execute("ROLLBACK TO s2")
        assert info.value.sqlstate == "3B001"
        db.execute("ROLLBACK")

    def test_duplicate_savepoint_names_mask(self, db):
        # PostgreSQL: the newer savepoint of the same name wins
        db.execute("BEGIN")
        db.execute("SAVEPOINT s")
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        db.execute("SAVEPOINT s")
        db.execute("INSERT INTO t (a, b) VALUES (4, 'w')")
        db.execute("ROLLBACK TO s")
        db.execute("COMMIT")
        assert rows(db) == [(1, "x"), (2, "y"), (3, "z")]

    def test_release_keeps_effects(self, db):
        db.execute("BEGIN")
        db.execute("SAVEPOINT s1")
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        db.execute("RELEASE s1")
        with pytest.raises(TransactionError):
            db.execute("ROLLBACK TO s1")
        db.execute("ROLLBACK")  # full rollback still available
        assert rows(db) == [(1, "x"), (2, "y")]

    def test_release_savepoint_keyword(self, db):
        db.execute("BEGIN")
        db.execute("SAVEPOINT s1")
        db.execute("RELEASE SAVEPOINT s1")
        db.execute("COMMIT")

    def test_savepoint_outside_transaction_raises(self, db):
        with pytest.raises(TransactionError):
            db.execute("SAVEPOINT s1")
        with pytest.raises(TransactionError):
            db.execute("ROLLBACK TO s1")
        with pytest.raises(TransactionError):
            db.execute("RELEASE s1")

    def test_unknown_savepoint(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("ROLLBACK TO nope")
        with pytest.raises(TransactionError):
            db.execute("RELEASE nope")
        db.execute("ROLLBACK")


class TestStatementAtomicity:
    def test_failing_multi_row_insert_applies_nothing(self, db):
        before = rows(db)
        # second row's value cannot be coerced to int
        with pytest.raises(SQLError):
            db.execute(
                "INSERT INTO t (a, b) VALUES (3, 'ok'), ('boom', 'bad')"
            )
        assert rows(db) == before

    def test_failing_statement_inside_txn_keeps_txn_state(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        with pytest.raises(SQLError):
            db.execute("INSERT INTO t (a, b) VALUES ('boom', 'bad')")
        # earlier in-transaction work survives the failed statement
        assert len(rows(db)) == 3
        db.execute("COMMIT")
        assert len(rows(db)) == 3

    def test_executemany_partial_apply_rolls_back(self, db):
        """Regression: a batch failing on row k must undo rows 0..k-1."""
        before = rows(db)
        with pytest.raises(SQLError):
            db.executemany(
                "INSERT INTO t (a, b) VALUES (?, ?)",
                [(3, "z"), (4, "w"), ("boom", "bad"), (5, "v")],
            )
        assert rows(db) == before

    def test_executemany_wrong_arity_rolls_back(self, db):
        before = rows(db)
        with pytest.raises(SQLError):
            db.executemany(
                "INSERT INTO t (a, b) VALUES (?, ?)", [(3, "z"), (4,)]
            )
        assert rows(db) == before

    def test_executemany_inside_txn_keeps_prior_work(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        with pytest.raises(SQLError):
            db.executemany(
                "INSERT INTO t (a, b) VALUES (?, ?)", [(4, "w"), ("boom", "x")]
            )
        # the failed batch vanished; the transaction itself is intact
        assert len(rows(db)) == 3
        db.execute("COMMIT")
        assert len(rows(db)) == 3

    def test_executemany_rejects_select(self, db):
        with pytest.raises(SQLExecutionError):
            db.executemany("SELECT * FROM t WHERE a = ?", [(1,), (2,)])

    def test_executemany_success_counts_rows(self, db):
        total = db.executemany(
            "INSERT INTO t (a, b) VALUES (?, ?)", [(3, "z"), (4, "w")]
        )
        assert total == 2
        assert len(rows(db)) == 4


class TestPlanCacheAcrossRollback:
    def test_rolled_back_ddl_never_serves_stale_plans(self):
        db = Database("umbra", plan_cache_size=64)
        db.execute("BEGIN")
        db.execute("CREATE TABLE x (a int)")
        db.execute("INSERT INTO x (a) VALUES (1)")
        # caches a plan against the in-transaction schema version
        assert db.execute("SELECT a FROM x").column("a") == [1]
        db.execute("ROLLBACK")
        # the relation is gone; the cached plan must not resurface
        with pytest.raises(CatalogError):
            db.execute("SELECT a FROM x")

    def test_recreated_table_gets_fresh_plan(self):
        db = Database("umbra", plan_cache_size=64)
        db.execute("BEGIN")
        db.execute("CREATE TABLE x (a int)")
        db.execute("INSERT INTO x (a) VALUES (1)")
        assert db.execute("SELECT * FROM x").columns == ["a"]
        db.execute("ROLLBACK")
        db.execute("CREATE TABLE x (b text, a int)")
        db.execute("INSERT INTO x (b, a) VALUES ('q', 9)")
        result = db.execute("SELECT * FROM x")
        assert result.columns == ["b", "a"]
        assert result.rows == [("q", 9)]

    def test_schema_version_never_rewinds_on_restore(self):
        db = Database("umbra")
        db.execute("CREATE TABLE x (a int)")
        v_before = db.catalog.schema_version
        db.execute("BEGIN")
        # in-transaction plans are keyed by the private fork's unique
        # uid (committed catalogs are always uid 0), so they can never
        # be served against committed state after ROLLBACK
        fork = db._default_session.txn.catalog
        assert fork.uid != db.catalog.uid
        db.execute("CREATE TABLE y (a int)")
        db.execute("ROLLBACK")
        # MVCC rollback discards the fork; the committed catalog never
        # rewinds (it never even changed)
        assert db.catalog.schema_version >= v_before
        # the restore path (statement atomicity, savepoints) still takes
        # a fresh monotonic bump whenever state actually changed
        snap = db.catalog.snapshot()
        db.execute("CREATE TABLE z (a int)")
        v_mid = db.catalog.schema_version
        db.catalog.restore(snap)
        assert db.catalog.schema_version > v_mid
