"""Server lifecycle: queries, transactions, admission control, timeouts,
out-of-band cancel, graceful shutdown, and disconnect hygiene.

These tests run a real :class:`DatabaseServer` on an ephemeral loopback
port and drive it with the real client — the same path a remote pipeline
takes.  The recurring invariant: however a connection ends (goodbye,
abrupt disconnect, idle reap, shutdown), its session is closed, its
transaction rolled back, its locks released, and the engine's session
registry restored."""

import csv
import threading
import time

import pytest

from repro.errors import (
    AdminShutdown,
    QueryCancelled,
    SerializationFailure,
    SQLSyntaxError,
    TooManyConnections,
)
from repro.core.connectors import is_retryable
from repro.sqldb import client, dbapi
from repro.sqldb.engine import Database
from repro.sqldb.server import DatabaseServer

pytestmark = pytest.mark.server


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture
def served():
    db = Database("umbra")
    db.execute("CREATE TABLE t (a int, b text)")
    db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    server = DatabaseServer(db).start()
    yield server, db
    server.shutdown(drain_s=2.0)
    db.close()


def connect(server, **kwargs):
    return client.connect("127.0.0.1", server.port, **kwargs)


class TestQueries:
    def test_select_rows_and_description(self, served):
        server, db = served
        with connect(server) as conn:
            cur = conn.cursor().execute("SELECT a, b FROM t ORDER BY a")
            assert [d[0] for d in cur.description] == ["a", "b"]
            assert cur.fetchall() == [(1, "x"), (2, "y")]

    def test_parameters_round_trip(self, served):
        server, db = served
        with connect(server) as conn:
            cur = conn.cursor().execute(
                "SELECT a, b FROM t WHERE a = %s", (2,)
            )
            assert cur.fetchall() == [(2, "y")]

    def test_script_returns_last_result(self, served):
        server, db = served
        with connect(server) as conn:
            cur = conn.cursor().execute(
                "INSERT INTO t (a, b) VALUES (3, 'z'); "
                "SELECT count(*) FROM t"
            )
            assert cur.fetchone() == (3,)

    def test_executemany_rowcount(self, served):
        server, db = served
        with connect(server) as conn:
            cur = conn.cursor()
            cur.executemany(
                "INSERT INTO t (a, b) VALUES (%s, %s)",
                [(10, "p"), (11, "q"), (12, "r")],
            )
            assert cur.rowcount == 3
        assert db.execute("SELECT count(*) FROM t").scalar() == 5

    def test_statement_error_keeps_session_alive(self, served):
        server, db = served
        with connect(server) as conn:
            cur = conn.cursor()
            with pytest.raises(dbapi.ProgrammingError) as info:
                cur.execute("SELEKT chaos")
            assert isinstance(info.value, SQLSyntaxError)
            assert info.value.sqlstate == "42601"
            # the error-state contract: stale rows are not served
            with pytest.raises(dbapi.InterfaceError):
                cur.fetchall()
            # ...and the very same connection keeps working
            assert cur.execute("SELECT count(*) FROM t").fetchone() == (2,)

    def test_fetch_after_failed_execute_raises_not_stale(self, served):
        server, db = served
        with connect(server) as conn:
            cur = conn.cursor().execute("SELECT a FROM t ORDER BY a")
            assert cur.fetchone() == (1,)
            with pytest.raises(dbapi.ProgrammingError):
                cur.execute("SELECT nope FROM t")
            for fetch in (cur.fetchone, cur.fetchmany, cur.fetchall):
                with pytest.raises(dbapi.InterfaceError):
                    fetch()


class TestTransactions:
    def test_rollback_discards_and_commit_publishes(self, served):
        server, db = served
        with connect(server) as conn:
            conn.begin()
            assert conn.in_transaction
            conn.cursor().execute("INSERT INTO t (a, b) VALUES (9, 'w')")
            conn.rollback()
            assert not conn.in_transaction
            assert db.execute("SELECT count(*) FROM t").scalar() == 2

            conn.begin()
            conn.cursor().execute("INSERT INTO t (a, b) VALUES (9, 'w')")
            conn.commit()
        assert db.execute("SELECT count(*) FROM t").scalar() == 3

    def test_serialization_failure_travels_with_class_and_state(
        self, served
    ):
        server, db = served
        with connect(server) as first, connect(server) as second:
            first.begin()
            second.begin()
            first.cursor().execute("INSERT INTO t (a, b) VALUES (7, 'a')")
            first.commit()
            second.cursor().execute("INSERT INTO t (a, b) VALUES (8, 'b')")
            with pytest.raises(SerializationFailure) as info:
                second.commit()
            assert info.value.sqlstate == "40001"
            assert isinstance(info.value, dbapi.OperationalError)
            assert is_retryable(info.value)

    def test_disconnect_rolls_back_open_transaction(self, served):
        server, db = served
        conn = connect(server)
        conn.begin()
        conn.cursor().execute("INSERT INTO t (a, b) VALUES (5, 'v')")
        conn._sock.close()  # vanish without a goodbye
        assert wait_until(lambda: len(db._sessions) == 1)
        assert db.execute("SELECT count(*) FROM t").scalar() == 2

    def test_disconnect_releases_locks_and_peer_unblocks(self, served):
        """The satellite regression, end to end: a client dies holding a
        table lock; a peer blocked on that lock must unblock, not hang."""
        server, db = served
        holder = connect(server)
        holder.begin()
        holder.cursor().execute("INSERT INTO t (a, b) VALUES (50, 'h')")

        peer = connect(server)
        done = []

        def blocked_write():
            peer.cursor().execute("INSERT INTO t (a, b) VALUES (51, 'p')")
            done.append(True)

        thread = threading.Thread(target=blocked_write)
        thread.start()
        # let the peer actually block on the table lock
        time.sleep(0.2)
        assert not done
        holder._sock.close()  # abrupt death, lock still held
        thread.join(timeout=15)
        assert done == [True]
        assert db.execute(
            "SELECT count(*) FROM t WHERE a = 51"
        ).scalar() == 1
        peer.close()


class TestIndexDdlOverTcp:
    def test_create_index_visible_after_commit_and_replans_peers(self):
        """Index DDL over TCP follows transaction visibility: invisible
        to peers until commit, then peers' cached plans are invalidated
        (index epoch is part of the plan-cache key) and re-planned as
        index scans."""
        db = Database("umbra", optimize=True)
        db.execute("CREATE TABLE t (a int, b text)")
        for i in range(50):
            db.execute("INSERT INTO t (a, b) VALUES (%s, %s)", (i, f"r{i}"))
        sql = "SELECT b FROM t WHERE a = 7"
        with DatabaseServer(db) as server:
            with connect(server) as ddl, connect(server) as peer:
                # the peer caches the scan-based plan first
                assert peer.cursor().execute(sql).fetchall() == [("r7",)]
                assert "IndexScan" not in db.explain(sql)

                ddl.begin()
                ddl.cursor().execute("CREATE UNIQUE INDEX t_a ON t (a)")
                # uncommitted DDL: peers still plan (and run) scans
                assert "IndexScan" not in db.explain(sql)
                assert peer.cursor().execute(sql).fetchall() == [("r7",)]
                ddl.commit()

                # committed: the shared plan cache is stale by epoch, the
                # peer's same statement re-plans into an index probe
                assert "IndexScan(t using t_a, eq)" in db.explain(sql)
                assert peer.cursor().execute(sql).fetchall() == [("r7",)]
                with pytest.raises(dbapi.IntegrityError):
                    peer.cursor().execute(
                        "INSERT INTO t (a, b) VALUES (7, 'dup')"
                    )
        db.close()


class TestAdmissionControl:
    def test_shed_with_retryable_sqlstate(self):
        db = Database("umbra")
        db.execute("CREATE TABLE t (a int)")
        with DatabaseServer(db, max_connections=2) as server:
            first = connect(server)
            second = connect(server)
            with pytest.raises(dbapi.OperationalError) as info:
                connect(server)
            assert isinstance(info.value, TooManyConnections)
            assert info.value.sqlstate == "53300"
            assert is_retryable(info.value)  # clients may simply retry
            assert wait_until(lambda: server.stats["shed"] >= 1)

            # capacity freed -> the next connection is admitted
            first.close()
            assert wait_until(lambda: server.active_connections == 1)
            third = connect(server)
            cur = third.cursor().execute("SELECT count(*) FROM t")
            assert cur.fetchone() == (0,)
            third.close()
            second.close()
        db.close()

    def test_eight_concurrent_clients_sustained(self, served):
        """Acceptance floor: >= 8 concurrent clients, each running real
        statements, all succeeding."""
        server, db = served
        n_clients, n_statements = 8, 10
        results = [None] * n_clients
        barrier = threading.Barrier(n_clients, timeout=30)

        def worker(i):
            with connect(server) as conn:
                barrier.wait()  # all 8 connected simultaneously
                count = 0
                for j in range(n_statements):
                    conn.cursor().execute(
                        "INSERT INTO t (a, b) VALUES (%s, %s)",
                        (100 * (i + 1) + j, f"c{i}"),
                    )
                    cur = conn.cursor().execute(
                        "SELECT count(*) FROM t WHERE b = %s", (f"c{i}",)
                    )
                    count = cur.fetchone()[0]
                results[i] = count

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert results == [n_statements] * n_clients
        assert wait_until(lambda: len(db._sessions) == 1)
        total = db.execute(
            "SELECT count(*) FROM t WHERE a >= 100"
        ).scalar()
        assert total == n_clients * n_statements


@pytest.fixture(scope="module")
def big_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("serverdata") / "big.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["a", "b"])
        for i in range(150_000):
            writer.writerow([i % 977, i % 31])
    return path


@pytest.fixture
def busy_server(big_csv):
    """A server whose engine morselizes aggregates (workers=2, small
    morsels) over a table big enough that cancellation checkpoints are
    actually reached mid-statement."""
    db = Database("umbra", workers=2, morsel_size=512)
    db.execute("CREATE TABLE big (a int, b int)")
    db.execute(f"COPY big FROM '{big_csv}' WITH (FORMAT CSV, HEADER TRUE)")
    server = DatabaseServer(db).start()
    yield server, db
    server.shutdown(drain_s=2.0)
    db.close()


SLOW_SQL = "SELECT a, sum(b) FROM big WHERE a % 3 = 0 GROUP BY a"


class TestCancelAndTimeouts:
    def test_out_of_band_cancel(self, busy_server):
        server, db = busy_server
        conn = connect(server)
        outcome = {}

        def run():
            try:
                outcome["rows"] = len(
                    conn.cursor().execute(SLOW_SQL).fetchall()
                )
            except QueryCancelled:
                outcome["cancelled"] = True

        thread = threading.Thread(target=run)
        thread.start()
        assert wait_until(lambda: db._active_cancels or "rows" in outcome)
        conn.cancel()  # out-of-band: second connection, secret key
        thread.join(timeout=60)
        assert not thread.is_alive()
        # cancelled at a checkpoint, or already complete — never hung,
        # never a different error
        assert outcome.keys() <= {"cancelled", "rows"} and outcome
        # the session survived the cancel: the connection still works
        cur = conn.cursor().execute("SELECT count(*) FROM big")
        assert cur.fetchone() == (150_000,)
        conn.close()

    def test_per_connection_statement_timeout(self, busy_server):
        server, db = busy_server
        with connect(server, statement_timeout_ms=20) as conn:
            try:
                conn.cursor().execute(SLOW_SQL)
                completed = True
            except QueryCancelled as exc:
                completed = False
                assert exc.sqlstate == "57014"
            # fast statements still pass, and the session survived
            cur = conn.cursor().execute("SELECT 1")
            assert cur.fetchone() == (1,)
            assert completed or server.stats["statements"] >= 2

    def test_idle_timeout_reaps_connection(self):
        db = Database("umbra")
        db.execute("CREATE TABLE t (a int)")
        with DatabaseServer(db, idle_timeout_s=0.2) as server:
            conn = connect(server)
            conn.begin()
            conn.cursor().execute("INSERT INTO t (a) VALUES (1)")
            assert len(db._sessions) == 2
            time.sleep(0.6)  # exceed the idle budget
            with pytest.raises(dbapi.Error):
                conn.cursor().execute("SELECT 1")
            assert wait_until(lambda: len(db._sessions) == 1)
            # the reaped connection's transaction was rolled back
            assert db.execute("SELECT count(*) FROM t").scalar() == 0
            assert server.stats["idle_closed"] == 1
        db.close()


class TestShutdown:
    def test_graceful_shutdown_rolls_back_open_transactions(self):
        db = Database("umbra")
        db.execute("CREATE TABLE t (a int)")
        server = DatabaseServer(db).start()
        conn = connect(server)
        conn.begin()
        conn.cursor().execute("INSERT INTO t (a) VALUES (1)")
        server.shutdown(drain_s=2.0)
        assert wait_until(lambda: len(db._sessions) == 1)
        assert db.execute("SELECT count(*) FROM t").scalar() == 0
        with pytest.raises(dbapi.Error):
            conn.cursor().execute("SELECT 1")
        db.close()

    def test_draining_refuses_statements_with_57p01(self, served):
        server, db = served
        with connect(server) as conn:
            server._draining = True
            try:
                with pytest.raises(dbapi.OperationalError) as info:
                    conn.cursor().execute("SELECT 1")
                assert isinstance(info.value, AdminShutdown)
                assert info.value.sqlstate == "57P01"
            finally:
                server._draining = False

    def test_draining_sheds_new_connections_with_57p01(self, served):
        server, db = served
        server._draining = True
        try:
            with pytest.raises(dbapi.OperationalError) as info:
                connect(server)
            assert info.value.sqlstate == "57P01"
        finally:
            server._draining = False
        # back to normal once draining ends
        with connect(server) as conn:
            assert conn.cursor().execute("SELECT 1").fetchone() == (1,)

    def test_shutdown_cancels_inflight_straggler(self, busy_server):
        server, db = busy_server
        conn = connect(server)
        outcome = {}

        def run():
            try:
                outcome["rows"] = len(
                    conn.cursor().execute(SLOW_SQL).fetchall()
                )
            except (QueryCancelled, dbapi.Error):
                outcome["stopped"] = True

        thread = threading.Thread(target=run)
        thread.start()
        assert wait_until(lambda: db._active_cancels or outcome)
        started = time.monotonic()
        server.shutdown(drain_s=0.2)  # too short: straggler is cancelled
        assert time.monotonic() - started < 30
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcome
        # the handler thread may still be unwinding its teardown
        assert wait_until(lambda: len(db._sessions) == 1, timeout=30)

    def test_server_stats_frame(self, served):
        server, db = served
        with connect(server) as conn:
            conn.cursor().execute("SELECT 1")
            stats = conn.server_stats()
        assert stats["type"] == "stats"
        assert "plan_cache" in stats
        assert stats["server"]["accepted"] >= 1
        assert stats["server"]["statements"] >= 1


class TestConnectionFatalStates:
    """A server-initiated goodbye (idle reap 57P05, drain 57P01) must
    surface as the mapped engine error once, then clean
    ``InterfaceError("connection is closed")`` on every later use —
    never a raw socket error or a mid-frame ProtocolViolation."""

    def test_idle_timeout_then_reuse_is_clean(self):
        db = Database("umbra")
        db.execute("CREATE TABLE t (a int)")
        with DatabaseServer(db, idle_timeout_s=0.2) as server:
            conn = connect(server)
            cur = conn.cursor()
            time.sleep(0.6)  # reaped server-side
            with pytest.raises(dbapi.Error) as info:
                cur.execute("SELECT 1")
            assert info.value.sqlstate in ("57P05", "08003")
            assert conn.closed  # abandoned, not left half-dead
            # subsequent execute and fetch both fail cleanly
            with pytest.raises(dbapi.InterfaceError):
                conn.cursor().execute("SELECT 1")
            with pytest.raises(dbapi.InterfaceError):
                conn.run_script("SELECT 1")
        db.close()

    def test_drain_shed_then_reuse_is_clean(self, served):
        server, db = served
        conn = connect(server)
        server._draining = True
        try:
            with pytest.raises(dbapi.OperationalError) as info:
                conn.cursor().execute("SELECT 1")
            assert info.value.sqlstate == "57P01"
        finally:
            server._draining = False
        # the server closed the connection after shedding; the client
        # noticed and all later use is a clean InterfaceError
        assert conn.closed
        with pytest.raises(dbapi.InterfaceError):
            conn.cursor().execute("SELECT 1")

    def test_drain_races_inflight_transaction(self):
        """Drain racing an in-flight transaction: the transaction rolls
        back, its locks release, and a peer blocked on those locks
        unblocks instead of hanging."""
        db = Database("umbra")
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        server = DatabaseServer(db).start()
        holder = connect(server)
        holder.begin()
        holder.cursor().execute("UPDATE t SET b = 'held' WHERE a = 1")

        blocked_outcome = {}

        def blocked_peer():
            peer = connect(server)
            try:
                peer.begin()
                peer.cursor().execute("UPDATE t SET b = 'peer' WHERE a = 1")
                peer.commit()
                blocked_outcome["committed"] = True
            except (dbapi.Error, OSError) as exc:
                blocked_outcome["error"] = exc
            finally:
                try:
                    peer.close()
                except Exception:
                    pass

        thread = threading.Thread(target=blocked_peer, daemon=True)
        thread.start()
        # let the peer actually block on the row lock
        time.sleep(0.2)
        server.shutdown(drain_s=0.3)
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "blocked peer never unblocked"
        assert blocked_outcome  # it finished, one way or the other
        # every session is gone, the held transaction rolled back and
        # its lock released: an in-process write succeeds immediately
        assert wait_until(lambda: len(db._sessions) == 1, timeout=30)
        final = db.execute("SELECT b FROM t WHERE a = 1").scalar()
        assert final in ("x", "peer")  # never the uncommitted 'held'
        db.execute("UPDATE t SET b = 'after' WHERE a = 1")
        assert db.execute("SELECT b FROM t WHERE a = 1").scalar() == "after"
        with pytest.raises(dbapi.Error):
            holder.cursor().execute("SELECT 1")
        db.close()
