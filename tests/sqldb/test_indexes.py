"""Secondary indexes: DDL, maintenance, unique enforcement, planning.

The maintenance tests compare live index objects against a
rebuilt-from-scratch oracle (:func:`repro.sqldb.catalog.build_index` over
the table's current contents) after every mutation path — INSERT, UPDATE,
DELETE, savepoint rollback, transaction rollback and WAL recovery.  If
incremental maintenance and a cold rebuild ever disagree, a lookup could
silently return wrong rows, so equality here is the load-bearing check.
"""

import numpy as np
import pytest

from repro.errors import CatalogError, SQLExecutionError, UniqueViolation
from repro.sqldb import Database
from repro.sqldb.catalog import build_index

pytestmark = pytest.mark.indexes


def assert_index_matches_rebuild(db, name):
    """The live index must equal one rebuilt from current table contents."""
    live = db.catalog.index(name)
    table = db.catalog.table(live.table)
    oracle = build_index(
        live.name, table, live.columns, live.unique, live.method
    )
    assert live.n_rows == oracle.n_rows == table.n_rows
    if live.method == "hash":
        assert set(live.hash_map) == set(oracle.hash_map)
        for key, positions in oracle.hash_map.items():
            np.testing.assert_array_equal(live.hash_map[key], positions)
    else:
        np.testing.assert_array_equal(live.sorted_keys, oracle.sorted_keys)
        np.testing.assert_array_equal(
            live.sorted_positions, oracle.sorted_positions
        )


@pytest.fixture
def db():
    database = Database(optimize=True)
    database.execute("CREATE TABLE t (id int, grp text, val float)")
    for i in range(40):
        database.execute(
            "INSERT INTO t VALUES (?, ?, ?)",
            (i, "g" + str(i % 4), i * 1.5),
        )
    yield database
    database.close()


class TestIndexDdl:
    def test_create_and_drop(self, db):
        db.execute("CREATE INDEX t_id ON t (id)")
        assert db.catalog.has_index("t_id")
        assert_index_matches_rebuild(db, "t_id")
        db.execute("DROP INDEX t_id")
        assert not db.catalog.has_index("t_id")

    def test_if_exists_variants(self, db):
        db.execute("DROP INDEX IF EXISTS nope")  # no error
        db.execute("CREATE INDEX t_id ON t (id)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX t_id ON t (id)")
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX nope")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX t_x ON t (missing)")

    def test_composite_requires_hash(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX t_c ON t USING btree (id, grp)")
        db.execute("CREATE INDEX t_c ON t (id, grp)")  # defaults to hash
        assert db.catalog.index("t_c").method == "hash"
        assert_index_matches_rebuild(db, "t_c")

    def test_nulls_not_indexed(self, db):
        db.execute("INSERT INTO t VALUES (NULL, 'g0', 1.0)")
        db.execute("CREATE INDEX t_id ON t (id)")
        index = db.catalog.index("t_id")
        assert index.n_rows == 41
        assert len(index.sorted_keys) == 40
        assert_index_matches_rebuild(db, "t_id")


class TestMaintenance:
    @pytest.mark.parametrize("method", ["sorted", "hash"])
    def test_insert_update_delete(self, db, method):
        db.execute(f"CREATE INDEX t_id ON t USING {method} (id)")
        db.execute("INSERT INTO t VALUES (100, 'g9', 0.0)")
        assert_index_matches_rebuild(db, "t_id")
        db.execute("UPDATE t SET id = id + 1000 WHERE grp = 'g1'")
        assert_index_matches_rebuild(db, "t_id")
        db.execute("DELETE FROM t WHERE id < 20")
        assert_index_matches_rebuild(db, "t_id")
        assert db.execute("SELECT val FROM t WHERE id = 1001").rows == [
            (1.5,)
        ]

    def test_savepoint_rollback_restores_index(self, db):
        db.execute("CREATE INDEX t_id ON t (id)")
        db.execute("BEGIN")
        db.execute("SAVEPOINT s1")
        db.execute("UPDATE t SET id = id + 500 WHERE id >= 30")
        db.execute("DELETE FROM t WHERE id < 5")
        assert_index_matches_rebuild(db, "t_id")
        db.execute("ROLLBACK TO SAVEPOINT s1")
        assert_index_matches_rebuild(db, "t_id")
        assert db.execute("SELECT count(*) FROM t WHERE id < 5").rows == [(5,)]
        db.execute("COMMIT")
        assert_index_matches_rebuild(db, "t_id")

    def test_transaction_rollback_discards_index(self, db):
        db.execute("BEGIN")
        db.execute("CREATE INDEX t_id ON t (id)")
        db.execute("ROLLBACK")
        assert not db.catalog.has_index("t_id")
        db.execute("CREATE INDEX t_id ON t (id)")  # name is free again
        assert_index_matches_rebuild(db, "t_id")

    def test_failed_statement_leaves_index_consistent(self, db):
        db.execute("CREATE UNIQUE INDEX t_id ON t (id)")
        with pytest.raises(UniqueViolation):
            db.execute("UPDATE t SET id = 7 WHERE id = 8")
        assert_index_matches_rebuild(db, "t_id")
        assert db.execute("SELECT count(*) FROM t WHERE id = 7").rows == [(1,)]


class TestUniqueEnforcement:
    def test_create_over_duplicates_is_23505(self, db):
        db.execute("INSERT INTO t VALUES (0, 'dup', 0.0)")
        with pytest.raises(UniqueViolation) as info:
            db.execute("CREATE UNIQUE INDEX t_id ON t (id)")
        assert info.value.sqlstate == "23505"
        assert not db.catalog.has_index("t_id")

    def test_insert_violation_is_23505(self, db):
        db.execute("CREATE UNIQUE INDEX t_id ON t (id)")
        with pytest.raises(UniqueViolation) as info:
            db.execute("INSERT INTO t VALUES (5, 'x', 0.0)")
        assert info.value.sqlstate == "23505"
        assert db.execute("SELECT count(*) FROM t").rows == [(40,)]
        assert_index_matches_rebuild(db, "t_id")

    def test_update_violation_is_23505(self, db):
        db.execute("CREATE UNIQUE INDEX t_id ON t (id)")
        with pytest.raises(UniqueViolation) as info:
            db.execute("UPDATE t SET id = 0 WHERE id > 38")
        assert info.value.sqlstate == "23505"
        assert_index_matches_rebuild(db, "t_id")

    def test_duplicate_nulls_allowed(self, db):
        db.execute("CREATE UNIQUE INDEX t_id ON t (id)")
        db.execute("INSERT INTO t VALUES (NULL, 'n', 0.0)")
        db.execute("INSERT INTO t VALUES (NULL, 'n', 0.0)")
        assert_index_matches_rebuild(db, "t_id")


class TestPlanning:
    def test_point_lookup_uses_index(self, db):
        db.execute("ANALYZE")
        assert "ScanTable" in db.explain("SELECT val FROM t WHERE id = 7")
        db.execute("CREATE UNIQUE INDEX t_id ON t (id)")
        plan = db.explain("SELECT val FROM t WHERE id = 7")
        assert "IndexScan(t using t_id, eq)" in plan
        assert db.execute("SELECT val FROM t WHERE id = 7").rows == [(10.5,)]

    def test_plan_cache_invalidated_by_index_ddl(self, db):
        db.execute("ANALYZE")
        sql = "SELECT val FROM t WHERE id = 7"
        assert db.execute(sql).rows == [(10.5,)]  # cached without index
        db.execute("CREATE INDEX t_id ON t (id)")
        assert "IndexScan" in db.explain(sql)
        assert db.execute(sql).rows == [(10.5,)]
        db.execute("DROP INDEX t_id")
        assert "IndexScan" not in db.explain(sql)
        assert db.execute(sql).rows == [(10.5,)]

    def test_mixed_type_probe_not_taken(self, db):
        # text < numeric string-compares on a scan but would TypeError on
        # a sorted probe; the optimizer must keep the scan
        db.execute("CREATE INDEX t_grp ON t (grp)")
        db.execute("ANALYZE")
        plan = db.explain("SELECT id FROM t WHERE grp = 3")
        assert "IndexScan" not in plan

    def test_index_join_result_matches_hash_join(self, db):
        db.execute("CREATE TABLE s (id int, tag text)")
        for i in range(8):
            db.execute("INSERT INTO s VALUES (?, ?)", (i, "tag" + str(i)))
        sql = (
            "SELECT s.tag, t.val FROM s JOIN t ON s.id = t.id "
            "WHERE s.tag = 'tag3'"
        )
        baseline = db.execute(sql).rows
        db.execute("CREATE UNIQUE INDEX t_id ON t (id)")
        db.execute("CREATE INDEX s_tag ON s (tag)")
        db.execute("ANALYZE")
        assert "IndexJoin" in db.explain(sql)
        assert db.execute(sql).rows == baseline


class TestRecovery:
    def test_indexes_survive_wal_recovery(self, tmp_path):
        wal = tmp_path / "wal.log"
        db = Database(wal_path=str(wal))
        db.execute("CREATE TABLE t (id int, v text)")
        db.execute("CREATE UNIQUE INDEX t_id ON t (id)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "v" + str(i)))
        db.execute("UPDATE t SET v = 'patched' WHERE id = 3")
        db.execute("DELETE FROM t WHERE id = 9")
        db.close()

        revived = Database(wal_path=str(wal))
        try:
            assert revived.catalog.has_index("t_id")
            assert_index_matches_rebuild(revived, "t_id")
            with pytest.raises(UniqueViolation):
                revived.execute("INSERT INTO t VALUES (3, 'dup')")
            assert revived.execute(
                "SELECT v FROM t WHERE id = 3"
            ).rows == [("patched",)]
        finally:
            revived.close()


class TestDmlSemantics:
    def test_update_expression_sees_old_row_images(self, db):
        db.execute("CREATE TABLE p (a int, b int)")
        db.execute("INSERT INTO p VALUES (1, 10)")
        db.execute("UPDATE p SET a = b, b = a")
        assert db.execute("SELECT a, b FROM p").rows == [(10, 1)]

    def test_duplicate_assignment_rejected(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("UPDATE t SET id = 1, id = 2")

    def test_delete_without_where(self, db):
        db.execute("CREATE INDEX t_id ON t (id)")
        db.execute("DELETE FROM t")
        assert db.execute("SELECT count(*) FROM t").rows == [(0,)]
        assert_index_matches_rebuild(db, "t_id")
