"""Property-based differential testing of morsel-driven parallelism.

Random tables and a query pool run with ``workers ∈ {1, 2, 8}`` under both
profiles; every configuration must produce rows identical to the serial
reference — same values, same nulls, same Python value types (checked via
repr, which distinguishes 1 from 1.0 and catches numpy scalars leaking
out).  A tiny morsel size forces even 30-row inputs through the parallel
machinery, including ragged final morsels and empty per-morsel results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database

numeric = st.one_of(st.none(), st.integers(min_value=-50, max_value=50))
# a few floats exercise the sum/avg exactness-certificate fallback
mixed_numeric = st.one_of(
    st.none(),
    st.integers(min_value=-50, max_value=50),
    st.sampled_from([0.5, -2.25, 7.75]),
)


@st.composite
def table_data(draw, max_rows=30):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    ints = draw(st.lists(mixed_numeric, min_size=n, max_size=n))
    texts = draw(
        st.lists(
            st.one_of(st.none(), st.sampled_from(["a", "b", "c", "d"])),
            min_size=n,
            max_size=n,
        )
    )
    return ints, texts


def _load(db: Database, ints, texts) -> None:
    db.execute("CREATE TABLE t (n double precision, s text)")
    if ints:
        db.catalog.table("t").append_columns(
            {"n": list(ints), "s": list(texts)}, len(ints)
        )
        db.catalog.bump_version()


QUERIES = [
    "SELECT n, s FROM t WHERE n > 0",
    "SELECT n * 2 AS d, s FROM t WHERE s = 'a' OR n < -10",
    "SELECT s, count(*) AS c, sum(n) AS total, min(n) AS lo, max(n) AS hi, "
    "avg(n) AS mean FROM t GROUP BY s ORDER BY s",
    "SELECT count(*) AS c, count(n) AS cn, sum(n) AS s FROM t",
    "SELECT s, array_agg(n) AS ns FROM t GROUP BY s ORDER BY s",
    "SELECT s, count(DISTINCT n) AS d FROM t GROUP BY s ORDER BY s",
    "SELECT a.n, b.s FROM t a JOIN t b ON a.s = b.s WHERE a.n > 10",
    "SELECT n FROM t WHERE n IS NOT NULL ORDER BY n, s",
    "SELECT s, n, count(*) AS c FROM t GROUP BY s, n ORDER BY s, n",
]


def _rows_with_types(result):
    return [tuple((repr(v), v) for v in row) for row in result.rows]


@given(table_data())
@settings(max_examples=25, deadline=None)
@pytest.mark.parametrize("profile", ["postgres", "umbra"])
def test_parallel_differential(profile, data):
    ints, texts = data
    serial = Database(profile)
    _load(serial, ints, texts)
    references = [
        _rows_with_types(serial.execute(query)) for query in QUERIES
    ]
    for workers in (1, 2, 8):
        db = Database(profile, workers=workers, morsel_size=5)
        _load(db, ints, texts)
        for query, expected in zip(QUERIES, references):
            got = _rows_with_types(db.execute(query))
            assert got == expected, (profile, workers, query)
        db.close()


@given(table_data(max_rows=40))
@settings(max_examples=15, deadline=None)
def test_parallel_differential_morsel_sizes(data):
    """Worker count AND morsel size both leave results unchanged."""
    ints, texts = data
    serial = Database("umbra")
    _load(serial, ints, texts)
    query = (
        "SELECT s, count(*) AS c, sum(n) AS total FROM t "
        "WHERE n IS NOT NULL GROUP BY s ORDER BY s"
    )
    expected = _rows_with_types(serial.execute(query))
    for morsel_size in (3, 7, 16):
        db = Database("umbra", workers=4, morsel_size=morsel_size)
        _load(db, ints, texts)
        assert _rows_with_types(db.execute(query)) == expected, morsel_size
        db.close()
