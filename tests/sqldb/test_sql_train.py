"""The TRAIN statement: in-database ML training as iterative SQL aggregates.

The load-bearing checks are *differential*: the SQL-trained model must
agree with the numpy trainers in ``repro.learn`` — coefficients to
within 1e-6 on the healthcare shape (in practice they agree to machine
precision, because the iteration query mirrors the numpy arithmetic
term for term), and decision trees must be *structurally identical*
(same splits, same thresholds, same leaf predictions).

Beyond parity, TRAIN is a catalog write like any other, so the
transactional machinery must hold: rollback discards the model, commit
publishes it, WAL replay retrains it deterministically, checkpoints
carry it, concurrent sessions see it only after commit, and two
transactions training the same name resolve by first-committer-wins.
"""

import csv

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import generate_healthcare
from repro.errors import (
    CatalogError,
    SerializationFailure,
    SQLError,
    SQLExecutionError,
)
from repro.learn import (
    DecisionTreeClassifier,
    LinearRegression,
    LogisticRegression,
)
from repro.sqldb import Database, FaultInjector, SimulatedCrash

pytestmark = pytest.mark.train


# -- fixtures -----------------------------------------------------------------


def _load_xy(db, X, y, table="pts"):
    """CREATE + fill a feature table; column layout f0..fk, label."""
    d = len(X[0]) if X else 0
    columns = ", ".join(f"f{j} double precision" for j in range(d))
    db.execute(f"CREATE TABLE {table} ({columns}, label double precision)")
    placeholders = ", ".join("?" for _ in range(d + 1))
    db.executemany(
        f"INSERT INTO {table} VALUES ({placeholders})",
        [tuple(row) + (label,) for row, label in zip(X, y)],
    )


def _toy_classification(n=120, seed=3):
    """A separable-ish 3-feature binary problem with mixed scales."""
    rng = np.random.default_rng(seed)
    X = np.column_stack(
        [
            rng.normal(0.0, 1.0, n),
            rng.normal(0.5, 0.7, n),
            rng.integers(0, 4, n).astype(float) / 3.0,
        ]
    )
    z = 1.3 * X[:, 0] - 0.9 * X[:, 1] + 0.6 * X[:, 2] - 0.2
    y = (z + rng.normal(0.0, 0.6, n) > 0).astype(float)
    return X, y


@pytest.fixture
def db():
    database = Database(optimize=True)
    yield database
    database.close()


def _read_csv(path):
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        return header, list(reader)


@pytest.fixture(scope="module")
def healthcare_db(tmp_path_factory):
    """patients + histories loaded as SQL tables (small, fast slice)."""
    directory = tmp_path_factory.mktemp("hc")
    paths = generate_healthcare(str(directory), n_patients=150, seed=7)
    database = Database(optimize=True)
    database.execute(
        "CREATE TABLE patients (id int, first_name text, last_name text, "
        "race text, county text, num_children int, income double precision, "
        "age_group text, ssn text)"
    )
    _, patient_rows = _read_csv(paths["patients"])
    database.executemany(
        "INSERT INTO patients VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
        [
            (int(r[0]), r[1], r[2], r[3], r[4], int(r[5]), float(r[6]), r[7], r[8])
            for r in patient_rows
        ],
    )
    database.execute(
        "CREATE TABLE histories (smoker text, complications int, ssn text)"
    )
    _, history_rows = _read_csv(paths["histories"])
    database.executemany(
        "INSERT INTO histories VALUES (?, ?, ?)",
        [(r[0], int(r[1]), r[2]) for r in history_rows],
    )
    database.analyze()
    yield database
    database.close()


#: the healthcare featurisation used by the differential tests — a join
#: plus CASE featurisation, i.e. the shape the paper's transpiler emits
_HC_FEATURES = (
    "SELECT CASE WHEN h.smoker = 'yes' THEN 1.0 ELSE 0.0 END AS smoker_yes, "
    "p.num_children AS num_children, "
    "p.income / 100000.0 AS income_100k, "
    "CASE WHEN h.complications > 1 THEN 1.0 ELSE 0.0 END AS label "
    "FROM patients AS p JOIN histories AS h ON p.ssn = h.ssn"
)


def _hc_matrix(database):
    """The same rows the TRAIN query sees, as numpy arrays."""
    rows = database.execute(_HC_FEATURES).rows
    data = np.asarray(rows, dtype=np.float64)
    return data[:, :-1], data[:, -1]


# -- differential: SQL training == numpy training -----------------------------


class TestDifferentialLinear:
    def test_logistic_matches_numpy_on_healthcare(self, healthcare_db):
        healthcare_db.execute(
            f"TRAIN hc_logit USING ({_HC_FEATURES}) "
            "WITH (estimator = 'logistic_regression', max_iter = 80, "
            "lr = 0.5, c = 1.0)"
        )
        model = healthcare_db.model("hc_logit")
        X, y = _hc_matrix(healthcare_db)
        reference = LogisticRegression(max_iter=80, learning_rate=0.5, C=1.0)
        reference.fit(X, y)
        assert model.features == ("smoker_yes", "num_children", "income_100k")
        assert model.target == "label"
        np.testing.assert_allclose(
            np.asarray(model.coef), reference.coef_, rtol=0, atol=1e-6
        )
        assert abs(model.intercept - reference.intercept_) <= 1e-6
        healthcare_db.execute("DROP MODEL hc_logit")

    def test_linear_regression_matches_numpy(self, db):
        X, y = _toy_classification()
        _load_xy(db, X.tolist(), y.tolist())
        db.execute(
            "TRAIN lin USING (SELECT f0, f1, f2, label FROM pts) "
            "WITH (estimator = 'linear_regression', max_iter = 60, lr = 0.1)"
        )
        model = db.model("lin")
        reference = LinearRegression(max_iter=60, learning_rate=0.1)
        reference.fit(X, y)
        np.testing.assert_allclose(
            np.asarray(model.coef), reference.coef_, rtol=0, atol=1e-6
        )
        assert abs(model.intercept - reference.intercept_) <= 1e-6

    def test_same_iteration_count_and_convergence(self, db):
        """The SQL loop stops exactly when the numpy loop stops."""
        X, y = _toy_classification(n=60, seed=11)
        _load_xy(db, X.tolist(), y.tolist())
        db.execute(
            "TRAIN cv USING (SELECT f0, f1, f2, label FROM pts) "
            "WITH (max_iter = 400, lr = 0.5, tol = 0.001)"
        )
        model = db.model("cv")
        assert 0 < model.n_iter < 400  # converged via tol, not exhaustion
        reference = LogisticRegression(max_iter=400, learning_rate=0.5)
        reference.tol = 0.001
        reference.fit(X, y)
        np.testing.assert_allclose(
            np.asarray(model.coef), reference.coef_, rtol=0, atol=1e-6
        )

    def test_loaded_estimator_scores_like_numpy(self, healthcare_db):
        healthcare_db.execute(
            f"TRAIN hc_scored USING ({_HC_FEATURES}) WITH (max_iter = 40)"
        )
        estimator = healthcare_db.model_estimator("hc_scored")
        X, y = _hc_matrix(healthcare_db)
        reference = LogisticRegression(max_iter=40).fit(X, y)
        assert isinstance(estimator, LogisticRegression)
        np.testing.assert_array_equal(
            estimator.predict(X), reference.predict(X)
        )
        assert estimator.score(X, y) == pytest.approx(reference.score(X, y))
        healthcare_db.execute("DROP MODEL hc_scored")


class TestDifferentialTree:
    def test_tree_matches_numpy_on_small_fixture(self, db):
        X = [
            [1.0, 10.0],
            [2.0, 20.0],
            [3.0, 10.0],
            [4.0, 30.0],
            [5.0, 30.0],
            [6.0, 20.0],
            [7.0, 40.0],
            [8.0, 40.0],
        ]
        y = [0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]
        _load_xy(db, X, y)
        db.execute(
            "TRAIN tiny USING (SELECT f0, f1, label FROM pts) "
            "WITH (estimator = 'decision_tree', max_depth = 3)"
        )
        model = db.model("tiny")
        reference = DecisionTreeClassifier(max_depth=3)
        reference.fit(np.asarray(X), np.asarray(y))
        assert model.tree == reference.to_tuples()

    def test_tree_matches_numpy_on_healthcare(self, healthcare_db):
        healthcare_db.execute(
            f"TRAIN hc_tree USING ({_HC_FEATURES}) "
            "WITH (estimator = 'decision_tree', max_depth = 3)"
        )
        model = healthcare_db.model("hc_tree")
        X, y = _hc_matrix(healthcare_db)
        reference = DecisionTreeClassifier(max_depth=3)
        reference.fit(X, y)
        assert model.tree == reference.to_tuples()
        estimator = healthcare_db.model_estimator("hc_tree")
        np.testing.assert_array_equal(
            estimator.predict(X), reference.predict(X)
        )
        healthcare_db.execute("DROP MODEL hc_tree")

    def test_quantile_thresholds_match(self, db):
        """> max_thresholds distinct values exercises the quantile path."""
        rng = np.random.default_rng(5)
        X = rng.normal(0.0, 1.0, (90, 1))
        y = (X[:, 0] > 0.3).astype(float)
        _load_xy(db, X.tolist(), y.tolist())
        db.execute(
            "TRAIN quant USING (SELECT f0, label FROM pts) "
            "WITH (estimator = 'decision_tree', max_depth = 2, "
            "max_thresholds = 8)"
        )
        reference = DecisionTreeClassifier(max_depth=2, max_thresholds=8)
        reference.fit(X, y)
        assert db.model("quant").tree == reference.to_tuples()


# -- hypothesis properties ----------------------------------------------------

_feature = st.floats(
    min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def _training_sets(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    rows = draw(
        st.lists(
            st.tuples(_feature, _feature, st.integers(min_value=0, max_value=1)),
            min_size=n,
            max_size=n,
        )
    )
    return [(a, b, float(lbl)) for a, b, lbl in rows]


class TestProperties:
    @given(
        rows=_training_sets(),
        lr=st.floats(min_value=0.01, max_value=0.3),
        estimator=st.sampled_from(["logistic_regression", "linear_regression"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_training_never_increases_loss(self, rows, lr, estimator):
        """Full-batch descent: L(w_final) <= L(w0) for any sane lr.

        ``model.loss`` records the loss at the weights *entering* the
        last iteration, so ``max_iter=1`` yields exactly L(w0).
        """
        losses = {}
        for iters in (1, 12):
            database = Database(optimize=True)
            try:
                _load_xy(database, [r[:2] for r in rows], [r[2] for r in rows])
                database.execute(
                    "TRAIN m USING (SELECT f0, f1, label FROM pts) WITH ("
                    f"estimator = '{estimator}', max_iter = {iters}, lr = {lr!r})"
                )
                losses[iters] = database.model("m").loss
            finally:
                database.close()
        assert losses[12] <= losses[1] + 1e-9

    @given(rows=_training_sets(), lr=st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=8, deadline=None)
    def test_training_deterministic_across_workers(self, rows, lr):
        """workers=1 vs workers=8 must produce bit-identical models (the
        parallel float-SUM exactness certificate, observed end to end)."""
        models = []
        for workers in (1, 8):
            database = Database(optimize=True, workers=workers, morsel_size=5)
            try:
                _load_xy(database, [r[:2] for r in rows], [r[2] for r in rows])
                database.execute(
                    "TRAIN m USING (SELECT f0, f1, label FROM pts) WITH ("
                    f"max_iter = 8, lr = {lr!r})"
                )
                models.append(database.model("m"))
            finally:
                database.close()
        serial, parallel = models
        assert serial.coef == parallel.coef  # bitwise, not approx
        assert serial.intercept == parallel.intercept
        assert serial.loss == parallel.loss
        assert serial.n_iter == parallel.n_iter

    def test_tree_deterministic_across_workers(self):
        X, y = _toy_classification(n=80, seed=23)
        trees = []
        for workers in (1, 8):
            database = Database(optimize=True, workers=workers, morsel_size=7)
            try:
                _load_xy(database, X.tolist(), y.tolist())
                database.execute(
                    "TRAIN t USING (SELECT f0, f1, f2, label FROM pts) "
                    "WITH (estimator = 'decision_tree', max_depth = 4)"
                )
                trees.append(database.model("t").tree)
            finally:
                database.close()
        assert trees[0] == trees[1]


# -- statement surface & errors -----------------------------------------------


class TestTrainSurface:
    def _fill(self, db):
        X, y = _toy_classification(n=30, seed=2)
        _load_xy(db, X.tolist(), y.tolist())

    def test_train_with_parameters(self, db):
        self._fill(db)
        result = db.execute(
            "TRAIN pm USING (SELECT f0, label FROM pts WHERE f0 > ?) "
            "WITH (max_iter = ?)",
            (-10.0, 4),
        )
        assert result.rowcount == 4  # rowcount reports iterations run
        assert db.model("pm").n_iter == 4

    def test_retrain_replaces_model(self, db):
        self._fill(db)
        db.execute("TRAIN r USING (SELECT f0, label FROM pts) WITH (max_iter = 2)")
        db.execute("TRAIN r USING (SELECT f0, label FROM pts) WITH (max_iter = 5)")
        assert db.model("r").n_iter == 5
        assert db.model_names() == ["r"]

    def test_target_option_reorders_columns(self, db):
        self._fill(db)
        db.execute(
            "TRAIN t USING (SELECT label, f0, f1 FROM pts) "
            "WITH (target = 'label', max_iter = 2)"
        )
        assert db.model("t").features == ("f0", "f1")
        assert db.model("t").target == "label"

    def test_errors(self, db):
        self._fill(db)
        cases = [
            ("TRAIN e USING (SELECT f0, label FROM pts) WITH (estimator = 'svm')", "estimator"),
            ("TRAIN e USING (SELECT f0, label FROM pts) WITH (bogus = 1)", "bogus"),
            ("TRAIN e USING (SELECT f0, label FROM pts) WITH (lr = 0.1, learning_rate = 0.2)", "alias"),
            ("TRAIN e USING (SELECT f0, f0 FROM pts)", "duplicate"),
            ("TRAIN e USING (SELECT f0, label FROM pts) WITH (target = 'nope')", "not in the query output"),
            ("TRAIN e USING (SELECT label FROM pts)", "at least one feature"),
            ("TRAIN e USING (SELECT f0, label FROM pts WHERE f0 > 99) WITH (max_iter = 1)", "no rows"),
            ("TRAIN e USING (SELECT f0, f1 FROM pts) WITH (estimator = 'decision_tree')", "0/1 labels"),
            ("TRAIN e USING (SELECT f0, label FROM pts) WITH (c = -1.0)", "positive"),
        ]
        for sql, fragment in cases:
            with pytest.raises(SQLExecutionError, match=fragment):
                db.execute(sql)
        assert db.model_names() == []

    def test_syntax_requires_using(self, db):
        with pytest.raises(SQLError):
            db.execute("TRAIN broken (SELECT 1)")

    def test_name_collisions_with_tables(self, db):
        self._fill(db)
        with pytest.raises(CatalogError):
            db.execute("TRAIN pts USING (SELECT f0, label FROM pts)")
        db.execute("TRAIN m USING (SELECT f0, label FROM pts) WITH (max_iter = 1)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE m (a int)")

    def test_drop_model(self, db):
        self._fill(db)
        db.execute("TRAIN d USING (SELECT f0, label FROM pts) WITH (max_iter = 1)")
        db.execute("DROP MODEL d")
        assert db.model_names() == []
        with pytest.raises(CatalogError):
            db.execute("DROP MODEL d")
        db.execute("DROP MODEL IF EXISTS d")  # no error
        with pytest.raises(CatalogError):
            db.model("d")


# -- transactions, durability, concurrency ------------------------------------


def _seed_points(database, n=40):
    database.execute("CREATE TABLE pts (x double precision, y int)")
    database.executemany(
        "INSERT INTO pts VALUES (?, ?)",
        [(float(i % 7) / 7.0, int(i % 2)) for i in range(n)],
    )


_TRAIN_PTS = "TRAIN m USING (SELECT x, y FROM pts) WITH (max_iter = 5)"


class TestTransactions:
    def test_rollback_discards_model(self, db):
        _seed_points(db)
        db.execute("BEGIN")
        db.execute(_TRAIN_PTS)
        assert db.model_names() == ["m"]
        db.execute("ROLLBACK")
        assert db.model_names() == []

    def test_rollback_restores_dropped_model(self, db):
        _seed_points(db)
        db.execute(_TRAIN_PTS)
        coef = db.model("m").coef
        db.execute("BEGIN")
        db.execute("DROP MODEL m")
        assert db.model_names() == []
        db.execute("ROLLBACK")
        assert db.model("m").coef == coef

    def test_uncommitted_model_invisible_to_peer(self, db):
        _seed_points(db)
        writer, reader = db.session(), db.session()
        db.execute("BEGIN", session=writer)
        db.execute(_TRAIN_PTS, session=writer)
        assert db.model_names(session=reader) == []
        db.execute("COMMIT", session=writer)
        assert db.model_names(session=reader) == ["m"]

    def test_first_committer_wins_on_model_name(self, db):
        """Two transactions training the same name: the later committer
        gets a serialization failure and the first model survives."""
        _seed_points(db)
        winner, loser = db.session(), db.session()
        db.execute("BEGIN", session=loser)
        db.execute("SELECT count(*) FROM pts", session=loser)  # pin snapshot
        db.execute(
            "TRAIN m USING (SELECT x, y FROM pts) WITH (max_iter = 3)",
            session=winner,  # autocommits; stamps the model's version
        )
        db.execute(
            "TRAIN m USING (SELECT x, y FROM pts) WITH (max_iter = 9)",
            session=loser,
        )
        with pytest.raises(SerializationFailure):
            db.execute("COMMIT", session=loser)
        assert db.model("m").n_iter == 3


class TestDurability:
    def test_committed_model_survives_reopen(self, tmp_path):
        wal = str(tmp_path / "train.wal")
        database = Database(optimize=True, wal_path=wal)
        _seed_points(database)
        database.execute(_TRAIN_PTS)
        expected = database.model("m")
        database.close()
        recovered = Database(optimize=True, wal_path=wal)
        try:
            # WAL replay re-runs TRAIN; determinism gives identical weights
            assert recovered.model("m").coef == expected.coef
            assert recovered.model("m").intercept == expected.intercept
        finally:
            recovered.close()

    def test_checkpoint_carries_model(self, tmp_path):
        wal = str(tmp_path / "ckpt.wal")
        database = Database(optimize=True, wal_path=wal)
        _seed_points(database)
        database.execute(_TRAIN_PTS)
        expected = database.model("m").coef
        database.execute("CHECKPOINT")
        database.close()
        recovered = Database(optimize=True, wal_path=wal)
        try:
            assert recovered.model("m").coef == expected
        finally:
            recovered.close()

    def test_crash_before_append_loses_unacked_train(self, tmp_path):
        wal = str(tmp_path / "crash1.wal")
        faults = FaultInjector()
        database = Database(optimize=True, wal_path=wal, faults=faults)
        _seed_points(database)
        faults.arm("wal.append.before", hits=1)
        with pytest.raises(SimulatedCrash):
            database.execute(_TRAIN_PTS)
        database.close()
        recovered = Database(optimize=True, wal_path=wal)
        try:
            assert recovered.model_names() == []  # never acknowledged
            assert recovered.execute("SELECT count(*) FROM pts").rows == [(40,)]
        finally:
            recovered.close()

    def test_crash_after_fsync_keeps_train(self, tmp_path):
        wal = str(tmp_path / "crash2.wal")
        oracle = Database(optimize=True)
        _seed_points(oracle)
        oracle.execute(_TRAIN_PTS)
        expected = oracle.model("m").coef
        oracle.close()

        faults = FaultInjector()
        database = Database(optimize=True, wal_path=wal, faults=faults)
        _seed_points(database)
        faults.arm("wal.fsync.after", hits=1)
        with pytest.raises(SimulatedCrash):
            database.execute(_TRAIN_PTS)
        database.close()
        recovered = Database(optimize=True, wal_path=wal)
        try:
            # the fsync completed before the crash: the TRAIN is durable
            assert recovered.model("m").coef == expected
        finally:
            recovered.close()
