"""Write-ahead logging, checkpoints, and crash recovery on open."""

import os
import struct

import pytest

from repro.errors import DurabilityError
from repro.sqldb.engine import Database
from repro.sqldb.wal import (
    _HEADER,
    _WAL_MAGIC,
    encode_record,
    read_checkpoint,
    read_wal,
    truncate_wal,
)


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "db.wal")


def open_db(wal_path, **kwargs):
    return Database("umbra", wal_path=wal_path, **kwargs)


def all_rows(db, table="t"):
    return sorted(db.execute(f"SELECT * FROM {table}").rows)


class TestBasicRecovery:
    def test_ddl_and_dml_survive_reopen(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x')")
        db.execute("INSERT INTO t (a, b) VALUES (?, ?)", (2, "y"))
        db.close()
        db2 = open_db(wal_path)
        assert all_rows(db2) == [(1, "x"), (2, "y")]

    def test_views_survive_reopen(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t (a) VALUES (1), (2), (3)")
        db.execute("CREATE VIEW v AS SELECT a FROM t WHERE a > 1")
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT count(*) AS n FROM t")
        db.close()
        db2 = open_db(wal_path)
        assert sorted(db2.execute("SELECT a FROM v").column("a")) == [2, 3]
        assert db2.execute("SELECT n FROM mv").scalar() == 3

    def test_uncommitted_transaction_is_lost(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a) VALUES (1)")
        db.close()  # abandons the open transaction, like a process exit
        db2 = open_db(wal_path)
        assert all_rows(db2) == []

    def test_rolled_back_work_never_reaches_the_log(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a) VALUES (1)")
        db.execute("ROLLBACK")
        db.execute("INSERT INTO t (a) VALUES (2)")
        db.close()
        records, _ = read_wal(wal_path)
        inserted = [r for r in records if "INSERT" in r.get("sql", "")]
        assert len(inserted) == 1
        db2 = open_db(wal_path)
        assert all_rows(db2) == [(2,)]

    def test_savepoint_undone_statements_not_replayed(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a) VALUES (1)")
        db.execute("SAVEPOINT s")
        db.execute("INSERT INTO t (a) VALUES (2)")
        db.execute("ROLLBACK TO s")
        db.execute("INSERT INTO t (a) VALUES (3)")
        db.execute("COMMIT")
        db.close()
        db2 = open_db(wal_path)
        assert all_rows(db2) == [(1,), (3,)]

    def test_executemany_batch_replays(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int, b text)")
        db.executemany(
            "INSERT INTO t (a, b) VALUES (?, ?)",
            [(i, f"row{i}") for i in range(20)],
        )
        db.close()
        db2 = open_db(wal_path)
        assert len(all_rows(db2)) == 20
        records, _ = read_wal(wal_path)
        # the batch is one compressed "many" record, not 20 records
        assert sum(1 for r in records if r["t"] == "many") == 1

    def test_failed_statements_not_logged(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(Exception):
            db.execute("INSERT INTO t (a) VALUES ('boom')")
        db.close()
        db2 = open_db(wal_path)
        assert all_rows(db2) == []

    def test_recovery_is_idempotent(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        db.close()
        for _ in range(3):  # reopen repeatedly; no double-apply
            db = open_db(wal_path)
            assert all_rows(db) == [(1,)]
            db.close()

    def test_durable_requires_wal_path(self):
        with pytest.raises(DurabilityError):
            Database("umbra", durable=True)

    def test_analyze_survives_reopen(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t (a) VALUES (1), (2)")
        db.execute("ANALYZE t")
        db.close()
        db2 = open_db(wal_path)
        assert db2.catalog.table_stats("t") is not None
        assert db2.catalog.table_stats("t").n_rows == 2


class TestCheckpoints:
    def test_checkpoint_truncates_wal(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.executemany("INSERT INTO t (a) VALUES (?)", [(i,) for i in range(50)])
        size_before = os.path.getsize(wal_path)
        db.execute("CHECKPOINT")
        assert os.path.getsize(wal_path) < size_before
        assert os.path.exists(wal_path + ".ckpt")
        db.close()
        db2 = open_db(wal_path)
        assert len(all_rows(db2)) == 50

    def test_recovery_from_checkpoint_plus_tail(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        db.checkpoint()
        db.execute("INSERT INTO t (a) VALUES (2)")
        db.close()
        db2 = open_db(wal_path)
        assert all_rows(db2) == [(1,), (2,)]

    def test_auto_checkpoint_every_n_commits(self, wal_path):
        db = open_db(wal_path, checkpoint_every=3)
        db.execute("CREATE TABLE t (a int)")
        for i in range(5):
            db.execute("INSERT INTO t (a) VALUES (?)", (i,))
        assert os.path.exists(wal_path + ".ckpt")
        db.close()
        db2 = open_db(wal_path)
        assert len(all_rows(db2)) == 5

    def test_checkpoint_inside_transaction_raises(self, wal_path):
        db = open_db(wal_path)
        db.execute("BEGIN")
        with pytest.raises(Exception):
            db.execute("CHECKPOINT")
        db.execute("ROLLBACK")

    def test_checkpoint_without_wal_raises(self):
        db = Database("umbra")
        with pytest.raises(DurabilityError):
            db.execute("CHECKPOINT")

    def test_corrupt_checkpoint_raises(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("CHECKPOINT")
        db.close()
        with open(wal_path + ".ckpt", "r+b") as handle:
            handle.seek(20)
            handle.write(b"\xff\xff\xff")
        with pytest.raises(DurabilityError):
            open_db(wal_path)


class TestTornTails:
    """A crash mid-write leaves a torn tail; recovery clips it."""

    def _committed_wal(self, wal_path, n=5):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        for i in range(n):
            db.execute("INSERT INTO t (a) VALUES (?)", (i,))
        db.close()

    def test_truncated_at_every_byte_recovers_a_prefix(self, wal_path):
        self._committed_wal(wal_path, n=4)
        with open(wal_path, "rb") as handle:
            full = handle.read()
        # clip at a spread of byte offsets, beyond the magic
        for cut in range(len(_WAL_MAGIC), len(full), 7):
            with open(wal_path, "wb") as handle:
                handle.write(full[:cut])
            db = open_db(wal_path)
            rows = [r[0] for r in all_rows(db)] if db.catalog.has("t") else []
            # always a prefix of the committed inserts, never a gap
            assert rows == list(range(len(rows)))
            db.close()

    def test_bad_checksum_stops_replay_there(self, wal_path):
        self._committed_wal(wal_path, n=3)
        with open(wal_path, "rb") as handle:
            full = handle.read()
        # corrupt one byte in the last record's payload
        corrupted = bytearray(full)
        corrupted[-2] ^= 0xFF
        with open(wal_path, "wb") as handle:
            handle.write(bytes(corrupted))
        db = open_db(wal_path)
        rows = [r[0] for r in all_rows(db)]
        assert rows == [0, 1]  # the corrupted last insert is dropped
        db.close()

    def test_torn_header_is_clipped(self, wal_path):
        self._committed_wal(wal_path, n=2)
        with open(wal_path, "ab") as handle:
            handle.write(struct.pack("<I", 5000))  # half a header
        db = open_db(wal_path)
        assert [r[0] for r in all_rows(db)] == [0, 1]
        db.close()
        # the torn tail was physically truncated away on recovery
        records, valid = read_wal(wal_path)
        assert valid == os.path.getsize(wal_path)  # nothing invalid remains

    def test_length_past_eof_is_clipped(self, wal_path):
        self._committed_wal(wal_path, n=2)
        payload = encode_record({"t": "auto", "txn": 99, "sql": "x", "i": 0, "p": []})
        with open(wal_path, "ab") as handle:
            handle.write(payload[: len(payload) // 2])
        db = open_db(wal_path)
        assert [r[0] for r in all_rows(db)] == [0, 1]
        db.close()

    def test_bad_magic_raises(self, wal_path):
        with open(wal_path, "wb") as handle:
            handle.write(b"GARBAGE!" * 4)
        with pytest.raises(DurabilityError):
            open_db(wal_path)

    def test_torn_magic_reads_as_empty(self, wal_path):
        with open(wal_path, "wb") as handle:
            handle.write(_WAL_MAGIC[:3])
        db = open_db(wal_path)  # treated as a torn initial write
        assert db.catalog.table_names == []
        db.close()

    def test_missing_wal_file_is_fresh_database(self, wal_path):
        db = open_db(wal_path)
        assert db.catalog.table_names == []
        db.execute("CREATE TABLE t (a int)")
        db.close()


class TestWalFormat:
    def test_read_wal_roundtrip(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a) VALUES (1)")
        db.execute("INSERT INTO t (a) VALUES (2)")
        db.execute("COMMIT")
        db.close()
        records, valid = read_wal(wal_path)
        assert valid == os.path.getsize(wal_path)
        kinds = [r["t"] for r in records]
        assert kinds == ["auto", "begin", "stmt", "stmt", "commit"]
        assert records[1]["txn"] == records[4]["txn"]

    def test_group_commit_is_contiguous(self, wal_path):
        """A committed txn's records are adjacent — buffered until COMMIT."""
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE TABLE u (a int)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a) VALUES (1)")
        db.execute("COMMIT")
        db.close()
        records, _ = read_wal(wal_path)
        txn_ids = [r["txn"] for r in records]
        # per-transaction records never interleave
        assert txn_ids == sorted(txn_ids)

    def test_truncate_wal_repairs_file(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.close()
        good_size = os.path.getsize(wal_path)
        with open(wal_path, "ab") as handle:
            handle.write(b"\x01")
        records, valid = read_wal(wal_path)
        assert valid == good_size
        truncate_wal(wal_path, valid)
        assert os.path.getsize(wal_path) == good_size

    def test_unserialisable_record_raises(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(DurabilityError):
            db._wal.append({"t": "auto", "bad": object()})
        db.close()

    def test_checkpoint_reader_missing_file(self, tmp_path):
        assert read_checkpoint(str(tmp_path / "nope.ckpt")) is None


class TestRecoveryUnderConcurrency:
    """Crash recovery with multiple MVCC sessions in flight.

    The durability point is the flush of a transaction's WAL records at
    COMMIT: a peer session's *open* transaction has written nothing to
    the log yet, so recovery replays exactly the committed sessions —
    the same state a serial replay of the commit order produces.
    """

    def test_committed_peer_survives_open_peer(self, wal_path):
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        a = db.session()
        b = db.session()
        a.begin()
        a.execute("INSERT INTO t (a) VALUES (1)")
        a.commit()
        b.begin()
        b.execute("INSERT INTO t (a) VALUES (2)")
        # crash: abandon the database object with b's transaction open
        del db, a, b
        db2 = open_db(wal_path)
        assert all_rows(db2) == [(1,)]
        db2.close()

    def test_crash_after_commit_record_is_durable(self, wal_path):
        # crash between the durable commit record and the in-memory
        # catalog install: the commit must survive recovery even though
        # the crashed process never acknowledged it
        from repro.sqldb.faults import FaultInjector, SimulatedCrash

        faults = FaultInjector()
        db = open_db(wal_path, faults=faults)
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE TABLE u (a int)")
        a = db.session()
        b = db.session()
        b.begin()
        b.execute("INSERT INTO u (a) VALUES (99)")  # open at crash time
        a.begin()
        a.execute("INSERT INTO t (a) VALUES (1)")
        faults.arm("commit.install")
        with pytest.raises(SimulatedCrash):
            a.commit()
        del db, a, b
        db2 = open_db(wal_path)
        assert all_rows(db2) == [(1,)]
        assert all_rows(db2, "u") == []  # b never committed
        db2.close()

    def test_serialization_loser_never_reaches_the_wal(self, wal_path):
        from repro.errors import SerializationFailure

        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        a = db.session()
        b = db.session()
        a.begin()
        b.begin()
        a.execute("INSERT INTO t (a) VALUES (1)")
        a.commit()  # releases t's lock; b's snapshot predates this
        b.execute("INSERT INTO t (a) VALUES (2)")
        with pytest.raises(SerializationFailure):
            b.commit()
        db.close()
        records, _ = read_wal(wal_path)
        inserted = [r for r in records if "INSERT" in r.get("sql", "")]
        assert len(inserted) == 1
        assert "VALUES (1)" in inserted[0]["sql"]
        db2 = open_db(wal_path)
        assert all_rows(db2) == [(1,)]
        db2.close()

    def test_wal_order_matches_commit_order(self, wal_path):
        # commit ids are allocated at COMMIT under the install latch, so
        # the log's transaction ids are the commit order even when the
        # sessions began in the opposite order
        db = open_db(wal_path)
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE TABLE u (a int)")
        a = db.session()
        b = db.session()
        a.begin()  # begins first...
        b.begin()
        a.execute("INSERT INTO t (a) VALUES (1)")
        b.execute("INSERT INTO u (a) VALUES (2)")
        b.commit()  # ...but commits second
        a.commit()
        assert b.last_commit_id < a.last_commit_id
        db.close()
        records, _ = read_wal(wal_path)
        txn_ids = [r["txn"] for r in records]
        assert txn_ids == sorted(txn_ids)
        db2 = open_db(wal_path)
        assert all_rows(db2, "t") == [(1,)]
        assert all_rows(db2, "u") == [(2,)]
        db2.close()
