"""Property-based tests of the SQL engine (hypothesis).

Two angles: differential testing between the two engine profiles (they
must agree on every query result), and metamorphic/algebraic properties
(selection partitions, join cardinalities, aggregate invariants).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database

values = st.one_of(
    st.none(),
    st.integers(min_value=-50, max_value=50),
    st.sampled_from(["a", "b", "c"]),
)
numeric = st.one_of(st.none(), st.integers(min_value=-50, max_value=50))


def _load(db: Database, ints, texts):
    db.execute("CREATE TABLE t (n int, s text)")
    if ints:
        rows = ", ".join(
            f"({'NULL' if n is None else n}, "
            f"{'NULL' if s is None else repr(s)})"
            for n, s in zip(ints, texts)
        )
        db.execute(f"INSERT INTO t VALUES {rows}")


def _pair(ints, texts):
    pg, umbra = Database("postgres"), Database("umbra")
    _load(pg, ints, texts)
    _load(umbra, ints, texts)
    return pg, umbra


@st.composite
def table_data(draw, max_rows=30):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    ints = draw(st.lists(numeric, min_size=n, max_size=n))
    texts = draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n)
    )
    return ints, texts


@given(table_data())
@settings(max_examples=40, deadline=None)
def test_profiles_agree_on_grouped_aggregates(data):
    ints, texts = data
    pg, umbra = _pair(ints, texts)
    query = (
        "SELECT s, count(*) AS c, sum(n) AS total, min(n) AS lo, "
        "max(n) AS hi FROM t GROUP BY s ORDER BY s"
    )
    assert pg.execute(query).rows == umbra.execute(query).rows


@given(table_data(), st.integers(-50, 50))
@settings(max_examples=40, deadline=None)
def test_selection_partitions_rows(data, threshold):
    ints, texts = data
    db = Database("umbra")
    _load(db, ints, texts)
    total = db.execute("SELECT count(*) FROM t").scalar()
    above = db.execute(f"SELECT count(*) FROM t WHERE n > {threshold}").scalar()
    below = db.execute(f"SELECT count(*) FROM t WHERE n <= {threshold}").scalar()
    nulls = db.execute("SELECT count(*) FROM t WHERE n IS NULL").scalar()
    # SQL three-valued logic: null rows fall out of both predicates
    assert above + below + nulls == total


@given(table_data())
@settings(max_examples=30, deadline=None)
def test_cte_equals_inline(data):
    ints, texts = data
    db = Database("postgres")
    _load(db, ints, texts)
    direct = db.execute("SELECT s, count(*) FROM t GROUP BY s ORDER BY s")
    via_cte = db.execute(
        "WITH base AS (SELECT * FROM t) "
        "SELECT s, count(*) FROM base GROUP BY s ORDER BY s"
    )
    assert direct.rows == via_cte.rows


@given(table_data())
@settings(max_examples=30, deadline=None)
def test_view_equals_base_query(data):
    ints, texts = data
    db = Database("umbra")
    _load(db, ints, texts)
    db.execute("CREATE VIEW v AS SELECT n, s FROM t WHERE n IS NOT NULL")
    db.execute(
        "CREATE MATERIALIZED VIEW m AS SELECT n, s FROM t WHERE n IS NOT NULL"
    )
    base = db.execute("SELECT count(*), sum(n) FROM t WHERE n IS NOT NULL")
    view = db.execute("SELECT count(*), sum(n) FROM v")
    mat = db.execute("SELECT count(*), sum(n) FROM m")
    assert base.rows == view.rows == mat.rows


@given(
    st.lists(st.integers(0, 5), min_size=0, max_size=20),
    st.lists(st.integers(0, 5), min_size=0, max_size=20),
)
@settings(max_examples=40, deadline=None)
def test_join_cardinality_is_key_product(left_keys, right_keys):
    db = Database("umbra")
    db.execute("CREATE TABLE l (k int)")
    db.execute("CREATE TABLE r (k int)")
    if left_keys:
        db.execute(
            "INSERT INTO l VALUES " + ", ".join(f"({k})" for k in left_keys)
        )
    if right_keys:
        db.execute(
            "INSERT INTO r VALUES " + ", ".join(f"({k})" for k in right_keys)
        )
    joined = db.execute(
        "SELECT count(*) FROM l JOIN r ON l.k = r.k"
    ).scalar()
    expected = sum(
        left_keys.count(k) * right_keys.count(k) for k in set(left_keys)
    )
    assert joined == expected


@given(table_data())
@settings(max_examples=30, deadline=None)
def test_array_agg_roundtrips_through_unnest(data):
    ints, texts = data
    db = Database("umbra")
    _load(db, ints, texts)
    flattened = db.execute(
        "WITH g AS (SELECT s, array_agg(ctid) AS ids FROM t GROUP BY s) "
        "SELECT count(*) FROM (SELECT unnest(ids) AS i FROM g) u"
    ).scalar()
    total = db.execute("SELECT count(*) FROM t").scalar()
    assert flattened == total


@given(table_data())
@settings(max_examples=30, deadline=None)
def test_count_star_vs_column_vs_distinct(data):
    ints, texts = data
    db = Database("postgres")
    _load(db, ints, texts)
    star = db.execute("SELECT count(*) FROM t").scalar()
    col = db.execute("SELECT count(n) FROM t").scalar()
    distinct = db.execute("SELECT count(DISTINCT n) FROM t").scalar()
    non_null = sum(1 for v in ints if v is not None)
    assert star == len(ints)
    assert col == non_null
    assert distinct == len({v for v in ints if v is not None})


@given(table_data())
@settings(max_examples=30, deadline=None)
def test_avg_consistent_with_sum_count(data):
    ints, texts = data
    db = Database("umbra")
    _load(db, ints, texts)
    row = db.execute("SELECT avg(n), sum(n), count(n) FROM t").rows[0]
    avg, total, count = row
    if count == 0:
        assert avg is None and total is None
    else:
        assert avg == pytest.approx(total / count)


@given(table_data(), st.integers(0, 10), st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_limit_offset_window(data, limit, offset):
    ints, texts = data
    db = Database("umbra")
    _load(db, ints, texts)
    all_rows = db.execute("SELECT ctid FROM t ORDER BY ctid").rows
    window = db.execute(
        f"SELECT ctid FROM t ORDER BY ctid LIMIT {limit} OFFSET {offset}"
    ).rows
    assert window == all_rows[offset : offset + limit]
