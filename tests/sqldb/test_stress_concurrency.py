"""Concurrent MVCC chaos-stress harness.

Randomized multi-threaded workloads (8+ sessions) against one shared
database, validated two ways:

* **serial commit-order replay oracle** — every committed transaction
  records its statements and its engine-assigned commit id
  (:attr:`Session.last_commit_id`); replaying the statements serially in
  commit-id order on a fresh database must reproduce the concurrent
  run's final state exactly.  That is the definition of the snapshot
  scheduler being equivalent to *some* serial order — and of commit ids
  naming that order.
* **crash rounds** — the same workload composed with the
  :class:`FaultInjector` crashpoints: the process "dies" mid-workload
  and the WAL is reopened.  Every transaction that was *acknowledged*
  (COMMIT returned) must survive recovery in full; every transaction,
  acked or not, must be all-or-nothing (rows carry per-transaction tags,
  so partial presence is detectable).

Rounds default to a small tier-1 budget; raise with ``--stress-rounds``
or the ``REPRO_STRESS_ROUNDS`` environment variable.
"""

import os
import random
import threading
import time

import pytest

from repro.core.connectors import is_retryable, retry_backoff
from repro.errors import SQLError
from repro.sqldb.engine import Database
from repro.sqldb.faults import CRASHPOINTS, FaultInjector, SimulatedCrash

pytestmark = pytest.mark.stress

TABLES = ("alpha", "beta", "gamma")
N_WORKERS = 8
TXNS_PER_WORKER = 4


@pytest.fixture
def rounds(request):
    opt = request.config.getoption("--stress-rounds")
    if opt is not None:
        return opt
    env = os.environ.get("REPRO_STRESS_ROUNDS")
    if env:
        return int(env)
    return 2


def _create_tables(db):
    for name in TABLES:
        db.execute(f"CREATE TABLE {name} (tag text, val int)")


def _state(db):
    return {
        name: sorted(db.execute(f"SELECT tag, val FROM {name}").rows)
        for name in TABLES
    }


def _txn_body(rng, tag):
    """A randomized transaction: inserts into 1-2 tables (sequentially,
    so cross-table lock orders — and thus deadlocks — can happen),
    occasionally an ANALYZE (whose write-set is *every* table, a
    serialization-conflict magnet)."""
    body = []
    expected = []
    for i, table in enumerate(rng.sample(TABLES, k=rng.choice((1, 1, 2)))):
        values = []
        for j in range(rng.randint(1, 3)):
            val = i * 10 + j
            values.append(f"('{tag}', {val})")
            expected.append((table, tag, val))
        body.append(
            f"INSERT INTO {table} (tag, val) VALUES {', '.join(values)}"
        )
    if rng.random() < 0.15:
        body.append("ANALYZE")
    return body, expected


class TestSerialReplayOracle:
    def test_concurrent_workload_matches_serial_commit_order_replay(
        self, rounds
    ):
        for round_no in range(rounds):
            self._run_round(seed=1000 + round_no)

    def _run_round(self, seed):
        db = Database("umbra")
        _create_tables(db)
        committed = []  # (commit_id, [sql, ...])
        retried = {"40001": 0, "40P01": 0, "57014": 0}
        failures = []
        mutex = threading.Lock()

        def worker(wid):
            rng = random.Random(seed * 1000 + wid)
            session = db.session()
            try:
                for t in range(TXNS_PER_WORKER):
                    body, _ = _txn_body(rng, f"w{wid}t{t}")

                    def attempt():
                        session.begin()
                        for sql in body:
                            session.execute(sql)
                        session.commit()

                    def on_retry(_i, exc):
                        with mutex:
                            retried[exc.sqlstate] += 1
                        db.rollback(session=session)

                    retry_backoff(
                        attempt,
                        attempts=12,
                        base_delay=0.001,
                        max_delay=0.05,
                        rng=rng,
                        on_retry=on_retry,
                    )
                    with mutex:
                        committed.append((session.last_commit_id, body))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                with mutex:
                    failures.append((wid, exc))
            finally:
                session.close()

        threads = [
            threading.Thread(target=worker, args=(wid,))
            for wid in range(N_WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "stress round hung"
        assert failures == []
        assert len(committed) == N_WORKERS * TXNS_PER_WORKER
        commit_ids = [cid for cid, _ in committed]
        assert len(set(commit_ids)) == len(commit_ids), (
            "commit ids must be unique across sessions"
        )

        concurrent_state = _state(db)
        db.close()

        # the oracle: replay serially, in commit-id order, on a fresh db
        oracle = Database("umbra")
        _create_tables(oracle)
        for _cid, body in sorted(committed, key=lambda item: item[0]):
            for sql in body:
                oracle.execute(sql)
        assert _state(oracle) == concurrent_state
        oracle.close()


class TestCrashDuringConcurrency:
    def test_acked_commits_survive_crash_and_txns_are_atomic(
        self, rounds, tmp_path
    ):
        for round_no in range(rounds):
            self._run_crash_round(
                seed=2000 + round_no,
                wal_path=str(tmp_path / f"round{round_no}.wal"),
            )

    def _run_crash_round(self, seed, wal_path):
        rng0 = random.Random(seed)
        point = rng0.choice(
            [p for p in CRASHPOINTS if not p.endswith(".torn")]
        )
        faults = FaultInjector()
        db = Database(
            "umbra",
            wal_path=wal_path,
            faults=faults,
            # a safety net, not part of the scenario: if the crash
            # orphans a table lock, blocked peers time out (57014),
            # notice the crash flag and exit instead of hanging
            statement_timeout_ms=2000,
        )
        _create_tables(db)
        # arm only after setup so the crash lands inside the concurrent
        # workload, not the single-threaded CREATEs
        faults.arm(point, hits=rng0.randint(4, 30))

        acked = []  # (tag, [(table, tag, val), ...]) — COMMIT returned
        all_tags = {}  # tag -> expected rows, acked or not
        crashed = threading.Event()
        mutex = threading.Lock()
        failures = []

        def worker(wid):
            rng = random.Random(seed * 1000 + wid)
            session = db.session()
            try:
                for t in range(TXNS_PER_WORKER):
                    if crashed.is_set():
                        return
                    tag = f"w{wid}t{t}"
                    body, expected = _txn_body(rng, tag)
                    with mutex:
                        all_tags[tag] = expected
                    attempt = 0
                    while True:
                        if crashed.is_set():
                            return
                        try:
                            session.begin()
                            for sql in body:
                                session.execute(sql)
                            session.commit()
                            with mutex:
                                acked.append((tag, expected))
                            break
                        except SimulatedCrash:
                            crashed.set()
                            db.cancel_all()  # free peers stuck in lock waits
                            return
                        except SQLError as exc:
                            if not is_retryable(exc) or attempt >= 20:
                                raise
                            attempt += 1
                            try:
                                db.rollback(session=session)
                            except SimulatedCrash:
                                crashed.set()
                                db.cancel_all()
                                return
                            time.sleep(0.001 * attempt * rng.random())
            except Exception as exc:  # noqa: BLE001 - surfaced below
                if not crashed.is_set():
                    with mutex:
                        failures.append((wid, exc))

        threads = [
            threading.Thread(target=worker, args=(wid,))
            for wid in range(N_WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "crash round hung"
        assert failures == []

        # abandon the torn database object and recover from the log
        recovered = Database("umbra", wal_path=wal_path)
        state = _state(recovered)
        by_table = {
            name: {} for name in TABLES
        }  # table -> tag -> sorted vals
        for name in TABLES:
            for tag, val in state[name]:
                by_table[name].setdefault(tag, []).append(val)

        def present_rows(expected):
            got = []
            for table, tag, val in expected:
                if val in by_table[table].get(tag, []):
                    got.append((table, tag, val))
            return got

        # durability: an acknowledged COMMIT survives the crash in full
        for tag, expected in acked:
            assert present_rows(expected) == expected, (
                f"acked transaction {tag} lost rows across recovery "
                f"(crashpoint {faults.fired or point})"
            )
        # atomicity: every transaction is all-or-nothing after recovery
        for tag, expected in all_tags.items():
            got = present_rows(expected)
            assert got == expected or got == [], (
                f"transaction {tag} recovered partially: {got}"
            )
        recovered.close()
