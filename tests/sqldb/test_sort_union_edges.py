"""Edge cases: multi-key sorting, UNION ALL, nested sources, empty inputs."""

import pytest

from repro.errors import SQLBindError
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database("postgres")
    database.run_script(
        "CREATE TABLE t (g text, n int);"
        "INSERT INTO t VALUES ('b', 2), ('a', 2), ('b', 1), ('a', NULL)"
    )
    return database


class TestSorting:
    def test_multi_key_mixed_directions(self, db):
        # PostgreSQL default: NULLS FIRST when descending
        result = db.execute("SELECT g, n FROM t ORDER BY g ASC, n DESC")
        assert result.rows == [
            ("a", None), ("a", 2), ("b", 2), ("b", 1),
        ]

    def test_nulls_first_on_desc(self, db):
        result = db.execute("SELECT n FROM t WHERE g = 'a' ORDER BY n DESC")
        assert result.rows == [(None,), (2,)]

    def test_order_by_expression(self, db):
        result = db.execute(
            "SELECT n FROM t WHERE n IS NOT NULL ORDER BY n * -1"
        )
        assert result.column("n") == [2, 2, 1]

    def test_order_by_hidden_input_column(self, db):
        # ORDER BY references a column the projection dropped
        result = db.execute(
            "SELECT g FROM t WHERE n IS NOT NULL ORDER BY n, g"
        )
        assert result.column("g") == ["b", "a", "b"]

    def test_order_stable_for_ties(self, db):
        result = db.execute("SELECT g, n FROM t ORDER BY g")
        assert [r[0] for r in result.rows] == ["a", "a", "b", "b"]


class TestUnionAll:
    def test_concatenates_and_keeps_duplicates(self, db):
        result = db.execute(
            "SELECT g FROM t WHERE n = 2 UNION ALL SELECT g FROM t WHERE n = 2"
        )
        assert sorted(result.column("g")) == ["a", "a", "b", "b"]

    def test_mixed_literal_arms(self, db):
        result = db.execute("SELECT 1 AS v UNION ALL SELECT 2")
        assert result.column("v") == [1, 2]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(SQLBindError):
            db.execute("SELECT g, n FROM t UNION ALL SELECT g FROM t")

    def test_union_inside_cte(self, db):
        result = db.execute(
            "WITH u AS (SELECT n FROM t UNION ALL SELECT 99) "
            "SELECT count(*) FROM u"
        )
        assert result.scalar() == 5


class TestNestedSources:
    def test_subquery_of_subquery(self, db):
        result = db.execute(
            "SELECT x FROM (SELECT n AS x FROM "
            "(SELECT n FROM t WHERE n IS NOT NULL) inner_q) outer_q "
            "ORDER BY x"
        )
        assert result.column("x") == [1, 2, 2]

    def test_join_of_subqueries(self, db):
        result = db.execute(
            "SELECT count(*) FROM (SELECT g FROM t) a "
            "JOIN (SELECT g FROM t) b ON a.g = b.g"
        )
        assert result.scalar() == 8  # 2x2 per group, two groups

    def test_aggregate_over_join_of_ctes(self, db):
        result = db.execute(
            "WITH l AS (SELECT g, n FROM t WHERE n IS NOT NULL), "
            "r AS (SELECT g FROM t) "
            "SELECT l.g, count(*) AS c FROM l JOIN r ON l.g = r.g "
            "GROUP BY l.g ORDER BY l.g"
        )
        assert result.rows == [("a", 2), ("b", 4)]


class TestEmptyInputs:
    def test_everything_over_empty_table(self, db):
        db.execute("CREATE TABLE void (a int, g text)")
        assert db.execute("SELECT count(*) FROM void").scalar() == 0
        assert db.execute("SELECT * FROM void WHERE a > 0").rows == []
        assert db.execute("SELECT g, sum(a) FROM void GROUP BY g").rows == []
        assert (
            db.execute(
                "SELECT * FROM void v JOIN t ON v.g = t.g"
            ).rows
            == []
        )
        assert db.execute("SELECT DISTINCT g FROM void").rows == []
        assert db.execute("SELECT * FROM void ORDER BY a LIMIT 3").rows == []

    def test_left_join_against_empty(self, db):
        db.execute("CREATE TABLE void (g text, x int)")
        result = db.execute(
            "SELECT t.g, v.x FROM t LEFT JOIN void v ON t.g = v.g"
        )
        assert result.rowcount == 4
        assert all(row[1] is None for row in result.rows)

    def test_scalar_subquery_over_empty_is_null(self, db):
        db.execute("CREATE TABLE void (a int)")
        result = db.execute("SELECT (SELECT max(a) FROM void) AS v")
        assert result.rows == [(None,)]
