"""Tests for scalar SQL functions and expression semantics."""

import pytest

from repro.errors import SQLBindError, SQLExecutionError
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database("umbra")
    database.run_script(
        "CREATE TABLE t (x float, s text);"
        "INSERT INTO t VALUES (1.0,'Low'), (2.0,'Medium'), (NULL,'High'), (4.5,NULL)"
    )
    return database


class TestScalarFunctions:
    def test_coalesce_chain(self, db):
        out = db.execute("SELECT coalesce(x, 0.0) AS v FROM t ORDER BY ctid")
        assert out.column("v") == [1.0, 2.0, 0.0, 4.5]

    def test_coalesce_type_widening(self, db):
        out = db.execute("SELECT coalesce(s, 'none') AS v FROM t ORDER BY ctid")
        assert out.column("v")[-1] == "none"

    def test_regexp_replace_anchored(self, db):
        out = db.execute(
            "SELECT regexp_replace(s, '^Medium$', 'Low') AS v FROM t "
            "WHERE s IS NOT NULL ORDER BY ctid"
        )
        assert out.column("v") == ["Low", "Low", "High"]

    def test_regexp_replace_leaves_substrings(self, db):
        db.execute("INSERT INTO t VALUES (9.0, 'MediumWell')")
        out = db.execute(
            "SELECT regexp_replace(s, '^Medium$', 'Low') AS v FROM t "
            "WHERE x = 9.0"
        )
        assert out.column("v") == ["MediumWell"]

    def test_least_greatest(self, db):
        out = db.execute("SELECT least(3, 1, 2) AS lo, greatest(3, 1, 2) AS hi")
        assert out.rows == [(1, 3)]

    def test_least_skips_nulls(self, db):
        assert db.execute("SELECT least(NULL, 5) AS v").scalar() == 5

    def test_floor_ceil_abs_round(self, db):
        out = db.execute(
            "SELECT floor(1.7) AS f, ceil(1.2) AS c, abs(-3) AS a, "
            "round(2.567, 1) AS r"
        )
        assert out.rows == [(1, 2, 3, 2.6)]

    def test_nullif(self, db):
        assert db.execute("SELECT nullif(5, 5) AS v").rows == [(None,)]
        assert db.execute("SELECT nullif(5, 4) AS v").scalar() == 5

    def test_upper_lower_trim_length(self, db):
        out = db.execute(
            "SELECT upper('ab') AS u, lower('AB') AS l, "
            "trim('  x ') AS t, length('abc') AS n"
        )
        assert out.rows == [("AB", "ab", "x", 3)]

    def test_array_fill_concat(self, db):
        out = db.execute("SELECT array_fill(0, 2) || 1 || array_fill(0, 1) AS v")
        assert out.scalar() == [0, 0, 1, 0]

    def test_array_length_and_position(self, db):
        out = db.execute(
            "WITH g AS (SELECT array_agg(ctid) AS ids FROM t) "
            "SELECT array_length(ids) AS n, array_position(ids, 2) AS p FROM g"
        )
        assert out.rows == [(4, 3)]

    def test_sqrt_of_negative_is_null(self, db):
        assert db.execute("SELECT sqrt(-1.0) AS v").rows == [(None,)]

    def test_unknown_function_rejected(self, db):
        with pytest.raises(SQLBindError):
            db.execute("SELECT frobnicate(x) FROM t")


class TestExpressionSemantics:
    def test_division_by_zero_yields_null(self, db):
        assert db.execute("SELECT 1 / 0 AS v").rows == [(None,)]

    def test_cast_text_to_int_rounds(self, db):
        assert db.execute("SELECT '2'::int + 1 AS v").scalar() == 3

    def test_cast_float_to_text(self, db):
        assert db.execute("SELECT 2.5::text AS v").scalar() == "2.5"

    def test_cast_bool(self, db):
        assert db.execute("SELECT 'true'::boolean AS v").scalar() is True

    def test_string_concat_operator(self, db):
        assert db.execute("SELECT 'a' || 'b' AS v").scalar() == "ab"

    def test_three_valued_and(self, db):
        # null AND false = false; null AND true = null
        out = db.execute(
            "SELECT (x > 0 AND s = 'Low') AS v FROM t WHERE s = 'High'"
        )
        assert out.rows == [(False,)]

    def test_three_valued_or(self, db):
        out = db.execute(
            "SELECT (x > 0 OR s = 'zzz') AS v FROM t WHERE s = 'High'"
        )
        assert out.rows == [(None,)]

    def test_not_null_is_null(self, db):
        out = db.execute("SELECT count(*) FROM t WHERE NOT (x > 0)")
        assert out.scalar() == 0  # null rows don't satisfy NOT either

    def test_case_without_else_yields_null(self, db):
        out = db.execute(
            "SELECT (CASE WHEN x > 3 THEN 1 END) AS v FROM t ORDER BY ctid"
        )
        assert out.column("v") == [None, None, None, 1]

    def test_in_list_with_null_operand(self, db):
        out = db.execute("SELECT count(*) FROM t WHERE x IN (1.0, 4.5)")
        assert out.scalar() == 2

    def test_between_inclusive(self, db):
        out = db.execute("SELECT count(*) FROM t WHERE x BETWEEN 1 AND 2")
        assert out.scalar() == 2

    def test_not_between(self, db):
        out = db.execute("SELECT count(*) FROM t WHERE x NOT BETWEEN 1 AND 2")
        assert out.scalar() == 1

    def test_like_patterns(self, db):
        out = db.execute("SELECT count(*) FROM t WHERE s LIKE 'M_dium'")
        assert out.scalar() == 1
        out = db.execute("SELECT count(*) FROM t WHERE s LIKE '%ig%'")
        assert out.scalar() == 1

    def test_not_like(self, db):
        out = db.execute(
            "SELECT count(*) FROM t WHERE s NOT LIKE '%o%' AND s IS NOT NULL"
        )
        assert out.scalar() == 2

    def test_unary_minus(self, db):
        assert db.execute("SELECT -x AS v FROM t WHERE x = 1.0").scalar() == -1

    def test_modulo(self, db):
        assert db.execute("SELECT 7 % 3 AS v").scalar() == 1


class TestAggregateEdgeCases:
    def test_sum_of_empty_is_null(self, db):
        assert db.execute("SELECT sum(x) FROM t WHERE x > 100").rows == [(None,)]

    def test_stddev_samp_single_row_null(self, db):
        out = db.execute("SELECT stddev_samp(x) FROM t WHERE x = 1.0")
        assert out.rows == [(None,)]

    def test_var_pop(self, db):
        out = db.execute("SELECT var_pop(x) FROM t WHERE x IS NOT NULL")
        assert out.scalar() == pytest.approx(2.1666666, rel=1e-5)

    def test_group_by_null_is_a_group(self, db):
        out = db.execute("SELECT s, count(*) FROM t GROUP BY s")
        groups = dict(out.rows)
        assert groups[None] == 1

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(SQLBindError):
            db.execute("SELECT x FROM t WHERE count(*) > 1")

    def test_nested_aggregate_rejected(self, db):
        with pytest.raises(SQLBindError):
            db.execute("SELECT sum(count(*)) FROM t")
