"""WAL-streaming replication: streams, snapshots, lag, promotion,
topology-aware routing, and the synchronous/durability contracts.

Every test runs a real :class:`~repro.sqldb.replication.Primary` and
one or more :class:`~repro.sqldb.replication.Replica` processes-in-
threads on ephemeral loopback ports, connected by the same framed
protocol the query path uses.  The recurring invariants:

* a replica converges to the primary's exact state (same rows) once
  lag drains, whether it bootstrapped from the live stream or from a
  snapshot;
* a replica refuses writes with SQLSTATE 25006 until promoted;
* promotion loses nothing the replica had applied, and the
  multi-endpoint connector's retry loop rides over the failover window
  (57P03) without surfacing an error to the caller;
* ``wal_sync`` policies trade fsyncs for the documented acked-
  durability contract.
"""

import threading
import time

import pytest

from repro.core.connectors import (
    MultiEndpointConnector,
    RemoteConnectionPool,
    RETRYABLE_SQLSTATES,
    Topology,
)
from repro.errors import CannotConnectNow, ReadOnlySQLTransaction
from repro.sqldb import client, dbapi
from repro.sqldb.engine import Database
from repro.sqldb.replication import Primary, Replica, ReplicationManager

pytestmark = [pytest.mark.server, pytest.mark.replication]


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def caught_up(primary, replica):
    """True when *replica* has applied every record-bearing commit the
    primary's manager has streamed (robust where ``replica.lag`` is
    stale: the frame carrying the new watermark may not have landed)."""
    return (
        replica.database.last_applied_commit_id
        >= primary.manager.last_commit_id
    )


def rows_of(database, sql="SELECT a, b FROM t ORDER BY a"):
    return database.execute(sql).rows


@pytest.fixture
def primary():
    node = Primary(host="127.0.0.1", port=0).start()
    yield node
    node.kill()
    node.database.close()


def make_replica(primary, **kwargs):
    return Replica(primary.address, **kwargs).start()


class TestStreaming:
    def test_live_stream_applies_commits(self, primary):
        replica = make_replica(primary, name="r-live")
        try:
            db = primary.database
            db.execute("CREATE TABLE t (a int, b text)")
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            assert wait_until(lambda: caught_up(primary, replica))
            assert rows_of(replica.database) == rows_of(db)
            assert replica.lag == 0
            # txn framing and executemany travel too
            session = db.session()
            db.execute("BEGIN", session=session)
            db.execute("INSERT INTO t VALUES (3, 'z')", session=session)
            db.execute("COMMIT", session=session)
            db.executemany(
                "INSERT INTO t VALUES (?, ?)", [(4, "p"), (5, "q")]
            )
            assert wait_until(lambda: caught_up(primary, replica))
            assert rows_of(replica.database) == rows_of(db)
        finally:
            replica.close()

    def test_snapshot_bootstrap_for_late_replica(self):
        # the database pre-dates the replication manager, so the
        # manager's retained log starts *after* the data: a fresh
        # replica must bootstrap from a snapshot, not the stream
        db = Database("umbra")
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        node = Primary(db, host="127.0.0.1", port=0).start()
        replica = make_replica(node, name="r-late")
        primary = node
        try:
            assert wait_until(lambda: caught_up(primary, replica))
            assert replica.stats["snapshots"] >= 1
            assert rows_of(replica.database) == rows_of(db)
            # and the stream continues past the snapshot
            db.execute("INSERT INTO t VALUES (3, 'z')")
            assert wait_until(lambda: caught_up(primary, replica))
            assert rows_of(replica.database) == rows_of(db)
        finally:
            replica.close()
            node.kill()
            db.close()

    def test_replica_reads_are_snapshot_consistent(self, primary):
        db = primary.database
        db.execute("CREATE TABLE t (a int, b text)")
        replica = make_replica(primary, name="r-read")
        try:
            for i in range(20):
                db.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
            # a replica read never sees a torn commit: the row count is
            # always consistent with some applied prefix
            with client.connect(*replica.address) as conn:
                n = conn.run_script("SELECT count(*) FROM t")[-1].rows[0][0]
            assert 0 <= n <= 20
            assert wait_until(lambda: caught_up(primary, replica))
            assert rows_of(replica.database) == rows_of(db)
        finally:
            replica.close()

    def test_lag_and_status_reporting(self, primary):
        db = primary.database
        db.execute("CREATE TABLE t (a int, b text)")
        replica = make_replica(primary, name="r-status")
        try:
            db.execute("INSERT INTO t VALUES (1, 'x')")
            assert wait_until(lambda: caught_up(primary, replica))
            status = replica.status()
            assert status["role"] == "replica"
            assert status["last_applied"] == primary.manager.last_commit_id
            assert status["lag"] == 0
            # the primary reports its subscriber over the wire
            with client.connect(*primary.address) as conn:
                pstat = conn.replica_status()
            assert pstat["role"] == "primary"
            subs = {s["name"] for s in pstat["subscribers"]}
            assert "r-status" in subs
        finally:
            replica.close()

    def test_replica_rejects_writes_with_25006(self, primary):
        db = primary.database
        db.execute("CREATE TABLE t (a int, b text)")
        replica = make_replica(primary, name="r-ro")
        try:
            assert wait_until(lambda: caught_up(primary, replica))
            with client.connect(*replica.address) as conn:
                with pytest.raises(dbapi.OperationalError) as info:
                    conn.run_script("INSERT INTO t VALUES (9, 'w')")
                assert info.value.sqlstate == "25006"
                assert isinstance(info.value, ReadOnlySQLTransaction)
                # reads still fine on the same connection
                rows = conn.run_script("SELECT count(*) FROM t")[-1].rows
                assert rows == [(0,)]
            assert "25006" in RETRYABLE_SQLSTATES
            assert "57P03" in RETRYABLE_SQLSTATES
        finally:
            replica.close()

    def test_cascading_relay(self, primary):
        """A replica's replica converges (commit hooks re-fire on apply)."""
        db = primary.database
        db.execute("CREATE TABLE t (a int, b text)")
        mid = make_replica(primary, name="r-mid")
        leaf = Replica(mid.address, name="r-leaf").start()
        try:
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            assert wait_until(lambda: caught_up(primary, mid))
            assert wait_until(
                lambda: leaf.database.last_applied_commit_id
                >= mid.database.last_applied_commit_id
            )
            assert rows_of(leaf.database) == rows_of(db)
        finally:
            leaf.close()
            mid.close()


class TestPromotion:
    def test_promote_over_the_wire(self, primary):
        db = primary.database
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        replica = make_replica(primary, name="r-promo")
        try:
            assert wait_until(lambda: caught_up(primary, replica))
            primary.kill()
            with client.connect(*replica.address) as conn:
                out = conn.promote()
                assert out["commit_id"] == replica.database.last_applied_commit_id
                # the promoted node accepts writes on the same connection
                conn.run_script("INSERT INTO t VALUES (2, 'y')")
                rows = conn.run_script("SELECT a FROM t ORDER BY a")[-1].rows
            assert rows == [(1,), (2,)]
            assert replica.status()["role"] == "primary"
        finally:
            replica.close()

    def test_promote_on_primary_is_rejected(self, primary):
        with client.connect(*primary.address) as conn:
            with pytest.raises(dbapi.Error) as info:
                conn.promote()
            assert info.value.sqlstate == "0A000"

    def test_repoint_surviving_replica_to_promoted_node(self, primary):
        db = primary.database
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        r1 = make_replica(primary, name="r-new-primary")
        r2 = make_replica(primary, name="r-survivor")
        try:
            assert wait_until(lambda: caught_up(primary, r1))
            assert wait_until(lambda: caught_up(primary, r2))
            primary.kill()
            with client.connect(*r1.address) as conn:
                conn.promote()
            r2.repoint(r1.address)
            with client.connect(*r1.address) as conn:
                conn.run_script("INSERT INTO t VALUES (2, 'y')")
            # r1's own manager tracks its post-promotion commits
            assert wait_until(
                lambda: r2.database.last_applied_commit_id
                >= r1.manager.last_commit_id
            )
            assert rows_of(r2.database) == rows_of(r1.database)
            assert rows_of(r2.database) == [(1, "x"), (2, "y")]
        finally:
            r1.close()
            r2.close()


class TestSynchronousReplication:
    def test_commit_waits_for_replica_ack(self):
        node = Primary(host="127.0.0.1", port=0, synchronous=True).start()
        replica = make_replica(node, name="r-sync")
        try:
            db = node.database
            db.execute("CREATE TABLE t (a int, b text)")
            db.execute("INSERT INTO t VALUES (1, 'x')")
            # commit returned => the replica already applied it; no wait
            assert (
                replica.database.last_applied_commit_id
                >= node.manager.last_commit_id
            )
            assert rows_of(replica.database) == [(1, "x")]
        finally:
            replica.close()
            node.kill()
            node.database.close()

    def test_sync_commit_unblocks_on_manager_close(self):
        """With no replica attached, closing the manager releases a
        blocked synchronous commit instead of deadlocking shutdown."""
        node = Primary(
            host="127.0.0.1", port=0, synchronous=True, sync_timeout_s=30.0
        ).start()
        done = threading.Event()

        def writer():
            try:
                node.database.execute("CREATE TABLE t (a int)")
            finally:
                done.set()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert not done.wait(0.2)  # blocked: nobody acks
        node.manager.close()
        assert done.wait(5.0)
        thread.join(timeout=5.0)
        node.kill()
        node.database.close()


class TestWalSyncPolicies:
    @pytest.mark.parametrize("policy", ["commit", "group", "off"])
    def test_acked_commits_survive_clean_reopen(self, tmp_path, policy):
        path = tmp_path / f"wal-{policy}.jsonl"
        db = Database("umbra", wal_path=str(path), wal_sync=policy,
                      wal_group_every=3)
        db.execute("CREATE TABLE t (a int)")
        for i in range(7):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.close()
        again = Database("umbra", wal_path=str(path))
        assert again.execute("SELECT count(*) FROM t").scalar() == 7
        again.close()

    def test_group_policy_batches_fsyncs(self, tmp_path):
        grouped = Database(
            "umbra", wal_path=str(tmp_path / "g.jsonl"),
            wal_sync="group", wal_group_every=4,
        )
        every = Database(
            "umbra", wal_path=str(tmp_path / "c.jsonl"), wal_sync="commit"
        )
        for db in (grouped, every):
            db.execute("CREATE TABLE t (a int)")
            for i in range(8):
                db.execute(f"INSERT INTO t VALUES ({i})")
        assert grouped._wal.sync_count < every._wal.sync_count
        grouped.close()
        every.close()

    def test_invalid_policy_rejected(self, tmp_path):
        from repro.errors import DurabilityError

        with pytest.raises(DurabilityError):
            Database("umbra", wal_path=str(tmp_path / "x.jsonl"),
                     wal_sync="sometimes")


class TestDurableReplica:
    def test_crash_restart_resumes_without_snapshot(self, primary, tmp_path):
        db = primary.database
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        wal = str(tmp_path / "replica.jsonl")
        replica = make_replica(
            primary, name="r-durable",
            database_kwargs={"wal_path": wal, "wal_sync": "commit"},
        )
        assert wait_until(lambda: caught_up(primary, replica))
        applied = replica.database.last_applied_commit_id
        replica.close()  # "crash": the node goes away mid-topology
        db.execute("INSERT INTO t VALUES (2, 'y')")
        reborn = make_replica(
            primary, name="r-durable",
            database_kwargs={"wal_path": wal, "wal_sync": "commit"},
        )
        try:
            assert reborn.database.last_applied_commit_id >= applied
            assert wait_until(lambda: caught_up(primary, reborn))
            # resumed from its durable position: no snapshot re-transfer
            assert reborn.stats["snapshots"] == 0
            assert rows_of(reborn.database) == rows_of(db)
        finally:
            reborn.close()


class TestTopologyRouting:
    def test_reads_round_robin_writes_primary(self, primary):
        r1 = make_replica(primary, name="rr-1")
        r2 = make_replica(primary, name="rr-2")
        conn = MultiEndpointConnector(
            [primary.address, r1.address, r2.address], probe_ttl_s=0.2
        )
        try:
            conn.run("CREATE TABLE t (a int, b text)")
            conn.run("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            conn.topology.wait_for_replicas(timeout=10)
            for _ in range(4):
                assert conn.run("SELECT count(*) FROM t").rows == [(2,)]
            assert conn.reads_routed["replica"] == 4
            assert conn.reads_routed["primary"] == 0
            # both replicas served (round robin, not a hot single node)
            served = {
                s["name"]
                for s in primary.manager.subscriber_status()
            }
            assert served == {"rr-1", "rr-2"}
        finally:
            conn.close()
            r1.close()
            r2.close()

    def test_connector_failover_bounded_by_backoff(self, primary):
        r1 = make_replica(primary, name="fo-1")
        conn = MultiEndpointConnector(
            [primary.address, r1.address], probe_ttl_s=0.1
        )
        try:
            conn.run("CREATE TABLE t (a int, b text)")
            conn.run("INSERT INTO t VALUES (1, 'x')")
            conn.topology.wait_for_replicas(timeout=10)
            primary.kill()

            def promote_soon():
                time.sleep(0.15)
                with client.connect(*r1.address) as admin:
                    admin.promote()

            threading.Thread(target=promote_soon, daemon=True).start()
            started = time.monotonic()
            conn.run("INSERT INTO t VALUES (2, 'y')")  # rides the window
            elapsed = time.monotonic() - started
            assert conn.retries > 0
            assert elapsed < 10.0
            assert conn.run("SELECT a FROM t ORDER BY a").rows == [
                (1,), (2,),
            ]
        finally:
            conn.close()
            r1.close()

    def test_no_primary_raises_57p03(self, primary):
        r1 = make_replica(primary, name="np-1")
        try:
            assert wait_until(lambda: caught_up(primary, r1))
            primary.kill()
            topo = Topology([r1.address], probe_ttl_s=0.0)
            with pytest.raises(CannotConnectNow) as info:
                topo.primary_endpoint()
            assert info.value.sqlstate == "57P03"
            # reads still routable
            assert topo.next_replica_endpoint() == r1.address
        finally:
            r1.close()

    def test_remote_pool_replaces_dead_connections(self, primary):
        r1 = make_replica(primary, name="pool-1")
        topo = Topology([primary.address, r1.address], probe_ttl_s=0.2)
        pool = RemoteConnectionPool(topo, size=2, prefer="replica")
        try:
            primary.database.execute("CREATE TABLE t (a int)")
            primary.database.execute("INSERT INTO t VALUES (1)")
            assert wait_until(lambda: caught_up(primary, r1))
            def read_count():
                with pool.connection() as conn:
                    return conn.run_script("SELECT count(*) FROM t")[-1].rows

            assert read_count() == [(1,)]
            # kill the server under the idle pooled connection; the
            # next checkout may hand out the not-yet-detected corpse
            # once, after which the pool replaces it and re-routes to
            # the primary (the only live endpoint)
            r1.server.shutdown(drain_s=0.0)
            topo.invalidate()
            try:
                rows = read_count()
            except dbapi.Error:
                rows = read_count()
            assert rows == [(1,)]
        finally:
            pool.close()
            r1.close()


class TestManagerEdges:
    def test_subscribe_after_close_raises_57p03(self):
        db = Database("umbra")
        manager = ReplicationManager(db)
        manager.close()
        with pytest.raises(CannotConnectNow):
            manager.subscribe("late", start_after=0)
        db.close()

    def test_retention_horizon_forces_snapshot_resync(self, primary):
        # a tiny retained log: a subscriber that falls behind its
        # horizon is told to resync rather than silently skipping
        db = Database("umbra")
        manager = ReplicationManager(db, retain=2)
        db.execute("CREATE TABLE t (a int)")
        sub = manager.subscribe("slow", start_after=0)
        for i in range(6):
            db.execute(f"INSERT INTO t VALUES ({i})")
        from repro.errors import ProtocolViolation

        with pytest.raises(ProtocolViolation):
            manager.next_batch(sub, timeout=0.1)
        manager.close()
        db.close()
