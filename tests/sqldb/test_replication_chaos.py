"""Network-chaos property tests for WAL-streaming replication.

Each round drives a primary/replica pair (or a failover trio) through a
:class:`~repro.sqldb.netfaults.FaultProxy` armed with a seeded
:class:`~repro.sqldb.faults.NetworkFaultInjector` — dropped frames,
back-to-back duplicates, torn frames, delivery delays, partitions, link
resets, and replica crash-restarts — while a write workload runs.  Two
properties must hold in every round, under every seed:

* **no acknowledged commit is ever lost**: every value whose INSERT
  returned successfully to the client is present on the primary and,
  once lag drains, on the replica (and after a failover, on the
  promoted node);
* **a replica is always a prefix of its primary**: applied commit ids
  advance in order without gaps, so after convergence the replica's
  rows are byte-identical to the primary's.

Rounds are budgeted for tier-1 by default; chaos CI passes
``--fault-rounds 200`` (or more) for the long soak the acceptance
criteria call for.
"""

import random
import threading
import time

import pytest

from repro.core.connectors import MultiEndpointConnector
from repro.sqldb import client, dbapi
from repro.sqldb.engine import Database
from repro.sqldb.faults import NetworkFaultInjector
from repro.sqldb.netfaults import FaultProxy
from repro.sqldb.replication import Primary, Replica

pytestmark = [pytest.mark.server, pytest.mark.replication, pytest.mark.faults]

#: rounds per property when --fault-rounds is not given (tier-1 budget)
DEFAULT_ROUNDS = 5


@pytest.fixture
def fault_rounds(request):
    return request.config.getoption("--fault-rounds") or DEFAULT_ROUNDS


def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def table_rows(database):
    return database.execute("SELECT a, b FROM t ORDER BY a").rows


class TestStreamChaos:
    def test_stream_converges_under_faults(self, fault_rounds, tmp_path):
        """Random frame faults + partitions + crash-restarts; the
        replica always converges to the primary's exact rows and every
        acknowledged value survives."""
        for round_no in range(fault_rounds):
            rng = random.Random(0xC4A0 + round_no)
            faults = NetworkFaultInjector(
                seed=rng.randrange(1 << 30),
                drop=rng.uniform(0.0, 0.08),
                duplicate=rng.uniform(0.0, 0.08),
                tear=rng.uniform(0.0, 0.04),
                delay=rng.uniform(0.0, 0.3),
                delay_range_s=(0.0005, 0.005),
            )
            primary = Primary(
                host="127.0.0.1", port=0,
                server_kwargs={
                    # tight keepalives so dropped frames and partitions
                    # are detected within the round's time budget
                    "replication_heartbeat_s": 0.1,
                    "replication_ack_timeout_s": 2.0,
                },
            ).start()
            proxy = FaultProxy(primary.address, faults=faults).start()
            wal = str(tmp_path / f"replica-{round_no}.jsonl")
            replica_kwargs = dict(
                name=f"chaos-{round_no}",
                database_kwargs={"wal_path": wal, "wal_sync": "commit"},
                recv_timeout_s=0.5,
                connect_timeout_s=1.0,
            )
            replica = Replica(proxy.address, **replica_kwargs).start()
            db = primary.database
            acked = []
            try:
                db.execute("CREATE TABLE t (a int, b text)")
                n_commits = rng.randint(15, 40)
                partition_at = (
                    rng.randrange(n_commits) if rng.random() < 0.5 else None
                )
                reset_at = (
                    rng.randrange(n_commits) if rng.random() < 0.4 else None
                )
                crash_at = (
                    rng.randrange(n_commits) if rng.random() < 0.3 else None
                )
                for i in range(n_commits):
                    if i == partition_at:
                        faults.partition()
                    if i == reset_at:
                        proxy.kill_links()
                    if i == crash_at:
                        # crash-restart the replica mid-replay: durable
                        # WAL means it resumes from its applied prefix
                        replica.close()
                        replica = Replica(
                            proxy.address, **replica_kwargs
                        ).start()
                    shape = rng.random()
                    if shape < 0.2:
                        session = db.session()
                        db.execute("BEGIN", session=session)
                        db.execute(
                            f"INSERT INTO t VALUES ({i}, 'txn')",
                            session=session,
                        )
                        db.execute("COMMIT", session=session)
                        acked.append((i, "txn"))
                    elif shape < 0.35:
                        db.executemany(
                            "INSERT INTO t VALUES (?, ?)",
                            [(i, "m0"), (i, "m1")],
                        )
                        acked.extend([(i, "m0"), (i, "m1")])
                    else:
                        db.execute(f"INSERT INTO t VALUES ({i}, 'auto')")
                        acked.append((i, "auto"))
                    if faults.partitioned and rng.random() < 0.5:
                        faults.heal()
                faults.heal()
                assert wait_until(
                    lambda: replica.database.last_applied_commit_id
                    >= primary.manager.last_commit_id
                ), (
                    f"round {round_no}: replica stuck at "
                    f"{replica.database.last_applied_commit_id} / "
                    f"{primary.manager.last_commit_id} "
                    f"(faults {faults.stats}, replica {replica.stats})"
                )
                primary_rows = table_rows(db)
                replica_rows = table_rows(replica.database)
                assert replica_rows == primary_rows, (
                    f"round {round_no}: replica diverged "
                    f"(faults {faults.stats})"
                )
                assert sorted(acked) == sorted(primary_rows)
                # prefix property: the replica never applied past the
                # primary, and its applied watermark is gap-free by
                # construction (apply_replicated_commit enforces order)
                assert (
                    replica.database.last_applied_commit_id
                    <= primary.manager.last_commit_id
                )
            finally:
                replica.close()
                proxy.close()
                primary.kill()
                primary.database.close()

    def test_torn_query_frames_never_misparse(self):
        """Query connections through a tearing proxy either complete or
        fail with a clean connection error — never a wrong result."""
        primary = Primary(host="127.0.0.1", port=0).start()
        faults = NetworkFaultInjector(seed=11, tear=0.15, drop=0.05)
        proxy = FaultProxy(primary.address, faults=faults).start()
        db = primary.database
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        ok = errors = 0
        try:
            for _ in range(40):
                try:
                    conn = client.connect(
                        *proxy.address, connect_timeout=1.0
                    )
                    rows = conn.run_script(
                        "SELECT a FROM t ORDER BY a"
                    )[-1].rows
                    assert rows == [(1,), (2,)]
                    ok += 1
                    conn.close()
                except (dbapi.Error, OSError):
                    errors += 1
            assert ok > 0  # some queries survive the chaos
            assert faults.stats["torn"] + faults.stats["dropped"] > 0
        finally:
            proxy.close()
            primary.kill()
            primary.database.close()


class TestFailoverChaos:
    def test_no_acked_commit_lost_across_failover(self, fault_rounds):
        """Synchronous primary + two replicas; the primary is killed
        mid-workload and the most-caught-up replica promoted.  Every
        write the client saw acknowledged must be on the promoted node;
        the repointed survivor converges to the same rows."""
        for round_no in range(fault_rounds):
            rng = random.Random(0xFA11 + round_no)
            primary = Primary(
                host="127.0.0.1", port=0, synchronous=True
            ).start()
            r1 = Replica(
                primary.address, name=f"fo-a-{round_no}",
                recv_timeout_s=0.5,
            ).start()
            r2 = Replica(
                primary.address, name=f"fo-b-{round_no}",
                recv_timeout_s=0.5,
            ).start()
            endpoints = [primary.address, r1.address, r2.address]
            conn = MultiEndpointConnector(
                endpoints, probe_ttl_s=0.05, attempts=10, max_delay=0.2
            )
            acked = []
            kill_after = rng.randint(3, 12)
            try:
                conn.run("CREATE TABLE t (a int, b text)")
                for i in range(kill_after):
                    conn.run(f"INSERT INTO t VALUES ({i}, 'pre')")
                    acked.append((i, "pre"))

                def promote_most_caught_up():
                    time.sleep(rng.uniform(0.01, 0.1))
                    target = max(
                        (r1, r2),
                        key=lambda r: r.database.last_applied_commit_id,
                    )
                    other = r2 if target is r1 else r1
                    with client.connect(*target.address) as admin:
                        admin.promote()
                    other.repoint(target.address)
                    state["target"], state["other"] = target, other

                state = {}
                primary.kill()
                flipper = threading.Thread(
                    target=promote_most_caught_up, daemon=True
                )
                flipper.start()
                # writes issued into the failover window ride 57P03
                # retries until the promoted node answers
                for i in range(kill_after, kill_after + 5):
                    conn.run(f"INSERT INTO t VALUES ({i}, 'post')")
                    acked.append((i, "post"))
                flipper.join(timeout=10.0)
                target, other = state["target"], state["other"]
                new_primary_rows = table_rows(target.database)
                # no acked commit lost: acked ⊆ new primary (the node
                # may additionally hold commits whose acks were severed
                # mid-flight by the crash — durable-but-unacked is fine)
                assert set(acked) <= set(new_primary_rows), (
                    f"round {round_no}: lost "
                    f"{set(acked) - set(new_primary_rows)}"
                )
                assert wait_until(
                    lambda: other.database.last_applied_commit_id
                    >= target.manager.last_commit_id
                )
                assert table_rows(other.database) == new_primary_rows
            finally:
                conn.close()
                r1.close()
                r2.close()
                primary.kill()
                primary.database.close()

    def test_failover_time_is_bounded(self):
        """Client-visible downtime ≈ promotion delay + one backoff step,
        far under the retry budget's worst case."""
        primary = Primary(host="127.0.0.1", port=0).start()
        replica = Replica(primary.address, name="ttr").start()
        conn = MultiEndpointConnector(
            [primary.address, replica.address],
            probe_ttl_s=0.05, attempts=12, base_delay=0.01, max_delay=0.1,
        )
        try:
            conn.run("CREATE TABLE t (a int, b text)")
            conn.run("INSERT INTO t VALUES (0, 'seed')")
            conn.topology.wait_for_replicas(timeout=10)
            primary.kill()

            def promote_soon():
                time.sleep(0.1)
                with client.connect(*replica.address) as admin:
                    admin.promote()

            threading.Thread(target=promote_soon, daemon=True).start()
            started = time.monotonic()
            conn.run("INSERT INTO t VALUES (1, 'post')")
            downtime = time.monotonic() - started
            assert downtime < 5.0
            assert conn.run("SELECT count(*) FROM t").rows == [(2,)]
        finally:
            conn.close()
            replica.close()
            primary.kill()
            primary.database.close()
