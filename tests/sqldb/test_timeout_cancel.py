"""Statement timeouts and cooperative cancellation."""

import csv
import threading
import time

import pytest

from repro.errors import QueryCancelled, SQLExecutionError
from repro.sqldb import dbapi
from repro.sqldb.engine import TIMEOUT_ENV, Database, resolve_timeout_ms
from repro.sqldb.parser import parse_statement
from repro.sqldb.executor import execute_plan


class TestResolveTimeout:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "9999")
        assert resolve_timeout_ms(150) == 150.0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "2500")
        assert resolve_timeout_ms(None) == 2500.0

    def test_unset_means_no_timeout(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        assert resolve_timeout_ms(None) is None

    def test_non_positive_disables(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        assert resolve_timeout_ms(0) is None
        assert resolve_timeout_ms(-5) is None
        monkeypatch.setenv(TIMEOUT_ENV, "0")
        assert resolve_timeout_ms(None) is None

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "soon")
        with pytest.raises(SQLExecutionError):
            resolve_timeout_ms(None)


class TestStatementTimeout:
    def test_expired_deadline_cancels_select(self):
        db = Database("umbra", statement_timeout_ms=0.0001)
        db.execute("CREATE TABLE t (a int)")  # writes are not affected
        db.execute("INSERT INTO t (a) VALUES (1)")
        with pytest.raises(QueryCancelled) as info:
            db.execute("SELECT * FROM t")
        assert info.value.sqlstate == "57014"

    def test_generous_timeout_does_not_fire(self):
        db = Database("umbra", statement_timeout_ms=60000)
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        assert db.execute("SELECT a FROM t").column("a") == [1]

    def test_timeout_through_dbapi_maps_to_operational_error(self):
        conn = dbapi.connect("umbra", statement_timeout_ms=0.0001)
        cursor = conn.cursor()
        cursor.execute("CREATE TABLE t (a int)")
        with pytest.raises(dbapi.OperationalError):
            cursor.execute("SELECT * FROM t")
        with pytest.raises(QueryCancelled):  # both hierarchies hold
            cursor.execute("SELECT * FROM t")

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "0.0001")
        db = Database("umbra")
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(QueryCancelled):
            db.execute("SELECT * FROM t")


class TestCancellation:
    def test_preset_cancel_event_stops_execution(self):
        db = Database("umbra")
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        event = threading.Event()
        event.set()
        plan = db._plan_select(parse_statement("SELECT * FROM t"))
        ctx = db._make_context((), cancel_event=event)
        with pytest.raises(QueryCancelled):
            execute_plan(plan, ctx)

    def test_cancel_with_no_inflight_statement_is_noop(self):
        db = Database("umbra")
        db.cancel()
        db.execute("CREATE TABLE t (a int)")
        # a later statement is NOT affected by an earlier cancel()
        assert db.execute("SELECT count(*) FROM t").scalar() == 0

    def test_cancel_inflight_statement(self, tmp_path):
        """cancel() from another thread stops a running query at a
        morsel boundary."""
        path = tmp_path / "big.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["a", "b"])
            for i in range(200_000):
                writer.writerow([i % 977, i % 31])
        db = Database("umbra", workers=2, morsel_size=512)
        db.execute("CREATE TABLE t (a int, b int)")
        db.execute(f"COPY t FROM '{path}' WITH (FORMAT CSV, HEADER TRUE)")

        outcome = {}

        def run_query():
            try:
                outcome["result"] = db.execute(
                    "SELECT a, sum(b) FROM t WHERE a % 3 = 0 GROUP BY a"
                )
            except QueryCancelled:
                outcome["cancelled"] = True

        thread = threading.Thread(target=run_query)
        thread.start()
        # wait for the statement to register its cancel event, then fire
        deadline = time.monotonic() + 10.0
        while not db._active_cancels and time.monotonic() < deadline:
            pass
        db.cancel()
        thread.join(timeout=30)
        assert not thread.is_alive()
        # the query either observed the cancel at a morsel/operator
        # boundary, or had already produced its result — never hangs,
        # never errors with anything else
        assert outcome.keys() <= {"cancelled", "result"} and outcome
        db.close()
