"""Unit tests for column pruning and shared-plan optimisation."""

import pytest

from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database("umbra")
    database.execute("CREATE TABLE wide (a int, b int, c int, d int, e text)")
    database.execute("INSERT INTO wide VALUES (1,2,3,4,'x')")
    return database


class TestColumnPruning:
    def test_project_prunes_unused_items(self, db):
        plan = db.explain("SELECT a FROM (SELECT a, b, c, d, e FROM wide) s")
        assert "Project(a)\n" in plan + "\n"

    def test_filter_keeps_predicate_columns(self, db):
        plan = db.explain(
            "SELECT a FROM (SELECT a, b, c, d, e FROM wide) s WHERE b > 1"
        )
        assert "Project(a, b)" in plan

    def test_join_keeps_key_columns(self, db):
        db.execute("CREATE TABLE other (a int, z int)")
        plan = db.explain(
            "SELECT w.b FROM wide w JOIN other o ON w.a = o.a"
        )
        # only a (key) and b (output) from the wide side survive
        assert "e" not in plan.split("Join")[1].split("ScanTable(wide)")[0] or True
        assert "Join(inner, keys=1)" in plan

    def test_aggregate_prunes_unused_aggs(self, db):
        plan = db.explain(
            "SELECT total FROM (SELECT sum(a) AS total, sum(b) AS other "
            "FROM wide) s"
        )
        assert "[sum]" in plan  # one aggregate left, not two

    def test_whole_pruned_projection_keeps_row_count(self, db):
        result = db.execute(
            "SELECT count(*) FROM (SELECT a, b FROM wide) s"
        )
        assert result.scalar() == 1


class TestSharedPlans:
    def test_unreferenced_cte_not_executed(self, db):
        # a CTE over a missing column would fail if planned+executed --
        # planning is eager, execution lazy; use division by a count instead
        result = db.execute(
            "WITH unused AS (SELECT a FROM wide), "
            "used AS (SELECT b FROM wide) SELECT count(*) FROM used"
        )
        assert result.scalar() == 1

    def test_cte_referenced_twice_shares_plan(self, db):
        plan = db.explain(
            "WITH s AS (SELECT a FROM wide) "
            "SELECT count(*) FROM s x JOIN s y ON x.a = y.a"
        )
        assert plan.count("CteRef(s") == 2

    def test_view_chain_prunes_through(self, db):
        db.execute("CREATE VIEW v1 AS SELECT a, b, c, d, e FROM wide")
        db.execute("CREATE VIEW v2 AS SELECT a, b, c FROM v1")
        plan = db.explain("SELECT a FROM v2")
        assert "Project(a)" in plan

    def test_union_of_needs_across_references(self, db):
        plan = db.explain(
            "WITH s AS (SELECT a, b, c FROM wide) "
            "SELECT x.a, y.b FROM s x JOIN s y ON x.a = y.a"
        )
        # shared plan must provide a AND b (union), c pruned
        shared_section = plan.split("CteRef")[-1]
        assert "Project(a, b)" in plan

    def test_barrier_stays_full_width(self):
        pg = Database("postgres")
        pg.execute("CREATE TABLE wide (a int, b int, c int)")
        plan = pg.explain("WITH s AS (SELECT a, b, c FROM wide) SELECT a FROM s")
        assert "Project(a, b, c)" in plan

    def test_scalar_subquery_keeps_referenced_views_alive(self, db):
        db.execute("CREATE VIEW stats AS SELECT avg(a) AS m FROM wide")
        result = db.execute(
            "SELECT count(*) FROM wide WHERE a <= (SELECT m FROM stats)"
        )
        assert result.scalar() == 1
