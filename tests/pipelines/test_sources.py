"""Tests for the pipeline source builders (Table 1 operation inventory)."""

import pytest

from repro.datasets import generate_adult, generate_compas, generate_healthcare
from repro.errors import ReproError
from repro.pipelines import (
    PIPELINE_BUILDERS,
    adult_complex_source,
    adult_simple_source,
    compas_source,
    healthcare_source,
)

#: Table 1 of the paper: the operations each pipeline must exercise
TABLE_1 = {
    "healthcare": [
        "read_csv", "merge", "groupby", "agg", "isin",
        "SimpleImputer", "StandardScaler",
    ],
    "compas": [
        "read_csv", "replace", "label_binarize", "SimpleImputer",
        "OneHotEncoder", "KBinsDiscretizer",
    ],
    "adult_simple": ["read_csv", "dropna", "label_binarize", "StandardScaler"],
    "adult_complex": [
        "read_csv", "label_binarize", "SimpleImputer", "OneHotEncoder",
        "StandardScaler",
    ],
}


class TestTable1Operations:
    @pytest.mark.parametrize("pipeline", list(TABLE_1))
    def test_operations_present(self, pipeline):
        source = PIPELINE_BUILDERS[pipeline]("/data", upto="full")
        for operation in TABLE_1[pipeline]:
            assert operation in source, f"{pipeline} misses {operation}"

    def test_stage_truncation_is_prefix(self):
        pandas_part = healthcare_source("/d", upto="pandas")
        sklearn_part = healthcare_source("/d", upto="sklearn")
        full = healthcare_source("/d", upto="full")
        assert sklearn_part.startswith(pandas_part)
        assert full.startswith(sklearn_part)

    def test_invalid_stage_rejected(self):
        with pytest.raises(ReproError):
            healthcare_source("/d", upto="everything")

    def test_sources_compile(self):
        for name, builder in PIPELINE_BUILDERS.items():
            for stage in ("pandas", "full"):
                compile(builder("/data", upto=stage), f"<{name}>", "exec")


class TestPipelinesRun:
    """Every pipeline stage must execute unpatched (plain Python)."""

    @pytest.fixture(scope="class")
    def data_dir(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("pipe"))
        generate_healthcare(directory, 150, seed=0)
        generate_compas(directory, 200, 80, seed=0)
        generate_adult(directory, 250, 80, seed=0)
        return directory

    @pytest.mark.parametrize("pipeline", list(TABLE_1))
    @pytest.mark.parametrize("stage", ["pandas", "sklearn", "full"])
    def test_runs_plain(self, data_dir, pipeline, stage):
        source = PIPELINE_BUILDERS[pipeline](data_dir, upto=stage)
        namespace: dict = {"__name__": "__main__"}
        exec(compile(source, f"<{pipeline}>", "exec"), namespace)
        if stage == "full":
            assert 0.0 <= namespace["score"] <= 1.0
