"""SQL backend: graceful fallback paths and §5.1.8 row-wise operations."""

import os

import pytest

from repro.core.connectors import UmbraConnector
from repro.inspection import PipelineInspector



def _w(path, text):
    with open(path, "w") as handle:
        handle.write(text)

def _sql_run(source):
    return PipelineInspector.on_pipeline_from_string(
        source, "<test>"
    ).execute_in_sql(dbms_connector=UmbraConnector(), mode="CTE")


@pytest.fixture
def indexed_csvs(tmp_path):
    """Two files with the pandas row-number layout (§5.1.8 requirement)."""
    a = tmp_path / "tb1.csv"
    a.write_text("colA\n0,a1\n1,a2\n2,a3\n")
    b = tmp_path / "tb2.csv"
    b.write_text("colB\n0,10\n1,20\n2,30\n")
    return str(a), str(b)


class TestRowWiseOperations:
    def test_cross_table_assignment(self, indexed_csvs):
        a, b = indexed_csvs
        source = f"""
import repro.frame as pd

tb1 = pd.read_csv({a!r})
tb2 = pd.read_csv({b!r})
tb1['new_column'] = tb2['colB']
"""
        result = _sql_run(source)
        backend = result.extras["backend"]
        real = backend.materialize_object(
            result.extras["pipeline_globals"]["tb1"]
        )
        assert real["new_column"].tolist() == [10, 20, 30]

    def test_generated_sql_joins_on_index(self, indexed_csvs):
        a, b = indexed_csvs
        source = f"""
import repro.frame as pd

tb1 = pd.read_csv({a!r})
tb2 = pd.read_csv({b!r})
tb1['new_column'] = tb2['colB']
"""
        sql = _sql_run(source).sql_source
        assert 'ON tb1."index_" = tb2."index_"' in sql

    def test_missing_index_column_raises(self, tmp_path):
        a = str(tmp_path / "x.csv")
        _w(a, "colA\na1\na2\n")  # no row-number column
        b = str(tmp_path / "y.csv")
        _w(b, "colB\n1\n2\n")
        source = f"""
import repro.frame as pd

tb1 = pd.read_csv({a!r})
tb2 = pd.read_csv({b!r})
tb1['new_column'] = tb2['colB']
"""
        from repro.errors import TranslationError

        with pytest.raises(TranslationError):
            _sql_run(source)


class TestFallbacks:
    def test_plain_dataframe_falls_back_to_python(self):
        source = """
from repro.frame import DataFrame

data = DataFrame({'a': [3, 1, 2]})
data['b'] = data['a'] * 10
out = data[data['b'] > 10]
"""
        result = _sql_run(source)
        out = result.extras["pipeline_globals"]["out"]
        assert out["b"].tolist() == [30, 20]
        # nothing was transpiled: the container stays empty
        assert result.extras["container"].blocks == []

    def test_median_imputer_untranslatable_raises(self, tmp_path):
        path = str(tmp_path / "n.csv")
        _w(path, "v\n1\n\n3\n")
        source = f"""
import repro.frame as pd
from repro.learn import SimpleImputer

data = pd.read_csv({path!r})
out = SimpleImputer(strategy='median').fit_transform(data[['v']])
"""
        from repro.errors import TranslationError

        with pytest.raises(TranslationError):
            _sql_run(source)

    def test_mixed_pipeline_sql_then_python(self, tmp_path):
        """The extraction boundary: SQL before fit, Python after."""
        path = str(tmp_path / "d.csv")
        _w(path, 
            "x,label\n" + "".join(f"{i % 10},{i % 2}\n" for i in range(200))
        )
        source = f"""
import repro.frame as pd
from repro.learn import LogisticRegression

data = pd.read_csv({path!r})
data = data[data['x'] > 0]
model = LogisticRegression()
model.fit(data[['x']], data['label'])
training_accuracy = model.score(data[['x']], data['label'])
"""
        result = _sql_run(source)
        accuracy = result.extras["pipeline_globals"]["training_accuracy"]
        assert 0.0 <= accuracy <= 1.0
        # the selection was transpiled...
        assert any(
            b.name.startswith("block_") for b in result.extras["container"].blocks
        )
        # ...and the extraction queries were issued at the fit boundary
        assert result.extras["backend"]._did_extract

    def test_scalar_assignment_translated(self, tmp_path):
        path = str(tmp_path / "d.csv")
        _w(path, "x\n1\n2\n")
        source = f"""
import repro.frame as pd

data = pd.read_csv({path!r})
data['constant'] = 7
"""
        result = _sql_run(source)
        assert "AS \"constant\"" in result.sql_source
        backend = result.extras["backend"]
        real = backend.materialize_object(
            result.extras["pipeline_globals"]["data"]
        )
        assert real["constant"].tolist() == [7, 7]

    def test_series_replace_expression(self, tmp_path):
        path = str(tmp_path / "d.csv")
        _w(path, "s\nMedium\nHigh\n")
        source = f"""
import repro.frame as pd

data = pd.read_csv({path!r})
data['s'] = data['s'].replace('Medium', 'Low')
"""
        result = _sql_run(source)
        assert "REGEXP_REPLACE" in result.sql_source
        backend = result.extras["backend"]
        real = backend.materialize_object(
            result.extras["pipeline_globals"]["data"]
        )
        assert real["s"].tolist() == ["Low", "High"]

    def test_inverted_mask_selection(self, tmp_path):
        path = str(tmp_path / "d.csv")
        _w(path, "x\n1\n2\n3\n")
        source = f"""
import repro.frame as pd

data = pd.read_csv({path!r})
out = data[~(data['x'] > 1)]
"""
        result = _sql_run(source)
        backend = result.extras["backend"]
        real = backend.materialize_object(result.extras["pipeline_globals"]["out"])
        assert real["x"].tolist() == [1]
