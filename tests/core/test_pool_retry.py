"""Client-side concurrency plumbing: retry_backoff and ConnectionPool.

Covers the retry loop's SQLSTATE policy and backoff arithmetic, the
pool's blocking/timeout semantics, and the checkout-validation bugfix:
a pooled connection abandoned mid-transaction (or whose session died)
must never be handed to the next caller as-is.
"""

import threading

import pytest

from repro.core.connectors import (
    ConnectionPool,
    RETRYABLE_SQLSTATES,
    UmbraConnector,
    is_retryable,
    retry_backoff,
)
from repro.errors import (
    DeadlockDetected,
    QueryCancelled,
    SerializationFailure,
    SQLExecutionError,
    TooManyConnections,
)
from repro.sqldb import dbapi
from repro.sqldb.engine import Database


class FixedRandom:
    """rng stub whose random() always returns 0.5 → jitter factor 1.0."""

    def random(self):
        return 0.5


class TestRetryBackoff:
    def test_retryable_sqlstates(self):
        # 53300 joined the set with the network server: an admission-shed
        # connection should simply be retried under backoff.  25006/57P03
        # joined with replication: a write landing on a replica or in a
        # failover window is retried against the (re-probed) primary.
        # 53200/53400 joined with the memory governor: a grant shed under
        # pool pressure or a budget overrun clears once peers finish.
        assert RETRYABLE_SQLSTATES == {
            "40001", "40P01", "57014", "53300", "25006", "57P03",
            "53200", "53400",
        }
        assert is_retryable(SerializationFailure("serialize"))
        assert is_retryable(DeadlockDetected("deadlock"))
        assert is_retryable(QueryCancelled("cancelled"))
        assert is_retryable(TooManyConnections("shed at accept"))
        assert not is_retryable(SQLExecutionError("div by zero"))
        assert not is_retryable(ValueError("not SQL at all"))

    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise SerializationFailure("lost the race")
            return "done"

        out = retry_backoff(
            flaky, attempts=5, base_delay=0.0, rng=FixedRandom()
        )
        assert out == "done"
        assert calls["n"] == 3

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise SQLExecutionError("real bug")

        with pytest.raises(SQLExecutionError):
            retry_backoff(broken, attempts=5, base_delay=0.0)
        assert calls["n"] == 1

    def test_last_attempt_failure_propagates(self):
        calls = {"n": 0}

        def always_loses():
            calls["n"] += 1
            raise DeadlockDetected("victim again")

        with pytest.raises(DeadlockDetected):
            retry_backoff(
                always_loses, attempts=3, base_delay=0.0, rng=FixedRandom()
            )
        assert calls["n"] == 3

    def test_on_retry_hook_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise SerializationFailure("again")
            return "ok"

        retry_backoff(
            flaky,
            attempts=5,
            base_delay=0.0,
            on_retry=lambda i, exc: seen.append((i, exc.sqlstate)),
        )
        assert seen == [(0, "40001"), (1, "40001")]

    def test_backoff_doubles_and_caps(self, monkeypatch):
        delays = []
        monkeypatch.setattr(
            "repro.core.connectors.time.sleep", delays.append
        )

        def always_loses():
            raise SerializationFailure("lost")

        with pytest.raises(SerializationFailure):
            retry_backoff(
                always_loses,
                attempts=5,
                base_delay=0.01,
                max_delay=0.04,
                rng=FixedRandom(),
            )
        # 4 sleeps (no sleep after the final attempt), doubling then capped
        assert delays == pytest.approx([0.01, 0.02, 0.04, 0.04])

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            retry_backoff(lambda: None, attempts=0)


@pytest.fixture
def db():
    database = Database("umbra")
    database.execute("CREATE TABLE t (a int)")
    yield database
    database.close()


class TestConnectionPool:
    def test_connections_are_distinct_sessions(self, db):
        pool = ConnectionPool(db, size=2)
        a, b = pool.acquire(), pool.acquire()
        assert a.session is not b.session
        assert a.database is db and b.database is db
        pool.release(a)
        pool.release(b)
        pool.close()

    def test_released_connection_is_reused(self, db):
        pool = ConnectionPool(db, size=2)
        conn = pool.acquire()
        pool.release(conn)
        assert pool.acquire() is conn
        pool.close()

    def test_exhausted_pool_times_out(self, db):
        pool = ConnectionPool(db, size=1, timeout=0.2)
        conn = pool.acquire()
        with pytest.raises(dbapi.OperationalError):
            pool.acquire()
        pool.release(conn)
        pool.close()

    def test_waiter_wakes_on_release(self, db):
        pool = ConnectionPool(db, size=1, timeout=5.0)
        conn = pool.acquire()
        got = []

        def waiter():
            with pool.connection() as c:
                got.append(c)

        thread = threading.Thread(target=waiter)
        thread.start()
        pool.release(conn)
        thread.join(timeout=10)
        assert got == [conn]
        pool.close()

    def test_abandoned_transaction_is_reset_on_checkout(self, db):
        # the bugfix: a holder that opened a transaction and bailed must
        # not poison the next checkout with its open txn (stale snapshot,
        # held locks, possibly 25P02-aborted state)
        pool = ConnectionPool(db, size=1)
        conn = pool.acquire()
        conn.begin()
        conn.cursor().execute("INSERT INTO t (a) VALUES (1)")
        pool.release(conn)  # abandoned mid-transaction

        again = pool.acquire()
        assert again is conn
        assert not again.in_transaction
        assert pool.stats["abandoned_txns_reset"] == 1
        # the abandoned insert was rolled back, and the fresh holder can
        # write without tripping over the old transaction's lock
        cur = again.cursor().execute("SELECT count(*) FROM t")
        assert cur.fetchone() == (0,)
        again.cursor().execute("INSERT INTO t (a) VALUES (2)")
        pool.release(again)
        pool.close()

    def test_dead_session_is_replaced_on_checkout(self, db):
        pool = ConnectionPool(db, size=1)
        conn = pool.acquire()
        pool.release(conn)
        conn.close()  # session dies while the connection sits in the pool

        replacement = pool.acquire()
        assert replacement is not conn
        assert not replacement.closed
        assert pool.stats["dead_sessions_replaced"] == 1
        replacement.cursor().execute("INSERT INTO t (a) VALUES (3)")
        pool.release(replacement)
        pool.close()

    def test_closed_pool_rejects_checkout_and_closes_idle(self, db):
        pool = ConnectionPool(db, size=2)
        conn = pool.acquire()
        pool.release(conn)
        pool.close()
        assert conn.closed
        with pytest.raises(dbapi.InterfaceError):
            pool.acquire()
        # releasing after close closes the straggler instead of pooling it
        late = dbapi.connect(database=db)
        pool.release(late)
        assert late.closed

    def test_pool_size_must_be_positive(self, db):
        with pytest.raises(ValueError):
            ConnectionPool(db, size=0)

    def test_acquire_racing_close_raises_clean_interface_error(self, db):
        # the bugfix: close() landing while acquire() is creating a
        # connection *outside the pool lock* must yield a clean
        # InterfaceError — not a live session handed out of a closed
        # pool, and not a leaked session either
        pool = ConnectionPool(db, size=1)
        creating = threading.Event()
        proceed = threading.Event()
        real_connect = dbapi.connect

        def stalled_connect(*args, **kwargs):
            creating.set()
            assert proceed.wait(timeout=10)
            return real_connect(*args, **kwargs)

        outcome = {}

        def checkout():
            try:
                outcome["conn"] = pool.acquire()
            except dbapi.InterfaceError as exc:
                outcome["error"] = str(exc)

        dbapi.connect = stalled_connect
        try:
            thread = threading.Thread(target=checkout)
            thread.start()
            assert creating.wait(timeout=10)  # acquire is mid-creation
            pool.close()
            proceed.set()
            thread.join(timeout=10)
        finally:
            dbapi.connect = real_connect
        assert not thread.is_alive()
        assert "error" in outcome and "closed" in outcome["error"]
        # the half-created session was closed, not leaked, and the slot
        # was handed back
        assert len(db._sessions) == 1  # only the engine's default session
        assert pool._n_created == 0

    def test_failed_creation_returns_the_slot(self, db):
        # a connect() that blows up mid-checkout must give the capacity
        # back: the pool would otherwise leak slots until exhaustion
        pool = ConnectionPool(db, size=1, timeout=0.5)
        real_connect = dbapi.connect
        state = {"fail": True}

        def flaky_connect(*args, **kwargs):
            if state["fail"]:
                state["fail"] = False
                raise RuntimeError("transient failure talking to engine")
            return real_connect(*args, **kwargs)

        dbapi.connect = flaky_connect
        try:
            with pytest.raises(RuntimeError):
                pool.acquire()
            assert pool._n_created == 0
            conn = pool.acquire()  # the slot is still usable
            conn.cursor().execute("INSERT INTO t (a) VALUES (1)")
            pool.release(conn)
        finally:
            dbapi.connect = real_connect
        pool.close()


class TestConnectorRetry:
    def test_run_retries_serialization_failure(self):
        connector = UmbraConnector()
        connector.run("CREATE TABLE t (a int)")
        db = connector.connection.database

        # a peer session commits a write *between* this session's BEGIN
        # and COMMIT so the scripted transaction loses first-committer-
        # wins exactly once, then succeeds on the retry
        peer = db.session()
        state = {"conflicts": 0}
        original_begin = db._begin

        def begin_with_conflict(session):
            original_begin(session)
            if state["conflicts"] < 1:
                state["conflicts"] += 1
                peer.execute("INSERT INTO t (a) VALUES (99)")

        db._begin = begin_with_conflict
        try:
            connector.run(
                "BEGIN; INSERT INTO t (a) VALUES (1); COMMIT;"
            )
        finally:
            db._begin = original_begin
        assert connector.retries == 1
        rows = connector.query_rows("SELECT a FROM t ORDER BY a")
        assert rows == [(1,), (99,)]

    def test_run_does_not_retry_inside_explicit_transaction(self):
        connector = UmbraConnector()
        connector.run("CREATE TABLE t (a int)")
        db = connector.connection.database
        connector.run("BEGIN")

        peer = db.session()
        peer.execute("INSERT INTO t (a) VALUES (99)")

        connector.run("INSERT INTO t (a) VALUES (1)")
        with pytest.raises(SerializationFailure):
            connector.run("COMMIT")
        assert connector.retries == 0

    def test_pool_helper_shares_the_connector_database(self):
        connector = UmbraConnector()
        connector.run("CREATE TABLE t (a int)")
        pool = connector.pool(size=2)
        with pool.connection() as conn:
            conn.cursor().execute("INSERT INTO t (a) VALUES (7)")
        assert connector.query_rows("SELECT a FROM t") == [(7,)]
        pool.close()
