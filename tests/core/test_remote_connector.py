"""RemoteConnector: the DBConnector surface over the network client.

The connector is the drop-in point for every harness and benchmark, so
these tests exercise exactly the methods SQLBackend and the harnesses
use — run/query_rows/reset/plan_cache_stats/exec_stats — against a live
server, plus the retry and re-dial behaviour the in-process connectors
already guarantee."""

import threading
import time

import pytest

from repro.core.connectors import RemoteConnector
from repro.errors import CatalogError
from repro.sqldb import dbapi
from repro.sqldb.engine import Database
from repro.sqldb.server import DatabaseServer

pytestmark = pytest.mark.server


@pytest.fixture
def served():
    db = Database("umbra")
    server = DatabaseServer(db).start()
    yield server, db
    server.shutdown(drain_s=2.0)
    db.close()


@pytest.fixture
def connector(served):
    server, _ = served
    remote = RemoteConnector(host="127.0.0.1", port=server.port)
    yield remote
    remote.close()


class TestRemoteConnector:
    def test_run_and_query_rows(self, connector):
        connector.run("CREATE TABLE t (a int, b text)")
        connector.run("INSERT INTO t (a, b) VALUES (%s, %s)", (1, "x"))
        connector.run("INSERT INTO t (a, b) VALUES (2, 'y')")
        assert connector.query_rows("SELECT a, b FROM t ORDER BY a") == [
            (1, "x"),
            (2, "y"),
        ]
        result = connector.run("SELECT count(*) FROM t")
        assert result.scalar() == 2
        # timings were recorded per statement, like every connector
        assert len(connector.statement_timings) == 4

    def test_reset_drops_data_but_keeps_plan_cache_warm(
        self, served, connector
    ):
        _, db = served
        connector.run("CREATE TABLE t (a int)")
        connector.run("INSERT INTO t (a) VALUES (1)")
        connector.reset()
        # the relation is gone server-side...
        with pytest.raises(CatalogError):
            connector.run("SELECT * FROM t")
        # ...and replaying the identical history re-hits the plan cache,
        # exactly like the in-process reconnect-based reset
        before = connector.plan_cache_stats["hits"]
        connector.run("CREATE TABLE t (a int)")
        connector.run("INSERT INTO t (a) VALUES (1)")
        assert connector.query_rows("SELECT a FROM t") == [(1,)]
        assert connector.plan_cache_stats["hits"] > before

    def test_run_retries_serialization_failure(self, served, connector):
        server, db = served
        connector.run("CREATE TABLE t (a int)")

        # same shape as the in-process connector test: a peer commits
        # between this script's BEGIN and COMMIT exactly once, so the
        # transaction loses first-committer-wins, is rolled back by the
        # retry hook, and succeeds on the second attempt
        peer = db.session()
        state = {"conflicts": 0}
        original_begin = db._begin

        def begin_with_conflict(session):
            original_begin(session)
            if state["conflicts"] < 1:
                state["conflicts"] += 1
                peer.execute("INSERT INTO t (a) VALUES (99)")

        db._begin = begin_with_conflict
        try:
            connector.run("BEGIN; INSERT INTO t (a) VALUES (1); COMMIT;")
        finally:
            db._begin = original_begin
            peer.close()
        assert connector.retries == 1
        assert connector.query_rows("SELECT a FROM t ORDER BY a") == [
            (1,),
            (99,),
        ]

    def test_no_retry_inside_explicit_transaction(self, served, connector):
        from repro.errors import SerializationFailure

        server, db = served
        connector.run("CREATE TABLE t (a int)")
        connector.run("BEGIN")
        peer = db.session()
        peer.execute("INSERT INTO t (a) VALUES (99)")
        peer.close()
        connector.run("INSERT INTO t (a) VALUES (1)")
        with pytest.raises(SerializationFailure):
            connector.run("COMMIT")
        assert connector.retries == 0
        # the failed COMMIT already ended the transaction server-side
        assert not connector.connection.in_transaction

    def test_dead_connection_is_redialled(self, connector):
        connector.run("CREATE TABLE t (a int)")
        first = connector.connection
        first.close()
        # next use transparently opens a fresh connection (new session)
        assert connector.query_rows("SELECT count(*) FROM t") == [(0,)]
        assert connector.connection is not first

    def test_exec_stats_and_explain_come_from_the_server(
        self, served, connector
    ):
        server, db = served
        connector.run("CREATE TABLE t (a int)")
        connector.run("INSERT INTO t (a) VALUES (1), (2), (3)")
        plan = connector.explain_analyze("SELECT count(*) FROM t")
        assert plan.strip()
        names = connector.analyze()
        assert "t" in names
        stats = connector.plan_cache_stats
        assert set(stats) >= {"hits", "misses"}

    def test_pool_is_not_supported(self, connector):
        with pytest.raises(dbapi.NotSupportedError):
            connector.pool()

    def test_cursor_error_state_through_remote_connection(self, connector):
        connector.run("CREATE TABLE t (a int)")
        connector.run("INSERT INTO t (a) VALUES (4)")
        cursor = connector.connection.cursor()
        assert cursor.execute("SELECT a FROM t").fetchall() == [(4,)]
        with pytest.raises(dbapi.ProgrammingError):
            cursor.execute("SELECT nope FROM t")
        with pytest.raises(dbapi.InterfaceError):
            cursor.fetchall()

    def test_parallel_connectors_multiplex_one_server(self, served):
        server, db = served
        setup = RemoteConnector(host="127.0.0.1", port=server.port)
        setup.run("CREATE TABLE t (a int)")
        results = {}

        def worker(i):
            remote = RemoteConnector(host="127.0.0.1", port=server.port)
            try:
                remote.run("INSERT INTO t (a) VALUES (%s)", (i,))
                results[i] = remote.run(
                    "SELECT count(*) FROM t"
                ).scalar()
            finally:
                remote.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert sorted(results) == [0, 1, 2, 3]
        assert setup.run("SELECT count(*) FROM t").scalar() == 4
        setup.close()
