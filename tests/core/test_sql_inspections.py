"""SQL-side implementations of RowLineage and MaterializeFirstOutputRows."""

import pytest

from repro.core.connectors import PostgresqlConnector
from repro.inspection import (
    MaterializeFirstOutputRows,
    PipelineInspector,
    RowLineage,
)


def _w(path, text):
    with open(path, "w") as handle:
        handle.write(text)


@pytest.fixture
def source(tmp_path):
    path = str(tmp_path / "d.csv")
    _w(path, "a,g\n1,x\n2,x\n3,y\n4,y\n")
    return f"""
import repro.frame as pd

data = pd.read_csv({path!r})
kept = data[data['a'] > 1]
"""


def _run(source, inspection):
    return (
        PipelineInspector.on_pipeline_from_string(source, "<t>")
        .add_required_inspection(inspection)
        .execute_in_sql(dbms_connector=PostgresqlConnector(), mode="VIEW")
    )


class TestMaterializeFirstOutputRowsInSql:
    def test_rows_from_database(self, source):
        inspection = MaterializeFirstOutputRows(2)
        result = _run(source, inspection)
        per_node = result.histograms_for(inspection)
        materialised = [rows for rows in per_node.values() if rows]
        assert materialised[0] == [(1, "x"), (2, "x")]
        # the selection's first rows reflect the filtered data
        assert materialised[-1][0][0] == 2

    def test_limit_respected(self, source):
        inspection = MaterializeFirstOutputRows(3)
        result = _run(source, inspection)
        for rows in result.histograms_for(inspection).values():
            if rows:
                assert len(rows) <= 3


class TestRowLineageInSql:
    def test_ctids_reported(self, source):
        inspection = RowLineage(4)
        result = _run(source, inspection)
        per_node = result.histograms_for(inspection)
        with_lineage = [rows for rows in per_node.values() if rows]
        assert with_lineage, "no lineage recorded"
        # after the selection the surviving rows map to source rows 1..3
        final = with_lineage[-1]
        ids = [list(row["lineage"].values())[0] for row in final]
        assert ids == [1, 2, 3]

    def test_lineage_column_names_are_ctid_names(self, source):
        inspection = RowLineage(1)
        result = _run(source, inspection)
        rows = [r for r in result.histograms_for(inspection).values() if r]
        key = list(rows[-1][0]["lineage"].keys())[0]
        assert key.endswith("_ctid")
