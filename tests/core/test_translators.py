"""Unit tests for the pandas/sklearn SQL translation rules (§5)."""

import pytest

from repro.core.table_info import SeriesExpr, TableInfo
from repro.core.translators import pandas_ops, sklearn_ops
from repro.errors import TranslationError


@pytest.fixture
def info():
    return TableInfo(
        "block_a",
        ["k", "v", "label"],
        {"k": "TEXT", "v": "DOUBLE PRECISION", "label": "TEXT"},
        {"t1_ctid": False},
        {"v"},
    )


class TestLiterals:
    def test_string_escaped(self):
        assert pandas_ops.sql_literal("it's") == "'it''s'"

    def test_none_is_null(self):
        assert pandas_ops.sql_literal(None) == "NULL"

    def test_bool(self):
        assert pandas_ops.sql_literal(True) == "TRUE"

    def test_number(self):
        assert pandas_ops.sql_literal(1.5) == "1.5"


class TestProjection:
    def test_keeps_ctids(self, info):
        body, out = pandas_ops.translate_projection(info, ["v"], "block_b")
        assert '"v"' in body
        assert '"t1_ctid"' in body
        assert out.columns == ["v"]
        assert out.ctids == {"t1_ctid": False}

    def test_unknown_column_rejected(self, info):
        with pytest.raises(TranslationError):
            pandas_ops.translate_projection(info, ["nope"], "b")


class TestSelection:
    def test_where_clause(self, info):
        condition = SeriesExpr(info, '("v" > 1)', sql_type="BOOLEAN")
        body, out = pandas_ops.translate_selection(info, condition, "block_b")
        assert 'WHERE ("v" > 1)' in body
        assert out.columns == info.columns

    def test_foreign_condition_rejected(self, info):
        other = TableInfo("other", ["x"], {"x": "INT"})
        condition = SeriesExpr(other, '"x" > 1')
        with pytest.raises(TranslationError):
            pandas_ops.translate_selection(info, condition, "b")


class TestMerge:
    @pytest.fixture
    def right(self):
        return TableInfo(
            "block_r",
            ["k", "w"],
            {"k": "TEXT", "w": "INT"},
            {"t2_ctid": False},
        )

    def test_inner_join_sql(self, info, right):
        body, out = pandas_ops.translate_merge(
            info, right, ["k"], "inner", ("_x", "_y"), "block_j"
        )
        assert "INNER JOIN" in body
        assert 'tb1."k" = tb2."k"' in body
        assert out.columns == ["k", "v", "label", "w"]
        assert set(out.ctids) == {"t1_ctid", "t2_ctid"}

    def test_null_safe_clause_for_nullable_key(self, info, right):
        info.nullable.add("k")
        body, _ = pandas_ops.translate_merge(
            info, right, ["k"], "inner", ("_x", "_y"), "block_j"
        )
        assert 'tb1."k" IS NULL AND tb2."k" IS NULL' in body

    def test_collision_suffixes(self, info, right):
        right.columns.append("v")
        right.column_types["v"] = "INT"
        _, out = pandas_ops.translate_merge(
            info, right, ["k"], "inner", ("_x", "_y"), "block_j"
        )
        assert "v_x" in out.columns
        assert "v_y" in out.columns

    def test_ctid_collision_left_wins(self, info):
        right = TableInfo(
            "block_r", ["k"], {"k": "TEXT"}, {"t1_ctid": True}
        )
        _, out = pandas_ops.translate_merge(
            info, right, ["k"], "inner", ("_x", "_y"), "block_j"
        )
        assert out.ctids == {"t1_ctid": False}

    def test_unsupported_how(self, info, right):
        with pytest.raises(TranslationError):
            pandas_ops.translate_merge(
                info, right, ["k"], "anti", ("_x", "_y"), "b"
            )


class TestGroupByAgg:
    def test_array_aggs_ctids(self, info):
        body, out = pandas_ops.translate_groupby_agg(
            info, ["k"], [("m", "v", "mean")], "block_g"
        )
        assert 'array_agg("t1_ctid") AS "t1_ctid"' in body
        assert 'AVG("v") AS "m"' in body
        assert out.ctids == {"t1_ctid": True}
        assert out.columns == ["k", "m"]

    def test_std_maps_to_sample_stddev(self, info):
        body, _ = pandas_ops.translate_groupby_agg(
            info, ["k"], [("s", "v", "std")], "b"
        )
        assert "STDDEV_SAMP" in body

    def test_unknown_aggregation(self, info):
        with pytest.raises(TranslationError):
            pandas_ops.translate_groupby_agg(
                info, ["k"], [("x", "v", "mode")], "b"
            )


class TestDropnaReplace:
    def test_dropna_conjunction(self, info):
        body, out = pandas_ops.translate_dropna(info, "b")
        assert '"k" IS NOT NULL AND "v" IS NOT NULL' in body
        assert out.nullable == set()

    def test_replace_only_text_columns(self, info):
        body, _ = pandas_ops.translate_replace(info, "Medium", "Low", "b")
        assert "REGEXP_REPLACE" in body
        assert "'^Medium$'" in body
        # the numeric column passes through untouched
        assert 'REGEXP_REPLACE("v"' not in body


class TestSetitem:
    def test_new_column_appended(self, info):
        expr = SeriesExpr(info, '("v" * 2)', sql_type="DOUBLE PRECISION")
        body, out = pandas_ops.translate_setitem(info, "double", expr, "b")
        assert '("v" * 2) AS "double"' in body
        assert out.columns[-1] == "double"

    def test_existing_column_replaced_once(self, info):
        expr = SeriesExpr(info, "('x')", sql_type="TEXT")
        body, out = pandas_ops.translate_setitem(info, "label", expr, "b")
        assert out.columns.count("label") == 1


class TestSklearnTranslations:
    def test_imputer_most_frequent_fit(self, info):
        body = sklearn_ops.fit_imputer(info, "label", "most_frequent", None)
        assert "ORDER BY cnt DESC" in body
        assert "LIMIT 1" in body

    def test_imputer_constant_needs_no_view(self, info):
        assert sklearn_ops.fit_imputer(info, "v", "constant", 0) is None

    def test_imputer_median_untranslatable(self, info):
        with pytest.raises(TranslationError):
            sklearn_ops.fit_imputer(info, "v", "median", None)

    def test_imputer_expression_coalesce(self):
        expr = sklearn_ops.imputer_expression("v", "fit_v", "mean", None)
        assert expr.startswith('COALESCE("v"')

    def test_onehot_fit_self_join_rank(self, info):
        body = sklearn_ops.fit_onehot(info, "label")
        assert "b.value <= a.value" in body
        assert "count(DISTINCT" in body

    def test_onehot_expression_array_fill(self):
        expr = sklearn_ops.onehot_expression("fit_l", "f0")
        assert "array_fill(0, f0.rank - 1) || 1" in expr

    def test_scaler_listing17(self, info):
        body = sklearn_ops.fit_scaler(info, "v")
        assert "STDDEV_POP" in body
        expr = sklearn_ops.scaler_expression("v", "fit_v")
        assert "NULLIF" in expr  # constant column maps to scale 1

    def test_kbins_listing18(self, info):
        expr = sklearn_ops.kbins_expression("v", "fit_v", 4)
        assert "LEAST(GREATEST(FLOOR(" in expr
        assert ", 3)" in expr  # clamped to n_bins - 1

    def test_binarize_strict_greater(self):
        expr = sklearn_ops.binarize_expression('"v"', 50)
        assert '("v") > 50.0' in expr

    def test_label_binarize_positive_class(self):
        expr = sklearn_ops.label_binarize_expression(
            '"score_text"', ["High", "Low"]
        )
        assert "= 'Low'" in expr

    def test_label_binarize_multiclass_rejected(self):
        with pytest.raises(TranslationError):
            sklearn_ops.label_binarize_expression('"x"', ["a", "b", "c"])
