"""Integration tests for the SQL backend: transpilation + offloading."""

import numpy as np
import pytest

from repro.core.connectors import PostgresqlConnector, UmbraConnector
from repro.inspection import (
    HistogramForColumns,
    NoBiasIntroducedFor,
    PipelineInspector,
)
from repro.pipelines import (
    adult_simple_source,
    compas_source,
    healthcare_source,
)


def _sql_run(source, mode="CTE", materialize=False, checks=(), connector=None):
    inspector = PipelineInspector.on_pipeline_from_string(source, "<test>")
    for check in checks:
        inspector = inspector.add_check(check)
    return inspector.execute_in_sql(
        dbms_connector=connector or UmbraConnector(),
        mode=mode,
        materialize=materialize,
    )


def _py_run(source, checks=()):
    inspector = PipelineInspector.on_pipeline_from_string(source, "<test>")
    for check in checks:
        inspector = inspector.add_check(check)
    return inspector.execute()


class TestGeneratedSql:
    def test_ddl_and_ctid_exposure(self, data_dir):
        source = healthcare_source(data_dir, upto="pandas")
        result = _sql_run(source)
        sql = result.sql_source
        assert "CREATE TABLE patients_" in sql
        assert "COPY patients_" in sql
        assert "ctid AS \"patients_" in sql  # first CTE exposes the ctid

    def test_one_cte_per_line(self, data_dir):
        source = healthcare_source(data_dir, upto="pandas")
        result = _sql_run(source, mode="CTE")
        container = result.extras["container"]
        # two ctid CTEs + merge + groupby + merge + setitem + projection +
        # selection = 8 table expressions
        assert len(container.blocks) == 8
        names = [b.name for b in container.blocks]
        assert all(
            n.startswith(("patients_", "histories_", "block_mlinid"))
            for n in names
        )

    def test_view_mode_creates_views(self, data_dir):
        source = healthcare_source(data_dir, upto="pandas")
        connector = UmbraConnector()
        result = _sql_run(source, mode="VIEW", connector=connector)
        views = connector.connection.database.catalog.view_names
        assert any(name.startswith("block_mlinid") for name in views)
        assert "CREATE VIEW" in result.sql_source

    def test_materialize_creates_materialized_views(self, data_dir):
        source = healthcare_source(data_dir, upto="pandas")
        result = _sql_run(source, mode="VIEW", materialize=True)
        assert "CREATE MATERIALIZED VIEW" in result.sql_source

    def test_generated_script_is_reexecutable(self, data_dir):
        """The emitted SQL (without execution) must run on a fresh engine."""
        from repro.sqldb import Database

        source = healthcare_source(data_dir, upto="pandas")
        sql = PipelineInspector.on_pipeline_from_string(source, "<t>").to_sql(
            mode="CTE"
        )
        db = Database("umbra")
        results = db.run_script(sql)
        assert results[-1].rowcount > 0

    def test_cte_mode_always_executable_midway(self, data_dir):
        """The container can wrap a query after any prefix (§4)."""
        source = healthcare_source(data_dir, upto="pandas")
        connector = UmbraConnector()
        result = _sql_run(source, mode="CTE", connector=connector)
        container = result.extras["container"]
        for block in container.blocks:
            out = container.run_query(
                f"SELECT count(*) FROM {block.name}", upto=block.name
            )
            assert out.scalar() >= 0


class TestPythonSqlEquivalence:
    @pytest.mark.parametrize("mode", ["CTE", "VIEW"])
    @pytest.mark.parametrize("profile", ["postgres", "umbra"])
    def test_healthcare_histograms_identical(self, data_dir, mode, profile):
        source = healthcare_source(data_dir, upto="pandas")
        checks = [NoBiasIntroducedFor(["race", "age_group"])]
        connector = (
            PostgresqlConnector() if profile == "postgres" else UmbraConnector()
        )
        py = _py_run(source, checks)
        sql = _sql_run(source, mode=mode, checks=checks, connector=connector)
        inspection = HistogramForColumns(["race", "age_group"])
        py_hist = {
            (n.lineno, n.operator_type.name): v
            for n, v in py.histograms_for(inspection).items()
            if v
        }
        sql_hist = {
            (n.lineno, n.operator_type.name): v
            for n, v in sql.histograms_for(inspection).items()
            if v
        }
        assert set(sql_hist) <= set(py_hist)
        assert len(sql_hist) >= 7
        for key, histograms in sql_hist.items():
            assert histograms == py_hist[key], key

    def test_check_verdicts_agree(self, data_dir):
        source = healthcare_source(data_dir, upto="pandas")
        checks = [NoBiasIntroducedFor(["race", "age_group"], threshold=0.25)]
        py = _py_run(source, checks)
        sql = _sql_run(source, checks=checks)
        py_status = next(iter(py.check_to_check_results.values())).status
        sql_status = next(iter(sql.check_to_check_results.values())).status
        assert py_status == sql_status

    @pytest.mark.parametrize(
        "builder", [healthcare_source, compas_source, adult_simple_source]
    )
    def test_end_to_end_scores_bit_identical(self, data_dir, builder):
        source = builder(data_dir, upto="full")
        py_score = _py_run(source).extras["pipeline_globals"]["score"]
        sql_score = _sql_run(source).extras["pipeline_globals"]["score"]
        assert py_score == pytest.approx(sql_score, abs=1e-12)

    def test_features_numerically_identical(self, data_dir):
        source = healthcare_source(data_dir, upto="sklearn")
        py = _py_run(source)
        sql = _sql_run(source)
        py_features = np.asarray(
            py.extras["pipeline_globals"]["features"], dtype=float
        )
        backend = sql.extras["backend"]
        sql_features = backend.materialize_object(
            sql.extras["pipeline_globals"]["features"]
        )
        assert sql_features.shape == py_features.shape
        assert np.allclose(sql_features, py_features)


class TestExtractionBoundary:
    def test_estimator_fit_materializes_real_data(self, data_dir):
        source = adult_simple_source(data_dir, upto="full")
        result = _sql_run(source)
        model = result.extras["pipeline_globals"]["model"]
        # the model must have been trained on full-size data, not the
        # 10-row schema sample
        assert model._root is not None

    def test_sample_rows_bounds_dummies(self, data_dir):
        source = healthcare_source(data_dir, upto="pandas")
        result = _sql_run(source)
        data = result.extras["pipeline_globals"]["data"]
        assert len(data) <= 10  # dummy object: the sample, not the data

    def test_fallback_to_python_for_untracked_frames(self):
        source = """
from repro.frame import DataFrame

data = DataFrame({'a': [1, 2, 3]})
out = data[data['a'] > 1]
"""
        result = _sql_run(source)
        out = result.extras["pipeline_globals"]["out"]
        assert out["a"].tolist() == [2, 3]  # full python fallback result


class TestInspectionInSql:
    def test_histogram_restores_removed_column(self, data_dir):
        source = healthcare_source(data_dir, upto="pandas")
        checks = [NoBiasIntroducedFor(["age_group"])]
        result = _sql_run(source, checks=checks)
        inspection = HistogramForColumns(["age_group"])
        histograms = result.histograms_for(inspection)
        last = [n for n, v in histograms.items() if v]
        # age_group was projected away before the final selection but the
        # ctid join restores it (Listing 5 lines 31-33)
        final = max(last, key=lambda n: n.node_id)
        assert "age_group" in histograms[final]

    def test_histogram_after_groupby_unnests(self, data_dir):
        source = """
import repro.frame as pd

data = pd.read_csv({path!r}, na_values='?')
agg = data.groupby('age_group').agg(m=('income', 'mean'))
""".format(path=f"{data_dir}/patients.csv")
        checks = [NoBiasIntroducedFor(["race"])]
        py = _py_run(source, checks)
        sql = _sql_run(source, checks=checks)
        inspection = HistogramForColumns(["race"])
        py_last = list(py.histograms_for(inspection).values())[-1]
        sql_last = list(sql.histograms_for(inspection).values())[-1]
        assert py_last == sql_last
        assert sum(py_last["race"].values()) > 4  # more tuples than groups

    def test_issued_inspection_queries_logged(self, data_dir):
        source = healthcare_source(data_dir, upto="pandas")
        result = _sql_run(
            source, checks=[NoBiasIntroducedFor(["race"])]
        )
        queries = result.extras["container"].issued_queries
        assert any("GROUP BY" in q for q in queries)
