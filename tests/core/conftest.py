"""Shared fixtures for SQL-backend tests."""

import pytest

from repro.datasets import generate_adult, generate_compas, generate_healthcare
from repro.pipelines import (
    adult_simple_source,
    compas_source,
    healthcare_source,
)


@pytest.fixture(scope="session")
def data_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("data"))
    generate_healthcare(directory, n_patients=150, seed=0)
    generate_compas(directory, n_train=200, n_test=80, seed=0)
    generate_adult(directory, n_train=250, n_test=80, seed=0)
    return directory
