"""Tests for in-database inference (the §7 outlook extension)."""

import numpy as np
import pytest

from repro.core.model_export import (
    accuracy_query,
    decision_tree_to_sql,
    linear_model_to_sql,
    model_to_sql,
)
from repro.errors import TranslationError
from repro.learn import (
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    SGDClassifier,
)
from repro.sqldb import Database


@pytest.fixture
def features():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 3))
    y = ((0.8 * X[:, 0] - 0.5 * X[:, 1] + 0.3 * X[:, 2]) > 0.1).astype(float)
    return X, y


def _load_features(X, y):
    db = Database("umbra")
    db.execute("CREATE TABLE features (f0 float, f1 float, f2 float, label int)")
    rows = ", ".join(
        f"({float(x[0])!r}, {float(x[1])!r}, {float(x[2])!r}, {int(label)})"
        for x, label in zip(X, y)
    )
    db.execute(f"INSERT INTO features VALUES {rows}")
    return db


class TestLinearExport:
    def test_sql_predictions_match_python(self, features):
        X, y = features
        model = LogisticRegression().fit(X, y)
        db = _load_features(X, y)
        expr = linear_model_to_sql(model, ["f0", "f1", "f2"])
        rows = db.execute(
            f"SELECT {expr} AS p FROM features ORDER BY ctid"
        ).column("p")
        assert rows == model.predict(X).tolist()

    def test_sgd_export(self, features):
        X, y = features
        model = SGDClassifier(random_state=0).fit(X, y)
        db = _load_features(X, y)
        expr = linear_model_to_sql(model, ["f0", "f1", "f2"])
        rows = db.execute(
            f"SELECT {expr} AS p FROM features ORDER BY ctid"
        ).column("p")
        assert rows == model.predict(X).tolist()

    def test_unfitted_rejected(self):
        with pytest.raises(TranslationError):
            linear_model_to_sql(LogisticRegression(), ["a"])

    def test_arity_mismatch_rejected(self, features):
        X, y = features
        model = LogisticRegression().fit(X, y)
        with pytest.raises(TranslationError):
            linear_model_to_sql(model, ["only_one"])


class TestTreeExport:
    def test_sql_predictions_match_python(self, features):
        X, y = features
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        db = _load_features(X, y)
        expr = decision_tree_to_sql(model, ["f0", "f1", "f2"])
        rows = db.execute(
            f"SELECT {expr} AS p FROM features ORDER BY ctid"
        ).column("p")
        assert rows == model.predict(X).tolist()

    def test_nested_case_structure(self, features):
        X, y = features
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        expr = decision_tree_to_sql(model, ["f0", "f1", "f2"])
        assert expr.count("CASE WHEN") >= 1
        assert expr.count("CASE") == expr.count("END")


class TestAccuracyInDatabase:
    def test_accuracy_matches_python_score(self, features):
        X, y = features
        model = LogisticRegression().fit(X, y)
        db = _load_features(X, y)
        query = accuracy_query(model, "features", ["f0", "f1", "f2"], "label")
        in_db = db.execute(query).scalar()
        assert in_db == pytest.approx(model.score(X, y))

    def test_works_over_view(self, features):
        X, y = features
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        db = _load_features(X, y)
        db.execute(
            "CREATE VIEW test_set AS SELECT * FROM features WHERE ctid >= 200"
        )
        query = accuracy_query(model, "test_set", ["f0", "f1", "f2"], "label")
        in_db = db.execute(query).scalar()
        assert in_db == pytest.approx(model.score(X[200:], y[200:]))

    def test_dispatch_rejects_mlp(self):
        with pytest.raises(TranslationError):
            model_to_sql(MLPClassifier(), ["a"])
