"""Unit tests for SQLQueryContainer, connectors, naming, csv sniffing."""

import pytest

from repro.core.connectors import (
    PostgresqlConnector,
    ProfileConnector,
    UmbraConnector,
)
from repro.core.csv_schema import sniff_csv
from repro.core.naming import NameGenerator, quote_identifier
from repro.core.query_container import SQLQueryContainer
from repro.errors import TranslationError
from repro.sqldb.profile import UMBRA


@pytest.fixture
def connector():
    conn = UmbraConnector()
    conn.run("CREATE TABLE t (a int)")
    conn.run("INSERT INTO t VALUES (1), (2), (3)")
    return conn


class TestNaming:
    def test_quote_identifier(self):
        assert quote_identifier("income-per-year") == '"income-per-year"'

    def test_quote_escapes_quotes(self):
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_sequential_op_ids(self):
        names = NameGenerator()
        assert [names.next_op_id() for _ in range(3)] == [0, 1, 2]

    def test_table_name_shape(self):
        names = NameGenerator()
        assert names.table_name("patients", 51, 0) == "patients_51_mlinid0"

    def test_block_name_shape(self):
        names = NameGenerator()
        assert names.block_name(13, 66) == "block_mlinid13_66"

    def test_ctid_column(self):
        assert NameGenerator.ctid_column("patients_51_mlinid0") == (
            "patients_51_mlinid0_ctid"
        )

    def test_hostile_file_name_sanitised(self):
        names = NameGenerator()
        assert names.table_name("my data (v2)", 1, 0) == "my_data_v2_1_mlinid0"


class TestCsvSniffing:
    def test_types_and_nullability(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a,b,c\n1,2.5,hello\n2,?,world\n")
        schema = sniff_csv(str(path), na_values="?")
        by_name = {c.name: c for c in schema.columns}
        assert by_name["a"].sql_type == "INT"
        assert by_name["b"].sql_type == "DOUBLE PRECISION"
        assert by_name["b"].nullable
        assert by_name["c"].sql_type == "TEXT"
        assert schema.n_rows == 2

    def test_index_column_detected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a\n0,7\n1,8\n")
        schema = sniff_csv(str(path))
        assert schema.has_index_column
        assert schema.names == ["index_", "a"]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("")
        with pytest.raises(TranslationError):
            sniff_csv(str(path))


class TestConnectors:
    def test_profiles(self):
        assert PostgresqlConnector().name == "postgres"
        assert UmbraConnector().name == "umbra"

    def test_custom_profile(self):
        conn = ProfileConnector(UMBRA)
        assert conn.name == "umbra"
        assert conn.run("SELECT 1 AS x").scalar() == 1

    def test_reset_clears_state(self, connector):
        connector.reset()
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            connector.run("SELECT * FROM t")

    def test_query_rows(self, connector):
        rows = connector.query_rows("SELECT a FROM t ORDER BY a")
        assert rows == [(1,), (2,), (3,)]

    def test_statement_timings_recorded(self, connector):
        connector.run("SELECT count(*) FROM t")
        heads = [head for head, _ in connector.statement_timings]
        assert any("SELECT count(*)" in head for head in heads)

    def test_run_with_params(self, connector):
        assert connector.run("SELECT a FROM t WHERE a = ?", (2,)).rows == [(2,)]
        assert connector.query_rows("SELECT a FROM t WHERE a > %s", (1,)) == [
            (2,),
            (3,),
        ]


class TestPlanCacheAcrossResets:
    def _replay(self, connector):
        connector.run("CREATE TABLE t (a int)")
        connector.run("INSERT INTO t VALUES (1), (2), (3)")
        return connector.run("SELECT sum(a) FROM t").scalar()

    def test_cache_survives_reset_and_hits_on_replay(self):
        connector = UmbraConnector()
        assert self._replay(connector) == 6
        connector.reset()
        assert self._replay(connector) == 6
        stats = connector.plan_cache_stats
        assert stats["hits"] >= 3  # the whole replayed script is cached

    def test_divergent_schema_never_serves_stale_plans(self):
        connector = UmbraConnector()
        connector.run("CREATE TABLE t (a int, b text)")
        connector.run("INSERT INTO t VALUES (1, 'x')")
        assert connector.run("SELECT * FROM t").columns == ["a", "b"]
        connector.reset()
        # same number of schema changes, different shape: the cached
        # SELECT * plan must not resurface
        connector.run("CREATE TABLE t (b text, a int)")
        connector.run("INSERT INTO t VALUES ('x', 1)")
        assert connector.run("SELECT * FROM t").columns == ["b", "a"]


class TestContainer:
    def test_cte_mode_wraps_prefix(self, connector):
        container = SQLQueryContainer(connector, mode="CTE")
        container.add_block("b1", "SELECT a * 2 AS d FROM t")
        container.add_block("b2", "SELECT d + 1 AS e FROM b1")
        sql = container.wrap_query("SELECT sum(e) FROM b2")
        assert sql.startswith("WITH b1 AS (")
        assert container.run_query("SELECT sum(e) FROM b2").scalar() == 15

    def test_cte_upto_truncates(self, connector):
        container = SQLQueryContainer(connector, mode="CTE")
        container.add_block("b1", "SELECT a FROM t")
        container.add_block("b2", "SELECT a FROM b1")
        sql = container.wrap_query("SELECT count(*) FROM b1", upto="b1")
        assert "b2" not in sql

    def test_view_mode_creates_eagerly(self, connector):
        container = SQLQueryContainer(connector, mode="VIEW")
        container.add_block("v1", "SELECT a FROM t WHERE a > 1")
        assert "v1" in connector.connection.database.catalog.view_names
        assert container.run_query("SELECT count(*) FROM v1").scalar() == 2

    def test_materialized_views(self, connector):
        container = SQLQueryContainer(connector, mode="VIEW", materialize=True)
        container.add_block("v1", "SELECT a FROM t")
        view = connector.connection.database.catalog.resolve("v1")
        assert view.materialized
        assert view.snapshot is not None

    def test_not_materialized_clause(self, connector):
        container = SQLQueryContainer(
            connector, mode="CTE", cte_not_materialized=True
        )
        container.add_block("b1", "SELECT a FROM t")
        assert "AS NOT MATERIALIZED (" in container.wrap_query("SELECT * FROM b1")

    def test_duplicate_block_rejected(self, connector):
        container = SQLQueryContainer(connector, mode="CTE")
        container.add_block("b1", "SELECT a FROM t")
        with pytest.raises(TranslationError):
            container.add_block("b1", "SELECT a FROM t")

    def test_invalid_mode_rejected(self, connector):
        with pytest.raises(TranslationError):
            SQLQueryContainer(connector, mode="TABLE")

    def test_full_script_cte(self, connector):
        container = SQLQueryContainer(connector, mode="CTE")
        container.add_ddl("CREATE TABLE x (a int)")
        container.add_block("b1", "SELECT a FROM x")
        script = container.full_script()
        assert script.startswith("CREATE TABLE x (a int);")
        assert "WITH b1 AS" in script

    def test_full_script_view(self, connector):
        container = SQLQueryContainer(connector, mode="VIEW")
        container.add_block("v9", "SELECT a FROM t")
        script = container.full_script()
        assert "CREATE VIEW v9 AS" in script
        assert script.rstrip().endswith("SELECT * FROM v9;")
