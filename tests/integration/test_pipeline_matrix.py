"""Cross-product integration: 4 pipelines x backends, verdict + equality.

The heavier counterpart of the unit suites: every evaluation pipeline runs
through every execution configuration and must (a) finish, (b) agree with
the native path on every SQL-computable histogram, and (c) reach the same
check verdict.
"""

import pytest

from repro.datasets import generate_adult, generate_compas, generate_healthcare
from repro.core.connectors import PostgresqlConnector, UmbraConnector
from repro.inspection import (
    HistogramForColumns,
    NoBiasIntroducedFor,
    PipelineInspector,
)
from repro.pipelines import PIPELINE_BUILDERS

SENSITIVE = {
    "healthcare": ["race", "age_group"],
    "compas": ["sex", "race"],
    "adult_simple": ["race"],
    "adult_complex": ["race"],
}

CONFIGS = [
    ("postgres", "CTE", False),
    ("postgres", "VIEW", False),
    ("postgres", "VIEW", True),
    ("umbra", "CTE", False),
    ("umbra", "VIEW", False),
]


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("matrix"))
    generate_healthcare(directory, 120, seed=1)
    generate_compas(directory, 150, 60, seed=1)
    generate_adult(directory, 200, 60, seed=1)
    return directory


@pytest.fixture(scope="module")
def python_results(data_dir):
    results = {}
    for pipeline, builder in PIPELINE_BUILDERS.items():
        if pipeline == "taxi":
            continue
        source = builder(data_dir, upto="sklearn")
        results[pipeline] = (
            PipelineInspector.on_pipeline_from_string(source, f"<{pipeline}>")
            .add_check(NoBiasIntroducedFor(SENSITIVE[pipeline]))
            .execute()
        )
    return results


@pytest.mark.parametrize("pipeline", list(SENSITIVE))
@pytest.mark.parametrize(
    "profile,mode,materialize", CONFIGS,
    ids=[f"{p}-{m}{'-mat' if t else ''}" for p, m, t in CONFIGS],
)
def test_sql_matches_python(
    data_dir, python_results, pipeline, profile, mode, materialize
):
    source = PIPELINE_BUILDERS[pipeline](data_dir, upto="sklearn")
    connector = (
        PostgresqlConnector() if profile == "postgres" else UmbraConnector()
    )
    check = NoBiasIntroducedFor(SENSITIVE[pipeline])
    sql_result = (
        PipelineInspector.on_pipeline_from_string(source, f"<{pipeline}>")
        .add_check(check)
        .execute_in_sql(
            dbms_connector=connector, mode=mode, materialize=materialize
        )
    )
    python_result = python_results[pipeline]

    # verdicts agree
    sql_check = next(iter(sql_result.check_to_check_results.values()))
    py_check = next(iter(python_result.check_to_check_results.values()))
    assert sql_check.status == py_check.status

    # every histogram the SQL path computed matches the Python path
    inspection = HistogramForColumns(SENSITIVE[pipeline])
    py_map = {
        (n.lineno, n.operator_type.name): v
        for n, v in python_result.histograms_for(inspection).items()
        if v
    }
    compared = 0
    for node, histograms in sql_result.histograms_for(inspection).items():
        if not histograms:
            continue
        key = (node.lineno, node.operator_type.name)
        if key in py_map:
            for column, counts in histograms.items():
                if column in py_map[key]:
                    assert counts == py_map[key][column], (pipeline, key)
                    compared += 1
    assert compared >= 2, "too few comparable histograms"
