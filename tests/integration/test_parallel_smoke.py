"""Fast smoke test: serial vs parallel equality on a real pipeline.

The healthcare inspection pipeline runs through the SQL backend once with
the default serial connector and once with morsel-driven parallelism
forced on (4 workers, tiny morsels so the small test dataset still
splits).  Histograms and check verdicts must match exactly — the
end-to-end counterpart of the per-query differential tests.
"""

import pytest

from repro.core.connectors import UmbraConnector
from repro.datasets import generate_healthcare
from repro.inspection import (
    HistogramForColumns,
    NoBiasIntroducedFor,
    PipelineInspector,
)
from repro.pipelines import PIPELINE_BUILDERS

SENSITIVE = ["race", "age_group"]


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("parallel_smoke"))
    generate_healthcare(directory, 150, seed=3)
    return PIPELINE_BUILDERS["healthcare"](directory, upto="sklearn")


def _run(source, connector):
    return (
        PipelineInspector.on_pipeline_from_string(source, "<healthcare>")
        .add_check(NoBiasIntroducedFor(SENSITIVE))
        .execute_in_sql(dbms_connector=connector, mode="CTE")
    )


def test_parallel_pipeline_matches_serial(source):
    serial = _run(source, UmbraConnector())
    parallel_connector = UmbraConnector(
        workers=4, morsel_size=16, collect_exec_stats=True
    )
    parallel = _run(source, parallel_connector)

    serial_check = next(iter(serial.check_to_check_results.values()))
    parallel_check = next(iter(parallel.check_to_check_results.values()))
    assert serial_check.status == parallel_check.status

    inspection = HistogramForColumns(SENSITIVE)
    serial_map = {
        (n.lineno, n.operator_type.name): v
        for n, v in serial.histograms_for(inspection).items()
        if v
    }
    compared = 0
    for node, histograms in parallel.histograms_for(inspection).items():
        if not histograms:
            continue
        key = (node.lineno, node.operator_type.name)
        assert key in serial_map
        assert histograms == serial_map[key], key
        compared += 1
    assert compared >= 2, "too few comparable histograms"

    # the parallel run must actually have morselized some operators
    counters = parallel_connector.exec_stats
    assert counters
    assert any(c["parallel_morsels"] for c in counters.values()), (
        "no operator executed morsel-parallel in the parallel run"
    )
