"""End-to-end smoke: the healthcare inspection pipeline over the wire.

Starts a real :class:`DatabaseServer` on an ephemeral port and runs the
pipeline through :class:`RemoteConnector` — the paper's psycopg2-shaped
client/server split — then compares against the in-process connector:
check verdicts and histograms must be *identical*, because the remote
path is the same engine behind a socket, not an approximation of it."""

import pytest

from repro.core.connectors import RemoteConnector, UmbraConnector
from repro.datasets import generate_healthcare
from repro.inspection import (
    HistogramForColumns,
    NoBiasIntroducedFor,
    PipelineInspector,
)
from repro.pipelines import PIPELINE_BUILDERS
from repro.sqldb.server import DatabaseServer

pytestmark = pytest.mark.server

SENSITIVE = ["race", "age_group"]


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("server_smoke"))
    generate_healthcare(directory, 150, seed=3)
    return PIPELINE_BUILDERS["healthcare"](directory, upto="sklearn")


@pytest.fixture(scope="module")
def server():
    with DatabaseServer(profile="umbra") as srv:
        yield srv


def _run(source, connector):
    return (
        PipelineInspector.on_pipeline_from_string(source, "<healthcare>")
        .add_check(NoBiasIntroducedFor(SENSITIVE))
        .execute_in_sql(dbms_connector=connector, mode="CTE")
    )


def test_remote_pipeline_matches_in_process(source, server):
    local = _run(source, UmbraConnector())
    remote_connector = RemoteConnector(host="127.0.0.1", port=server.port)
    try:
        remote = _run(source, remote_connector)

        local_check = next(iter(local.check_to_check_results.values()))
        remote_check = next(iter(remote.check_to_check_results.values()))
        assert local_check.status == remote_check.status

        inspection = HistogramForColumns(SENSITIVE)
        local_map = {
            (n.lineno, n.operator_type.name): v
            for n, v in local.histograms_for(inspection).items()
            if v
        }
        compared = 0
        for node, histograms in remote.histograms_for(inspection).items():
            if not histograms:
                continue
            key = (node.lineno, node.operator_type.name)
            assert key in local_map
            # identical to the in-process run, value for value: the
            # wire format must not perturb a single count or label
            assert histograms == local_map[key], key
            compared += 1
        assert compared >= 2, "too few comparable histograms"
    finally:
        remote_connector.close()


def test_remote_rerun_hits_server_plan_cache(source, server):
    connector = RemoteConnector(host="127.0.0.1", port=server.port)
    try:
        connector.reset()
        _run(source, connector)
        first = dict(connector.plan_cache_stats)
        connector.reset()
        _run(source, connector)
        second = dict(connector.plan_cache_stats)
        # the server-side plan cache survived the reset: the replay hits
        assert second["hits"] > first["hits"]
    finally:
        connector.close()
