"""Integration tests reproducing the paper's SQL listings verbatim(ish).

These run the concrete SQL of Listings 1, 2, 3, 12, 15-19 against the
engine and check that the results match the semantics the paper describes
— i.e. the reproduction's engine can execute the paper's own example code.
"""

import pytest

from repro.sqldb import Database


@pytest.fixture(params=["postgres", "umbra"])
def db(request):
    database = Database(request.param)
    database.run_script(
        "CREATE TABLE data (a int, s int);"
        "INSERT INTO data (values (1,1), (1,2));"
    )
    return database


class TestListing1RatioMeasurement:
    SQL = """
    WITH orig AS ( -- the original data with exposed ctid
      SELECT ctid, a, s FROM data),
    curr AS ( -- current representation after preprocessing
      SELECT ctid, s FROM orig WHERE s > 1),
    orig_count AS ( -- original count per value of column "s"
      SELECT s, count(*) AS cnt FROM orig GROUP BY s),
    curr_count AS ( -- current count per value of column "s"
      SELECT s, count(*) AS cnt FROM curr GROUP BY s),
    orig_ratio AS ( -- original ratio per value of column "s"
      SELECT s, (cnt*1.0 / (select count(*) FROM orig)) AS ratio
      FROM orig_count),
    curr_ratio AS ( -- current ratio per value of column "s"
      SELECT s, (cnt*1.0/(select sum(cnt) FROM curr_count)) AS ratio
      FROM curr_count)
    -- join on the sensitive column to calculate the ratio change
    SELECT o.s, o.ratio - COALESCE(c.ratio, 0) AS bias_change
    FROM curr_ratio c RIGHT OUTER JOIN orig_ratio o ON o.s = c.s
    ORDER BY o.s
    """

    def test_bias_change(self, db):
        result = db.execute(self.SQL)
        assert result.rows == [(1, 0.5), (2, -0.5)]


class TestListing3AggregatedTracking:
    SQL = """
    WITH orig AS (SELECT ctid, a, s FROM data),
    curr AS ( -- current representation (aggregated)
      SELECT array_agg(ctid) AS ids, s FROM orig GROUP BY s),
    curr_count AS (
      SELECT o.s, count(*) AS cnt
      FROM (SELECT unnest(ids) AS id, s FROM curr) c
      JOIN orig o ON c.id = o.ctid
      GROUP BY o.s)
    SELECT * FROM curr_count ORDER BY s
    """

    def test_unnest_restores_counts(self, db):
        result = db.execute(self.SQL)
        assert result.rows == [(1, 1), (2, 1)]


class TestListing12Replace:
    def test_anchored_replace(self, db):
        db.run_script(
            "CREATE TABLE origin (label text);"
            "INSERT INTO origin VALUES ('Medium'), ('High'), ('MediumX');"
        )
        result = db.execute(
            "SELECT REGEXP_REPLACE(\"label\", '^Medium$', 'Low') AS \"label\" "
            "FROM origin ORDER BY ctid"
        )
        assert result.column("label") == ["Low", "High", "MediumX"]


class TestListing15Imputer:
    def test_most_frequent_substitution(self, db):
        db.run_script(
            "CREATE TABLE origin (v text);"
            "INSERT INTO origin VALUES ('a'), ('b'), ('b'), (NULL);"
        )
        result = db.execute(
            "SELECT COALESCE(v, (SELECT value FROM ("
            "  SELECT v AS value, count(*) AS cnt FROM origin "
            "  WHERE v IS NOT NULL GROUP BY v) t "
            "ORDER BY cnt DESC, value LIMIT 1)) AS v "
            "FROM origin ORDER BY ctid"
        )
        assert result.column("v") == ["a", "b", "b", "b"]


class TestListing16OneHot:
    def test_binary_vectors(self, db):
        db.run_script(
            "CREATE TABLE cats (c text);"
            "INSERT INTO cats VALUES ('y'), ('x'), ('y'), ('z');"
        )
        result = db.execute(
            """
            WITH ranked AS (
              SELECT a.value AS value, count(*) AS rank,
                     (SELECT count(DISTINCT c) FROM cats) AS total
              FROM (SELECT DISTINCT c AS value FROM cats) a
              JOIN (SELECT DISTINCT c AS value FROM cats) b
                ON b.value <= a.value
              GROUP BY a.value)
            SELECT t.c,
                   array_fill(0, r.rank - 1) || 1 ||
                   array_fill(0, r.total - r.rank) AS onehot
            FROM cats t JOIN ranked r ON t.c = r.value
            ORDER BY t.ctid
            """
        )
        onehots = dict(zip(result.column("c"), result.column("onehot")))
        assert onehots["x"] == [1, 0, 0]
        assert onehots["y"] == [0, 1, 0]
        assert onehots["z"] == [0, 0, 1]


class TestListing17Scaler:
    def test_standard_score(self, db):
        db.run_script(
            "CREATE TABLE origin (v float);"
            "INSERT INTO origin VALUES (1.0), (2.0), (3.0);"
        )
        result = db.execute(
            "SELECT (v - (SELECT AVG(v) FROM origin)) / "
            "(SELECT STDDEV_POP(v) FROM origin) AS z FROM origin ORDER BY ctid"
        )
        z = result.column("z")
        assert z[0] == pytest.approx(-1.224744871)
        assert z[1] == pytest.approx(0.0)
        assert z[2] == pytest.approx(1.224744871)


class TestListing18KBins:
    def test_four_bins_with_clamping(self, db):
        db.run_script(
            "CREATE TABLE origin (v float);"
            "INSERT INTO origin VALUES (0.0), (4.0), (10.0), (-3.0), (99.0);"
        )
        result = db.execute(
            """
            WITH fit AS (SELECT MIN(v) AS lo, MAX(v) AS hi FROM origin
                         WHERE v <= 10)
            SELECT LEAST(GREATEST(FLOOR(
                     (v - (SELECT lo FROM fit)) /
                     (((SELECT hi FROM fit) - (SELECT lo FROM fit)) / 4.0)
                   ), 0), 3) AS bin
            FROM origin ORDER BY ctid
            """
        )
        # fitted on [-3, 10]: width 3.25; out-of-range 99 clamps to bin 3
        assert result.column("bin") == [0, 2, 3, 0, 3]


class TestListing19Binarize:
    def test_case_threshold(self, db):
        db.run_script(
            "CREATE TABLE origin (label int);"
            "INSERT INTO origin VALUES (49), (50), (51);"
        )
        result = db.execute(
            "SELECT (CASE WHEN (\"label\" >= 50) THEN 1 ELSE 0 END) AS v "
            "FROM origin ORDER BY ctid"
        )
        assert result.column("v") == [0, 1, 1]
