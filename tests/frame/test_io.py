"""Unit tests for CSV reading with type inference."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frame import read_csv
from repro.frame.io import infer_column_type


def _write(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestTypeInference:
    def test_int(self):
        assert infer_column_type(["1", "2"]) == "int"

    def test_float(self):
        assert infer_column_type(["1", "2.5"]) == "float"

    def test_str(self):
        assert infer_column_type(["1", "x"]) == "str"

    def test_nulls_ignored(self):
        assert infer_column_type([None, "3"]) == "int"

    def test_all_null_is_str(self):
        assert infer_column_type([None, None]) == "str"

    def test_scientific_notation(self):
        assert infer_column_type(["1e3"]) == "float"


class TestReadCsv:
    def test_basic(self, tmp_path):
        path = _write(tmp_path, "a,b,c\n1,2.5,x\n2,3.5,y\n")
        frame = read_csv(path)
        assert frame.columns == ["a", "b", "c"]
        assert frame["a"].dtype == np.int64
        assert frame["b"].dtype == np.float64
        assert frame["c"].tolist() == ["x", "y"]

    def test_na_values(self, tmp_path):
        path = _write(tmp_path, "a,b\n?,x\n2,?\n")
        frame = read_csv(path, na_values="?")
        assert frame["a"].tolist() == [None, 2.0]
        assert frame["b"].tolist() == ["x", None]

    def test_empty_string_is_null(self, tmp_path):
        path = _write(tmp_path, "a,b\n,x\n5,y\n")
        frame = read_csv(path)
        assert frame["a"].tolist() == [None, 5.0]

    def test_blank_lines_skipped(self, tmp_path):
        path = _write(tmp_path, "a\n1\n\n2\n")
        frame = read_csv(path)
        assert frame["a"].tolist() == [1, 2]

    def test_index_column_detection(self, tmp_path):
        # compas/adult layout: header has one fewer field than the rows
        path = _write(tmp_path, "a,b\n0,1,x\n1,2,y\n")
        frame = read_csv(path)
        assert frame.columns == ["a", "b"]
        assert list(frame.index) == [0, 1]
        assert frame["a"].tolist() == [1, 2]

    def test_quoted_fields_with_commas(self, tmp_path):
        path = _write(tmp_path, 'a,b\n"x,y",2\n')
        frame = read_csv(path)
        assert frame["a"].tolist() == ["x,y"]

    def test_ragged_row_raises(self, tmp_path):
        path = _write(tmp_path, "a,b\n1\n")
        with pytest.raises(FrameError):
            read_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = _write(tmp_path, "")
        with pytest.raises(FrameError):
            read_csv(path)

    def test_header_only(self, tmp_path):
        path = _write(tmp_path, "a,b\n")
        frame = read_csv(path)
        assert frame.columns == ["a", "b"]
        assert len(frame) == 0
