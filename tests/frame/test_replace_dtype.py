"""Regression: Series.replace degraded every result to object dtype."""

import numpy as np

from repro.frame.series import Series


class TestReplaceDtype:
    def test_int_replacement_keeps_int64(self):
        out = Series([1, 2, 3]).replace(2, 99)
        assert out.dtype == np.int64
        assert out.tolist() == [1, 99, 3]

    def test_float_replacement_keeps_float64(self):
        out = Series([1.0, 2.5, 3.0]).replace(2.5, 9.5)
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 9.5, 3.0]

    def test_bool_replacement_keeps_bool(self):
        out = Series([True, False, True]).replace(False, True)
        assert out.dtype == np.bool_
        assert out.tolist() == [True, True, True]

    def test_mixed_replacement_becomes_object(self):
        out = Series([1, 2, 3]).replace(2, "two")
        assert out.dtype == object
        assert out.tolist() == [1, "two", 3]

    def test_replace_with_none_promotes_like_pandas(self):
        out = Series([1, 2, 3]).replace(2, None)
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, None, 3.0]

    def test_dict_replacement_keeps_int64(self):
        out = Series([1, 2, 3]).replace({1: 10, 3: 30})
        assert out.dtype == np.int64
        assert out.tolist() == [10, 2, 30]

    def test_string_replace_stays_object(self):
        out = Series(["a", "b"]).replace("a", "z")
        assert out.dtype == object
        assert out.tolist() == ["z", "b"]

    def test_regex_replace_unchanged_numeric_keeps_dtype(self):
        # regex only inspects strings; a numeric series passes through intact
        out = Series([1, 2]).replace("x", "y", regex=True)
        assert out.dtype == np.int64

    def test_nan_survives_replacement_of_other_values(self):
        out = Series([1.0, float("nan"), 3.0]).replace(3.0, 4.0)
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, None, 4.0]


class TestReplaceNulls:
    """Regression: null cells (None / NaN) could never be replaced."""

    def test_all_null_object_column(self):
        out = Series([None, None, None]).replace({None: "missing"})
        assert out.tolist() == ["missing", "missing", "missing"]

    def test_all_null_float_column(self):
        out = Series([float("nan")] * 3).replace({np.nan: 0.0})
        assert out.dtype == np.float64
        assert out.tolist() == [0.0, 0.0, 0.0]

    def test_scalar_none_to_replace(self):
        out = Series([None, None]).replace(None, 7)
        assert out.tolist() == [7, 7]
        assert out.dtype == np.int64

    def test_nan_key_on_mixed_column(self):
        out = Series([1.0, float("nan"), 3.0]).replace({np.nan: 2.0})
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_mixed_mapping_with_and_without_na_keys(self):
        out = Series([1.0, float("nan"), 3.0]).replace({np.nan: 0.0, 3.0: 9.0})
        assert out.tolist() == [1.0, 0.0, 9.0]

    def test_all_null_without_na_key_is_unchanged(self):
        out = Series([None, None]).replace({"x": "y"})
        assert out.tolist() == [None, None]

    def test_replacing_null_with_none_is_identity(self):
        out = Series([None, 1]).replace({None: None})
        assert out.tolist() == [None, 1]
