"""Unit tests for repro.frame.series."""

import math

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frame import Series


class TestConstruction:
    def test_int_list(self):
        s = Series([1, 2, 3])
        assert s.dtype == np.int64
        assert s.tolist() == [1, 2, 3]

    def test_int_list_with_null_promotes_to_float(self):
        s = Series([1, None, 3])
        assert s.dtype == np.float64
        assert s.tolist() == [1.0, None, 3.0]

    def test_string_list(self):
        s = Series(["a", None, "c"])
        assert s.dtype == object
        assert s.tolist() == ["a", None, "c"]

    def test_bool_list(self):
        s = Series([True, False])
        assert s.dtype == bool

    def test_nan_is_null(self):
        s = Series([1.0, float("nan")])
        assert s.isnull().tolist() == [False, True]

    def test_mixed_types_to_object(self):
        s = Series([1, "a"])
        assert s.dtype == object

    def test_numpy_unicode_array_becomes_object(self):
        s = Series(np.array(["x", "y"]))
        assert s.dtype == object

    def test_default_index(self):
        s = Series([10, 20, 30])
        assert list(s.index) == [0, 1, 2]

    def test_rejects_2d(self):
        with pytest.raises(FrameError):
            Series(np.zeros((2, 2)))

    def test_index_length_mismatch(self):
        with pytest.raises(FrameError):
            Series([1, 2], index=np.array([0]))


class TestComparisons:
    def test_gt_scalar(self):
        s = Series([1, 2, 3])
        assert (s > 2).tolist() == [False, False, True]

    def test_null_compares_false(self):
        s = Series([1.0, None, 3.0])
        assert (s > 0).tolist() == [True, False, True]

    def test_eq_string(self):
        s = Series(["a", "b", None])
        assert (s == "a").tolist() == [True, False, False]

    def test_ne_excludes_nulls(self):
        s = Series(["a", "b", None])
        assert (s != "a").tolist() == [False, True, False]

    def test_series_vs_series(self):
        a = Series([1, 2, 3])
        b = Series([3, 2, 1])
        assert (a >= b).tolist() == [False, True, True]

    def test_length_mismatch_raises(self):
        with pytest.raises(FrameError):
            Series([1, 2]) > Series([1, 2, 3])

    def test_compare_against_nan_scalar_all_false(self):
        s = Series([1.0, 2.0])
        assert (s > float("nan")).tolist() == [False, False]


class TestArithmetic:
    def test_mul_scalar(self):
        assert (Series([1, 2]) * 3).tolist() == [3, 6]

    def test_rmul(self):
        assert (1.2 * Series([10.0])).tolist() == [12.0]

    def test_null_propagates(self):
        out = Series([1.0, None]) + 1
        assert out.tolist() == [2.0, None]

    def test_series_plus_series(self):
        assert (Series([1, 2]) + Series([10, 20])).tolist() == [11, 22]

    def test_division(self):
        assert (Series([4, 9]) / 2).tolist() == [2.0, 4.5]

    def test_neg(self):
        assert (-Series([1, -2])).tolist() == [-1, 2]

    def test_string_concat(self):
        out = Series(["a", "b"]) + "_x"
        assert out.tolist() == ["a_x", "b_x"]


class TestBooleanOps:
    def test_and(self):
        a = Series([True, True, False])
        b = Series([True, False, False])
        assert (a & b).tolist() == [True, False, False]

    def test_or(self):
        a = Series([True, False])
        b = Series([False, False])
        assert (a | b).tolist() == [True, False]

    def test_invert(self):
        assert (~Series([True, False])).tolist() == [False, True]

    def test_non_bool_mask_raises(self):
        with pytest.raises(FrameError):
            Series([1.5]) & Series([True])


class TestHelpers:
    def test_isin(self):
        s = Series(["x", "y", None, "z"])
        assert s.isin(["x", "z"]).tolist() == [True, False, False, True]

    def test_isin_null_never_matches(self):
        s = Series([None, "a"])
        assert s.isin([None, "a"]).tolist() == [False, True]

    def test_replace_whole_value(self):
        s = Series(["Medium", "Low", "MediumX"])
        out = s.replace("Medium", "Low")
        assert out.tolist() == ["Low", "Low", "MediumX"]

    def test_replace_regex(self):
        s = Series(["cat", "concat"])
        out = s.replace("^cat$", "dog", regex=True)
        assert out.tolist() == ["dog", "concat"]

    def test_replace_dict(self):
        s = Series(["a", "b"])
        assert s.replace({"a": 1, "b": 2}).tolist() == [1, 2]

    def test_fillna_numeric(self):
        assert Series([1.0, None]).fillna(0).tolist() == [1.0, 0.0]

    def test_fillna_string(self):
        assert Series(["a", None]).fillna("?").tolist() == ["a", "?"]

    def test_dropna_keeps_index(self):
        s = Series([1.0, None, 3.0])
        out = s.dropna()
        assert out.tolist() == [1.0, 3.0]
        assert list(out.index) == [0, 2]

    def test_unique_and_nunique(self):
        s = Series(["b", "a", "b", None])
        assert s.unique() == ["b", "a", None]
        assert s.nunique() == 2

    def test_value_counts_sorted_desc(self):
        s = Series(["a", "b", "b", None])
        assert list(s.value_counts().items()) == [("b", 2), ("a", 1)]

    def test_map_with_dict(self):
        assert Series(["a", "b"]).map({"a": 1}).tolist() == [1, None]

    def test_astype_str(self):
        assert Series([1, 2]).astype(str).tolist() == ["1", "2"]


class TestAggregations:
    def test_mean_skips_nulls(self):
        assert Series([1.0, None, 3.0]).mean() == 2.0

    def test_sum(self):
        assert Series([1, 2, 3]).sum() == 6

    def test_count_non_null(self):
        assert Series([1.0, None]).count() == 1

    def test_std_sample(self):
        assert Series([1.0, 3.0]).std() == pytest.approx(math.sqrt(2))

    def test_std_single_value_nan(self):
        assert math.isnan(Series([1.0]).std())

    def test_median(self):
        assert Series([1.0, 2.0, 10.0]).median() == 2.0

    def test_min_max(self):
        s = Series([5, 1, 9])
        assert s.min() == 1
        assert s.max() == 9

    def test_mode_smallest_on_tie(self):
        assert Series(["b", "a", "b", "a"]).mode() == "a"

    def test_empty_aggregates(self):
        s = Series([None, None])
        assert s.count() == 0
        assert math.isnan(s.mean())
        assert s.min() is None
