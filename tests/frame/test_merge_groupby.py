"""Unit tests for merge and groupby/agg."""

import pytest

from repro.errors import FrameError
from repro.frame import DataFrame


@pytest.fixture
def patients():
    return DataFrame(
        {
            "ssn": ["1", "2", "3", None],
            "race": ["r1", "r2", "r2", "r3"],
        }
    )


@pytest.fixture
def histories():
    return DataFrame(
        {
            "ssn": ["2", "2", "3", None, "9"],
            "complications": [1, 2, 3, 4, 5],
        }
    )


class TestMerge:
    def test_inner_join(self, patients, histories):
        out = patients.merge(histories, on=["ssn"])
        assert out.columns == ["ssn", "race", "complications"]
        assert out["complications"].tolist() == [1, 2, 3, 4]

    def test_null_keys_join_each_other(self, patients, histories):
        out = patients.merge(histories, on=["ssn"])
        # pandas (and the paper's SQL translation) treat null as joinable
        matched = [
            (s, c)
            for s, c in zip(out["ssn"].tolist(), out["complications"].tolist())
            if s is None
        ]
        assert matched == [(None, 4)]

    def test_inner_preserves_left_order(self):
        left = DataFrame({"k": [3, 1, 2]})
        right = DataFrame({"k": [1, 2, 3], "v": ["a", "b", "c"]})
        out = left.merge(right, on="k")
        assert out["v"].tolist() == ["c", "a", "b"]

    def test_left_join_fills_nulls(self):
        left = DataFrame({"k": [1, 2]})
        right = DataFrame({"k": [1], "v": [10]})
        out = left.merge(right, on="k", how="left")
        assert out["v"].tolist() == [10, None]

    def test_right_join(self):
        left = DataFrame({"k": [1], "v": ["x"]})
        right = DataFrame({"k": [1, 2]})
        out = left.merge(right, on="k", how="right")
        assert out["k"].tolist() == [1, 2]
        assert out["v"].tolist() == ["x", None]

    def test_outer_join(self):
        left = DataFrame({"k": [1, 2], "l": [10, 20]})
        right = DataFrame({"k": [2, 3], "r": [200, 300]})
        out = left.merge(right, on="k", how="outer")
        assert out["k"].tolist() == [1, 2, 3]
        assert out["l"].tolist() == [10, 20, None]
        assert out["r"].tolist() == [None, 200, 300]

    def test_cross_join(self):
        left = DataFrame({"a": [1, 2]})
        right = DataFrame({"b": ["x", "y"]})
        out = left.merge(right, how="cross")
        assert len(out) == 4

    def test_duplicate_column_suffixes(self):
        left = DataFrame({"k": [1], "v": [1]})
        right = DataFrame({"k": [1], "v": [2]})
        out = left.merge(right, on="k")
        assert out.columns == ["k", "v_x", "v_y"]

    def test_missing_key_raises(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1]}).merge(DataFrame({"b": [1]}), on="a")

    def test_requires_on_for_non_cross(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1]}).merge(DataFrame({"a": [1]}))

    def test_unsupported_how(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1]}).merge(DataFrame({"a": [1]}), on="a", how="anti")

    def test_multi_key_join(self):
        left = DataFrame({"a": [1, 1], "b": ["x", "y"], "l": [1, 2]})
        right = DataFrame({"a": [1], "b": ["y"], "r": [9]})
        out = left.merge(right, on=["a", "b"])
        assert out["l"].tolist() == [2]


class TestGroupBy:
    def test_named_agg_mean(self):
        frame = DataFrame({"g": ["a", "a", "b"], "v": [1.0, 3.0, 10.0]})
        out = frame.groupby("g").agg(m=("v", "mean"))
        assert out.columns == ["g", "m"]
        assert out["m"].tolist() == [2.0, 10.0]

    def test_keys_sorted(self):
        frame = DataFrame({"g": ["b", "a"], "v": [1, 2]})
        out = frame.groupby("g").agg(n=("v", "count"))
        assert out["g"].tolist() == ["a", "b"]

    def test_null_group_dropped(self):
        frame = DataFrame({"g": ["a", None], "v": [1, 2]})
        out = frame.groupby("g").agg(n=("v", "count"))
        assert out["g"].tolist() == ["a"]

    def test_multiple_keys(self):
        frame = DataFrame(
            {"g": ["a", "a", "b"], "h": [1, 2, 1], "v": [1, 2, 3]}
        )
        out = frame.groupby(["g", "h"]).agg(s=("v", "sum"))
        assert len(out) == 3

    def test_count_skips_nulls(self):
        frame = DataFrame({"g": ["a", "a"], "v": [1.0, None]})
        out = frame.groupby("g").agg(n=("v", "count"))
        assert out["n"].tolist() == [1]

    def test_size_counts_nulls(self):
        frame = DataFrame({"g": ["a", "a"], "v": [1.0, None]})
        out = frame.groupby("g").agg(n=("v", "size"))
        assert out["n"].tolist() == [2]

    def test_dict_spec(self):
        frame = DataFrame({"g": ["a"], "v": [3]})
        out = frame.groupby("g").agg({"v": "max"})
        assert out["v"].tolist() == [3]

    def test_unknown_agg_raises(self):
        frame = DataFrame({"g": ["a"], "v": [1]})
        with pytest.raises(FrameError):
            frame.groupby("g").agg(x=("v", "frobnicate"))

    def test_unknown_key_raises(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1]}).groupby("nope")

    def test_agg_requires_spec(self):
        frame = DataFrame({"g": ["a"], "v": [1]})
        with pytest.raises(FrameError):
            frame.groupby("g").agg()

    def test_groups_positions(self):
        frame = DataFrame({"g": ["a", "b", "a"], "v": [1, 2, 3]})
        groups = frame.groupby("g").groups()
        assert groups[("a",)] == [0, 2]
        assert groups[("b",)] == [1]

    def test_healthcare_pattern(self):
        # the paper's groupby/agg + merge-back pattern (Listing 4 lines 28-30)
        data = DataFrame(
            {
                "age_group": ["g1", "g1", "g2"],
                "complications": [1.0, 3.0, 5.0],
            }
        )
        complications = data.groupby("age_group").agg(
            mean_complications=("complications", "mean")
        )
        merged = data.merge(complications, on=["age_group"])
        assert merged["mean_complications"].tolist() == [2.0, 2.0, 5.0]
        merged["label"] = (
            merged["complications"] > 1.2 * merged["mean_complications"]
        )
        assert merged["label"].tolist() == [False, True, False]
