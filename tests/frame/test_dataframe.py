"""Unit tests for repro.frame.dataframe."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frame import DataFrame, Series, concat


@pytest.fixture
def frame():
    return DataFrame(
        {
            "a": [1, 2, 3, 4],
            "s": ["x", "y", "x", None],
            "v": [1.0, None, 3.0, 4.0],
        }
    )


class TestBasics:
    def test_shape_and_len(self, frame):
        assert frame.shape == (4, 3)
        assert len(frame) == 4

    def test_columns(self, frame):
        assert frame.columns == ["a", "s", "v"]

    def test_contains(self, frame):
        assert "a" in frame
        assert "missing" not in frame

    def test_column_length_mismatch(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1], "b": [1, 2]})

    def test_copy_is_independent(self, frame):
        clone = frame.copy()
        clone["a"] = Series([9, 9, 9, 9])
        assert frame["a"].tolist() == [1, 2, 3, 4]

    def test_empty(self):
        assert DataFrame({}).empty


class TestSelection:
    def test_getitem_column(self, frame):
        s = frame["a"]
        assert isinstance(s, Series)
        assert s.name == "a"
        assert s.tolist() == [1, 2, 3, 4]

    def test_getitem_missing_column(self, frame):
        with pytest.raises(FrameError):
            frame["missing"]

    def test_projection(self, frame):
        out = frame[["s", "a"]]
        assert out.columns == ["s", "a"]

    def test_selection_mask(self, frame):
        out = frame[frame["a"] > 2]
        assert out["a"].tolist() == [3, 4]

    def test_selection_preserves_index_labels(self, frame):
        out = frame[frame["a"] > 2]
        assert list(out.index) == [2, 3]

    def test_selection_mask_length_mismatch(self, frame):
        with pytest.raises(FrameError):
            frame[Series([True])]

    def test_chained_selection(self, frame):
        out = frame[frame["a"] > 1]
        out = out[out["s"] == "x"]
        assert out["a"].tolist() == [3]


class TestAssignment:
    def test_set_new_column_from_series(self, frame):
        frame["b"] = frame["a"] * 2
        assert frame["b"].tolist() == [2, 4, 6, 8]

    def test_set_scalar(self, frame):
        frame["c"] = 7
        assert frame["c"].tolist() == [7, 7, 7, 7]

    def test_overwrite_column(self, frame):
        frame["a"] = frame["v"]
        assert frame["a"].tolist() == [1.0, None, 3.0, 4.0]

    def test_length_mismatch(self, frame):
        with pytest.raises(FrameError):
            frame["b"] = Series([1])

    def test_binary_op_assignment_like_pipeline(self, frame):
        # the Listing 9 pattern: data['x'] = data['a'] > 1.2 * data['v']
        frame["x"] = frame["a"] > 1.2 * frame["v"]
        assert frame["x"].tolist() == [False, False, False, False]


class TestDropnaReplace:
    def test_dropna_all_columns(self, frame):
        out = frame.dropna()
        assert len(out) == 2
        assert out["a"].tolist() == [1, 3]

    def test_dropna_subset(self, frame):
        out = frame.dropna(subset=["s"])
        assert out["a"].tolist() == [1, 2, 3]

    def test_replace_only_touches_object_columns(self, frame):
        out = frame.replace("x", "z")
        assert out["s"].tolist() == ["z", "y", "z", None]
        assert out["a"].tolist() == [1, 2, 3, 4]

    def test_rename(self, frame):
        out = frame.rename({"a": "alpha"})
        assert out.columns == ["alpha", "s", "v"]

    def test_drop_columns(self, frame):
        out = frame.drop(["s"])
        assert out.columns == ["a", "v"]

    def test_drop_unknown_column(self, frame):
        with pytest.raises(FrameError):
            frame.drop(["nope"])


class TestConversion:
    def test_to_numpy_float(self):
        frame = DataFrame({"a": [1, 2], "b": [0.5, 1.5]})
        out = frame.to_numpy()
        assert out.dtype == np.float64
        assert out.tolist() == [[1.0, 0.5], [2.0, 1.5]]

    def test_to_numpy_null_becomes_nan(self):
        frame = DataFrame({"a": [1.0, None]})
        out = frame.to_numpy()
        assert np.isnan(out[1, 0])

    def test_to_dict(self, frame):
        assert frame.to_dict()["s"] == ["x", "y", "x", None]

    def test_iterrows(self, frame):
        rows = list(frame.iterrows())
        assert rows[0][0] == 0
        assert rows[0][1][0] == 1

    def test_head(self, frame):
        assert len(frame.head(2)) == 2

    def test_equals(self, frame):
        assert frame.equals(frame.copy())
        other = frame.copy()
        other["a"] = Series([9, 9, 9, 9])
        assert not frame.equals(other)

    def test_sort_values(self, frame):
        out = frame.sort_values("a", ascending=False)
        assert out["a"].tolist() == [4, 3, 2, 1]

    def test_sort_values_nulls_last(self, frame):
        out = frame.sort_values("v")
        assert out["v"].tolist()[-1] is None


class TestConcat:
    def test_concat_two_frames(self):
        a = DataFrame({"x": [1, 2]})
        b = DataFrame({"x": [3]})
        assert concat([a, b])["x"].tolist() == [1, 2, 3]

    def test_concat_column_mismatch(self):
        with pytest.raises(FrameError):
            concat([DataFrame({"x": [1]}), DataFrame({"y": [1]})])

    def test_concat_empty_list(self):
        with pytest.raises(FrameError):
            concat([])
