"""Property-based tests for the dataframe substrate (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import DataFrame, Series

values = st.one_of(
    st.none(),
    st.integers(min_value=-1_000, max_value=1_000),
    st.text(alphabet="abcxyz", min_size=0, max_size=4),
)
numeric_values = st.one_of(
    st.none(), st.integers(min_value=-1_000, max_value=1_000)
)


@given(st.lists(numeric_values, min_size=0, max_size=60))
def test_series_roundtrip_preserves_values(items):
    out = Series(items).tolist()
    assert len(out) == len(items)
    for original, roundtripped in zip(items, out):
        if original is None:
            assert roundtripped is None
        else:
            assert float(roundtripped) == float(original)


@given(st.lists(numeric_values, min_size=0, max_size=60))
def test_count_plus_nulls_is_length(items):
    s = Series(items)
    assert s.count() + int(s.isnull().values.sum()) == len(s)


@given(st.lists(numeric_values, min_size=1, max_size=60))
def test_mean_bounded_by_min_max(items):
    s = Series(items)
    if s.count() == 0:
        assert math.isnan(s.mean())
    else:
        assert s.min() <= s.mean() <= s.max()


@given(st.lists(numeric_values, min_size=0, max_size=60), st.integers(-5, 5))
def test_comparison_never_true_for_null(items, threshold):
    s = Series(items)
    mask = (s > threshold).values
    nulls = s.isnull().values
    assert not (mask & nulls).any()


@given(
    st.lists(st.sampled_from(["a", "b", "c", None]), min_size=0, max_size=50),
    st.lists(st.integers(0, 100), min_size=0, max_size=50),
)
def test_groupby_count_partitions_rows(keys, nums):
    n = min(len(keys), len(nums))
    if n == 0:
        return
    frame = DataFrame({"k": keys[:n], "v": [float(v) for v in nums[:n]]})
    out = frame.groupby("k").agg(n=("k", "size"))
    null_keys = sum(1 for k in keys[:n] if k is None)
    assert sum(out["n"].tolist()) == n - null_keys


@given(
    st.lists(st.integers(0, 5), min_size=0, max_size=40),
    st.lists(st.integers(0, 5), min_size=0, max_size=40),
)
def test_inner_merge_cardinality_matches_key_products(left_keys, right_keys):
    left = DataFrame({"k": left_keys})
    right = DataFrame({"k": right_keys})
    out = left.merge(right, on="k")
    expected = sum(
        left_keys.count(k) * right_keys.count(k) for k in set(left_keys)
    )
    assert len(out) == expected


@given(st.lists(values, min_size=0, max_size=60))
@settings(max_examples=50)
def test_selection_then_complement_partitions_frame(items):
    frame = DataFrame({"v": items, "i": list(range(len(items)))})
    mask = frame["v"].notnull()
    kept = frame[mask]
    dropped = frame[~mask]
    assert len(kept) + len(dropped) == len(frame)
    combined = sorted(kept["i"].tolist() + dropped["i"].tolist())
    assert combined == list(range(len(items)))


@given(st.lists(st.sampled_from(["u", "v", None]), min_size=0, max_size=50))
def test_isin_equivalent_to_disjunction_of_eq(items):
    s = Series(items)
    via_isin = s.isin(["u", "v"]).tolist()
    via_eq = ((s == "u") | (s == "v")).tolist()
    assert via_isin == via_eq
