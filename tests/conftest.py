"""Shared pytest configuration.

``--fuzz-rounds N`` raises the number of generated queries per
differential-fuzz test (see ``tests/sqldb/test_fuzz_differential.py``).
``--fault-rounds N`` raises the number of randomized workloads per
crash-recovery property test (see ``tests/sqldb/test_faults.py``).
``--stress-rounds N`` (or the ``REPRO_STRESS_ROUNDS`` environment
variable) raises the number of randomized concurrent rounds per MVCC
chaos-stress test (see ``tests/sqldb/test_stress_concurrency.py``).
The defaults keep these suites inside the tier-1 time budget; CI's
long-run job passes a few hundred rounds.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-rounds",
        action="store",
        type=int,
        default=None,
        help="generated queries per differential-fuzz test "
        "(default: a small tier-1 budget)",
    )
    parser.addoption(
        "--fault-rounds",
        action="store",
        type=int,
        default=None,
        help="randomized workloads per crash-recovery property test "
        "(default: a small tier-1 budget)",
    )
    parser.addoption(
        "--stress-rounds",
        action="store",
        type=int,
        default=None,
        help="randomized concurrent rounds per MVCC chaos-stress test "
        "(default: a small tier-1 budget; the REPRO_STRESS_ROUNDS "
        "environment variable also sets it)",
    )
