"""Shared pytest configuration.

``--fuzz-rounds N`` raises the number of generated queries per
differential-fuzz test (see ``tests/sqldb/test_fuzz_differential.py``).
``--fault-rounds N`` raises the number of randomized workloads per
crash-recovery property test (see ``tests/sqldb/test_faults.py``).
``--stress-rounds N`` (or the ``REPRO_STRESS_ROUNDS`` environment
variable) raises the number of randomized concurrent rounds per MVCC
chaos-stress test (see ``tests/sqldb/test_stress_concurrency.py``).
``--memory-rounds N`` raises the number of randomized queries per
memory-governor spill-differential test (see
``tests/sqldb/test_memory.py``).
The defaults keep these suites inside the tier-1 time budget; CI's
long-run job passes a few hundred rounds.
"""

import glob
import os
import tempfile

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-rounds",
        action="store",
        type=int,
        default=None,
        help="generated queries per differential-fuzz test "
        "(default: a small tier-1 budget)",
    )
    parser.addoption(
        "--fault-rounds",
        action="store",
        type=int,
        default=None,
        help="randomized workloads per crash-recovery property test "
        "(default: a small tier-1 budget)",
    )
    parser.addoption(
        "--stress-rounds",
        action="store",
        type=int,
        default=None,
        help="randomized concurrent rounds per MVCC chaos-stress test "
        "(default: a small tier-1 budget; the REPRO_STRESS_ROUNDS "
        "environment variable also sets it)",
    )
    parser.addoption(
        "--memory-rounds",
        action="store",
        type=int,
        default=None,
        help="randomized queries per memory-governor spill-differential "
        "test (default: a small tier-1 budget)",
    )


def _spill_artifacts() -> list[str]:
    """Spill directories/files currently parked in the system temp dir."""
    pattern = os.path.join(tempfile.gettempdir(), "repro-spill-*")
    found: list[str] = []
    for path in glob.glob(pattern):
        found.append(path)
        if os.path.isdir(path):
            found.extend(
                os.path.join(path, name) for name in sorted(os.listdir(path))
            )
    return found


@pytest.fixture(autouse=True)
def _no_spill_leaks():
    """Fail any test that leaves memory-governor spill artifacts behind.

    Spill files must be reclaimed when the owning grant ends — including
    on cancellation and error paths — and spill directories when the
    broker closes.  Pre-existing artifacts (from a crashed earlier run)
    are tolerated but new ones are a leak.
    """
    before = set(_spill_artifacts())
    yield
    leaked = [path for path in _spill_artifacts() if path not in before]
    assert not leaked, f"test leaked spill artifacts: {leaked}"
