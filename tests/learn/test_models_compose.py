"""Unit tests for models, pipelines, composition, splitting and metrics."""

import numpy as np
import pytest

from repro.errors import LearnError
from repro.frame import DataFrame
from repro.learn import (
    ColumnTransformer,
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    OneHotEncoder,
    Pipeline,
    SGDClassifier,
    SimpleImputer,
    StandardScaler,
    accuracy_score,
    log_loss,
    train_test_split,
)


def _linearly_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] + X[:, 1] > 0).astype(float)
    return X, y


class TestLogisticRegression:
    def test_learns_separable_data(self):
        X, y = _linearly_separable()
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_predict_proba_sums_to_one(self):
        X, y = _linearly_separable(50)
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_deterministic(self):
        X, y = _linearly_separable(50)
        a = LogisticRegression().fit(X, y)
        b = LogisticRegression().fit(X, y)
        assert np.allclose(a.coef_, b.coef_)

    def test_unfitted_raises(self):
        from repro.errors import NotFittedError

        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 2)))


class TestSGDClassifier:
    def test_learns_separable_data(self):
        X, y = _linearly_separable()
        model = SGDClassifier(random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_seeded_reproducibility(self):
        X, y = _linearly_separable(80)
        a = SGDClassifier(random_state=7).fit(X, y)
        b = SGDClassifier(random_state=7).fit(X, y)
        assert np.allclose(a.coef_, b.coef_)


class TestMLPClassifier:
    def test_learns_xor(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 40, dtype=float)
        y = np.array([0, 1, 1, 0] * 40, dtype=float)
        model = MLPClassifier(hidden_size=16, epochs=200, random_state=1).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_seeded_reproducibility(self):
        X, y = _linearly_separable(60)
        a = MLPClassifier(random_state=3, epochs=5).fit(X, y)
        b = MLPClassifier(random_state=3, epochs=5).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))


class TestDecisionTree:
    def test_learns_threshold_rule(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(300, 1))
        y = (X[:, 0] > 0.4).astype(float)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert model.score(X, y) > 0.98

    def test_pure_leaf_short_circuits(self):
        X = np.zeros((10, 1))
        y = np.ones(10)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.predict(X).tolist() == [1] * 10


class TestColumnTransformer:
    def test_block_order_matches_spec(self):
        frame = DataFrame({"num": [1.0, 3.0], "cat": ["a", "b"]})
        ct = ColumnTransformer(
            [
                ("cat", OneHotEncoder(), ["cat"]),
                ("num", StandardScaler(), ["num"]),
            ]
        )
        out = ct.fit_transform(frame)
        assert out.shape == (2, 3)
        assert out[:, :2].tolist() == [[1.0, 0.0], [0.0, 1.0]]

    def test_duplicate_names_rejected(self):
        with pytest.raises(LearnError):
            ColumnTransformer(
                [("x", StandardScaler(), ["a"]), ("x", StandardScaler(), ["b"])]
            )

    def test_requires_dataframe(self):
        ct = ColumnTransformer([("n", StandardScaler(), ["a"])])
        with pytest.raises(LearnError):
            ct.fit(np.zeros((2, 2)))

    def test_unfitted_transform_raises(self):
        ct = ColumnTransformer([("n", StandardScaler(), ["a"])])
        with pytest.raises(LearnError):
            ct.transform(DataFrame({"a": [1.0]}))


class TestPipeline:
    def test_impute_then_onehot(self):
        frame = DataFrame({"c": ["a", None, "b"]})
        pipe = Pipeline(
            [
                ("impute", SimpleImputer(strategy="most_frequent")),
                ("encode", OneHotEncoder()),
            ]
        )
        out = pipe.fit_transform(frame)
        assert out.shape == (3, 2)
        assert out.sum(axis=1).tolist() == [1.0, 1.0, 1.0]

    def test_predict_through_pipeline(self):
        X, y = _linearly_separable()
        pipe = Pipeline(
            [("scale", StandardScaler()), ("model", LogisticRegression())]
        )
        pipe.fit(X, y)
        assert pipe.score(X, y) > 0.95

    def test_named_steps(self):
        pipe = Pipeline([("s", StandardScaler())])
        assert "s" in pipe.named_steps

    def test_empty_pipeline_rejected(self):
        with pytest.raises(LearnError):
            Pipeline([])

    def test_duplicate_step_names_rejected(self):
        with pytest.raises(LearnError):
            Pipeline([("a", StandardScaler()), ("a", StandardScaler())])


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        train, test = train_test_split(X, test_size=0.25, random_state=0)
        assert len(train) == 75
        assert len(test) == 25

    def test_partition_is_exact(self):
        X = np.arange(50)
        train, test = train_test_split(X, test_size=0.2, random_state=1)
        assert sorted(list(train) + list(test)) == list(range(50))

    def test_parallel_arrays_stay_aligned(self):
        X = np.arange(40).reshape(-1, 1)
        y = np.arange(40)
        X_tr, X_te, y_tr, y_te = train_test_split(
            X, y, test_size=0.3, random_state=2
        )
        assert (X_tr.ravel() == y_tr).all()
        assert (X_te.ravel() == y_te).all()

    def test_dataframe_split(self):
        frame = DataFrame({"a": list(range(10))})
        train, test = train_test_split(frame, test_size=0.3, random_state=0)
        assert len(train) + len(test) == 10

    def test_seeded_reproducibility(self):
        X = np.arange(30)
        a = train_test_split(X, test_size=0.5, random_state=9)
        b = train_test_split(X, test_size=0.5, random_state=9)
        assert (a[0] == b[0]).all()

    def test_length_mismatch(self):
        with pytest.raises(LearnError):
            train_test_split(np.arange(3), np.arange(4))

    def test_bad_test_size(self):
        with pytest.raises(LearnError):
            train_test_split(np.arange(3), test_size=1.5)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_2d_single_column(self):
        assert accuracy_score(np.array([[1], [0]]), [1, 0]) == 1.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 2])

    def test_accuracy_empty(self):
        assert accuracy_score([], []) == 0.0

    def test_log_loss_perfect_prediction_near_zero(self):
        assert log_loss([1, 0], [1.0, 0.0]) < 1e-9

    def test_log_loss_penalises_confident_mistake(self):
        assert log_loss([1], [0.01]) > log_loss([1], [0.9])
