"""Property-based tests for the ML substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn import (
    Binarizer,
    KBinsDiscretizer,
    LabelBinarizer,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
    label_binarize,
    train_test_split,
)

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
columns = st.lists(floats, min_size=2, max_size=50)


@given(columns)
@settings(max_examples=50)
def test_scaler_output_zero_mean(values):
    matrix = np.array(values).reshape(-1, 1)
    out = StandardScaler().fit_transform(matrix)
    assert abs(out.mean()) < 1e-6 or np.allclose(matrix, matrix[0])


@given(columns)
@settings(max_examples=50)
def test_scaler_is_affine_invertible(values):
    matrix = np.array(values).reshape(-1, 1)
    scaler = StandardScaler().fit(matrix)
    out = scaler.fit_transform(matrix)
    restored = out * scaler.scale_ + scaler.mean_
    assert np.allclose(restored, matrix, atol=1e-6 * (1 + np.abs(matrix).max()))


@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=60))
@settings(max_examples=50)
def test_onehot_rows_sum_to_one(categories):
    matrix = np.array(categories, dtype=object).reshape(-1, 1)
    out = OneHotEncoder().fit_transform(matrix)
    assert np.allclose(out.sum(axis=1), 1.0)
    assert out.shape[1] == len(set(categories))


@given(st.lists(st.sampled_from(["a", "b", None]), min_size=1, max_size=40))
@settings(max_examples=50)
def test_imputer_removes_all_nulls(values):
    matrix = np.array(values, dtype=object).reshape(-1, 1)
    if all(v is None for v in values):
        return  # no statistic to impute from
    out = SimpleImputer(strategy="most_frequent").fit_transform(matrix)
    assert all(v is not None for v in out[:, 0])


@given(columns, st.integers(2, 8))
@settings(max_examples=50)
def test_kbins_output_in_range(values, n_bins):
    matrix = np.array(values).reshape(-1, 1)
    out = KBinsDiscretizer(n_bins=n_bins).fit_transform(matrix)
    assert out.min() >= 0
    assert out.max() <= n_bins - 1


@given(columns, floats)
@settings(max_examples=50)
def test_binarizer_is_indicator_of_threshold(values, threshold):
    matrix = np.array(values).reshape(-1, 1)
    out = Binarizer(threshold=threshold).fit_transform(matrix)
    expected = (matrix > threshold).astype(float)
    assert np.array_equal(out, expected)


@given(st.lists(st.sampled_from(["lo", "hi"]), min_size=1, max_size=50))
@settings(max_examples=50)
def test_label_binarize_roundtrip(labels):
    out = label_binarize(labels, classes=["lo", "hi"])
    restored = ["hi" if v else "lo" for v in out.ravel()]
    assert restored == labels


@given(
    st.integers(min_value=4, max_value=80),
    st.floats(min_value=0.1, max_value=0.9),
    st.integers(0, 10_000),
)
@settings(max_examples=50)
def test_split_is_a_partition(n, test_size, seed):
    X = np.arange(n)
    train, test = train_test_split(X, test_size=test_size, random_state=seed)
    assert sorted(np.concatenate([train, test]).tolist()) == list(range(n))
    assert len(test) == max(1, int(round(n * test_size)))


@given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=2, max_size=40))
@settings(max_examples=50)
def test_label_binarizer_transform_consistent_with_classes(labels):
    binarizer = LabelBinarizer().fit(labels)
    if len(binarizer.classes_) != 2:
        return
    out = binarizer.transform(labels).ravel()
    positive = binarizer.classes_[1]
    assert all(
        (v == 1.0) == (label == positive) for v, label in zip(out, labels)
    )
