"""Unit tests for the preprocessing transformers (§5.2 reference behaviour)."""

import math

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.frame import DataFrame
from repro.learn import (
    Binarizer,
    KBinsDiscretizer,
    LabelBinarizer,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
    label_binarize,
)


class TestSimpleImputer:
    def test_mean(self):
        imputer = SimpleImputer(strategy="mean")
        out = imputer.fit_transform(np.array([[1.0], [None], [3.0]], dtype=object))
        assert [row[0] for row in out] == [1.0, 2.0, 3.0]

    def test_median(self):
        imputer = SimpleImputer(strategy="median")
        out = imputer.fit_transform(
            np.array([[1.0], [None], [2.0], [10.0]], dtype=object)
        )
        assert out[1][0] == 2.0

    def test_most_frequent(self):
        imputer = SimpleImputer(strategy="most_frequent")
        out = imputer.fit_transform(
            np.array([["a"], ["b"], ["b"], [None]], dtype=object)
        )
        assert out[3][0] == "b"

    def test_most_frequent_tie_picks_smallest(self):
        imputer = SimpleImputer(strategy="most_frequent")
        imputer.fit(np.array([["b"], ["a"], [None]], dtype=object))
        assert imputer.statistics_ == ["a"]

    def test_constant(self):
        imputer = SimpleImputer(strategy="constant", fill_value=0)
        out = imputer.fit_transform(np.array([[None]], dtype=object))
        assert out[0][0] == 0

    def test_fit_transform_separation(self):
        # fitting statistics must not be recomputed at transform time
        imputer = SimpleImputer(strategy="mean")
        imputer.fit(np.array([[2.0], [4.0]], dtype=object))
        out = imputer.transform(np.array([[None], [100.0]], dtype=object))
        assert out[0][0] == 3.0

    def test_dataframe_input(self):
        frame = DataFrame({"x": [1.0, None], "y": ["a", None]})
        imputer = SimpleImputer(strategy="most_frequent").fit(frame)
        assert imputer.statistics_ == [1.0, "a"]

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            SimpleImputer(strategy="nope")

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            SimpleImputer().transform(np.zeros((1, 1)))

    def test_column_count_mismatch(self):
        imputer = SimpleImputer().fit(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            imputer.transform(np.zeros((2, 3)))


class TestOneHotEncoder:
    def test_categories_sorted(self):
        enc = OneHotEncoder().fit(np.array([["b"], ["a"], ["b"]], dtype=object))
        assert enc.categories_ == [["a", "b"]]

    def test_transform_shape_and_values(self):
        enc = OneHotEncoder()
        out = enc.fit_transform(np.array([["b"], ["a"], ["b"]], dtype=object))
        assert out.tolist() == [[0.0, 1.0], [1.0, 0.0], [0.0, 1.0]]

    def test_multi_column(self):
        data = np.array([["a", "x"], ["b", "y"]], dtype=object)
        out = OneHotEncoder().fit_transform(data)
        assert out.shape == (2, 4)
        assert out.sum(axis=1).tolist() == [2.0, 2.0]

    def test_unknown_raises(self):
        enc = OneHotEncoder().fit(np.array([["a"]], dtype=object))
        with pytest.raises(ValueError):
            enc.transform(np.array([["zzz"]], dtype=object))

    def test_handle_unknown_ignore(self):
        enc = OneHotEncoder(handle_unknown="ignore").fit(
            np.array([["a"]], dtype=object)
        )
        out = enc.transform(np.array([["zzz"]], dtype=object))
        assert out.tolist() == [[0.0]]

    def test_null_encodes_all_zero(self):
        enc = OneHotEncoder().fit(np.array([["a"], [None]], dtype=object))
        out = enc.transform(np.array([[None]], dtype=object))
        assert out.tolist() == [[0.0]]

    def test_sparse_not_supported(self):
        with pytest.raises(ValueError):
            OneHotEncoder(sparse=True)


class TestStandardScaler:
    def test_standardises_to_zero_mean_unit_var(self):
        data = np.array([[1.0], [2.0], [3.0]])
        out = StandardScaler().fit_transform(data)
        assert out.mean() == pytest.approx(0.0)
        assert out.std() == pytest.approx(1.0)

    def test_population_stddev(self):
        scaler = StandardScaler().fit(np.array([[1.0], [3.0]]))
        # ddof=0: std of [1, 3] is 1, not sqrt(2)
        assert scaler.scale_[0] == pytest.approx(1.0)

    def test_constant_column_passes_through(self):
        out = StandardScaler().fit_transform(np.array([[5.0], [5.0]]))
        assert out.tolist() == [[0.0], [0.0]]

    def test_fit_params_reused_on_new_data(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        out = scaler.transform(np.array([[4.0]]))
        assert out[0][0] == pytest.approx(3.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 1)))


class TestKBinsDiscretizer:
    def test_uniform_bins(self):
        disc = KBinsDiscretizer(n_bins=4)
        data = np.array([[0.0], [1.0], [2.0], [3.0], [4.0]])
        out = disc.fit_transform(data)
        assert out.ravel().tolist() == [0.0, 1.0, 2.0, 3.0, 3.0]

    def test_out_of_range_clamped(self):
        disc = KBinsDiscretizer(n_bins=4).fit(np.array([[0.0], [4.0]]))
        out = disc.transform(np.array([[-10.0], [99.0]]))
        assert out.ravel().tolist() == [0.0, 3.0]

    def test_onehot_dense(self):
        disc = KBinsDiscretizer(n_bins=2, encode="onehot-dense")
        out = disc.fit_transform(np.array([[0.0], [10.0]]))
        assert out.tolist() == [[1.0, 0.0], [0.0, 1.0]]

    def test_constant_column(self):
        disc = KBinsDiscretizer(n_bins=3)
        out = disc.fit_transform(np.array([[7.0], [7.0]]))
        assert out.ravel().tolist() == [0.0, 0.0]

    def test_rejects_other_strategies(self):
        with pytest.raises(ValueError):
            KBinsDiscretizer(strategy="quantile")

    def test_rejects_single_bin(self):
        with pytest.raises(ValueError):
            KBinsDiscretizer(n_bins=1)


class TestBinarizer:
    def test_strict_threshold(self):
        out = Binarizer(threshold=50).fit_transform(
            np.array([[49.0], [50.0], [51.0]])
        )
        # sklearn semantics: strictly greater than the threshold
        assert out.ravel().tolist() == [0.0, 0.0, 1.0]

    def test_default_threshold_zero(self):
        out = Binarizer().fit_transform(np.array([[-1.0], [0.5]]))
        assert out.ravel().tolist() == [0.0, 1.0]


class TestLabelBinarize:
    def test_binary_single_column(self):
        out = label_binarize(["no", "yes", "no"], classes=["no", "yes"])
        assert out.shape == (3, 1)
        assert out.ravel().tolist() == [0.0, 1.0, 0.0]

    def test_multiclass(self):
        out = label_binarize(["a", "c"], classes=["a", "b", "c"])
        assert out.tolist() == [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]

    def test_label_binarizer_class(self):
        lb = LabelBinarizer().fit(["x", "y", "x"])
        assert lb.classes_ == ["x", "y"]
        assert lb.transform(["y"]).ravel().tolist() == [1.0]
