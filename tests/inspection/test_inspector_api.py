"""Tests for the PipelineInspector builder API and result object."""

import pytest

from repro.errors import InspectionError
from repro.inspection import (
    HistogramForColumns,
    MaterializeFirstOutputRows,
    NoBiasIntroducedFor,
    NoIllegalFeatures,
    PipelineInspector,
    RowLineage,
)

SOURCE = """
from repro.frame import DataFrame

data = DataFrame({'a': [1, 2, 3], 's': ['x', 'y', 'x']})
out = data[data['a'] > 1]
"""


class TestBuilder:
    def test_from_py_file(self, tmp_path):
        path = tmp_path / "pipe.py"
        path.write_text(SOURCE)
        result = PipelineInspector.on_pipeline_from_py_file(str(path)).execute()
        assert len(result.dag.nodes) > 0

    def test_add_checks_plural(self):
        inspector = PipelineInspector.on_pipeline_from_string(SOURCE)
        inspector.add_checks(
            [NoBiasIntroducedFor(["s"]), NoIllegalFeatures()]
        )
        result = inspector.execute()
        assert len(result.check_to_check_results) == 2

    def test_add_required_inspections_plural(self):
        result = (
            PipelineInspector.on_pipeline_from_string(SOURCE)
            .add_required_inspections([RowLineage(2), MaterializeFirstOutputRows(2)])
            .execute()
        )
        node = result.nodes_in_order()[0]
        assert RowLineage(2) in result.dag_node_to_inspection_results[node]

    def test_duplicate_inspections_deduplicated(self):
        inspector = (
            PipelineInspector.on_pipeline_from_string(SOURCE)
            .add_required_inspection(HistogramForColumns(["s"]))
            .add_check(NoBiasIntroducedFor(["s"]))  # requires the same one
        )
        assert len(inspector._all_inspections()) == 1

    def test_invalid_sql_mode_rejected(self):
        inspector = PipelineInspector.on_pipeline_from_string(SOURCE)
        with pytest.raises(InspectionError):
            inspector.execute_in_sql(mode="TABLES")

    def test_default_connector_is_postgres(self):
        result = PipelineInspector.on_pipeline_from_string(
            "import repro.frame as pd"
        ).execute_in_sql()
        assert result.extras["backend"].connector.name == "postgres"

    def test_to_sql_smoke(self, tmp_path):
        csv = tmp_path / "d.csv"
        csv.write_text("a,s\n1,x\n2,y\n")
        source = (
            "import repro.frame as pd\n"
            f"data = pd.read_csv({str(csv)!r})\n"
            "data = data[data['a'] > 1]\n"
        )
        sql = PipelineInspector.on_pipeline_from_string(source).to_sql(mode="CTE")
        assert "CREATE TABLE" in sql
        assert "WITH" in sql

    def test_fluent_chaining_returns_self(self):
        inspector = PipelineInspector.on_pipeline_from_string(SOURCE)
        assert inspector.add_check(NoIllegalFeatures()) is inspector
        assert inspector.add_required_inspection(RowLineage(1)) is inspector


class TestResultObject:
    def test_nodes_in_order_sorted(self):
        result = PipelineInspector.on_pipeline_from_string(SOURCE).execute()
        ids = [n.node_id for n in result.nodes_in_order()]
        assert ids == sorted(ids)

    def test_histograms_for_skips_other_inspections(self):
        result = (
            PipelineInspector.on_pipeline_from_string(SOURCE)
            .add_required_inspection(RowLineage(1))
            .execute()
        )
        assert result.histograms_for(HistogramForColumns(["s"])) == {}

    def test_checks_passed_with_no_checks(self):
        result = PipelineInspector.on_pipeline_from_string(SOURCE).execute()
        assert result.checks_passed

    def test_pipeline_globals_exposed(self):
        result = PipelineInspector.on_pipeline_from_string(SOURCE).execute()
        assert "out" in result.extras["pipeline_globals"]

    def test_sql_source_absent_in_python_mode(self):
        result = PipelineInspector.on_pipeline_from_string(SOURCE).execute()
        assert result.sql_source is None
