"""Unit tests for the Lineage annotation container."""

import numpy as np
import pytest

from repro.inspection.annotations import Lineage


@pytest.fixture
def lineage():
    return Lineage.source("patients", 5)


class TestSourceLineage:
    def test_identity_row_ids(self, lineage):
        assert lineage.row_ids_for("patients", 3) == [3]

    def test_sources(self, lineage):
        assert lineage.sources == ["patients"]

    def test_unknown_source_empty(self, lineage):
        assert lineage.row_ids_for("nope", 0) == []


class TestGather:
    def test_subset(self, lineage):
        out = lineage.gather(np.array([4, 0]))
        assert out.n_rows == 2
        assert out.row_ids_for("patients", 0) == [4]
        assert out.row_ids_for("patients", 1) == [0]

    def test_duplication(self, lineage):
        out = lineage.gather(np.array([2, 2, 2]))
        assert [out.row_ids_for("patients", i) for i in range(3)] == [[2]] * 3

    def test_outer_padding_gives_no_lineage(self, lineage):
        out = lineage.gather(np.array([1, -1]))
        assert out.row_ids_for("patients", 0) == [1]
        assert out.row_ids_for("patients", 1) == []


class TestMerge:
    def test_two_sources_combined(self):
        left = Lineage.source("a", 3).gather(np.array([0, 1]))
        right = Lineage.source("b", 3).gather(np.array([2, 0]))
        out = left.merged_with(right, 2)
        assert sorted(out.sources) == ["a", "b"]
        assert out.row_ids_for("a", 0) == [0]
        assert out.row_ids_for("b", 0) == [2]

    def test_collision_left_wins(self):
        left = Lineage.source("a", 2)
        right = Lineage.source("a", 2).gather(np.array([1, 0]))
        out = left.merged_with(right, 2)
        assert out.row_ids_for("a", 0) == [0]


class TestGroup:
    def test_groups_collect_members(self, lineage):
        out = lineage.group([[0, 2], [1, 3, 4]])
        assert out.n_rows == 2
        assert out.row_ids_for("patients", 0) == [0, 2]
        assert out.row_ids_for("patients", 1) == [1, 3, 4]

    def test_group_then_gather(self, lineage):
        grouped = lineage.group([[0, 1], [2, 3]])
        out = grouped.gather(np.array([1, 1]))
        assert out.row_ids_for("patients", 0) == [2, 3]
        assert out.row_ids_for("patients", 1) == [2, 3]

    def test_group_of_grouped_flattens(self, lineage):
        grouped = lineage.group([[0, 1], [2], [3, 4]])
        regrouped = grouped.group([[0, 2]])
        assert regrouped.row_ids_for("patients", 0) == [0, 1, 3, 4]

    def test_group_drops_missing(self, lineage):
        padded = lineage.gather(np.array([0, -1, 2]))
        grouped = padded.group([[0, 1, 2]])
        assert grouped.row_ids_for("patients", 0) == [0, 2]

    def test_copy_independent(self, lineage):
        clone = lineage.copy()
        clone.simple["patients"][0] = 99
        assert lineage.row_ids_for("patients", 0) == [0]
