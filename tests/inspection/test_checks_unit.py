"""Unit tests for the checks module (ratio math, verdict assembly)."""

import networkx as nx
import pytest

from repro.inspection.checks import (
    BiasDistributionChange,
    CheckStatus,
    NoBiasIntroducedFor,
    NoIllegalFeatures,
    _ratios,
)
from repro.inspection.inspections import HistogramForColumns
from repro.inspection.operators import DagNode, OperatorType


def _node(node_id, op, lineno=1, columns=()):
    return DagNode(node_id, op, "test", lineno=lineno, columns=columns)


def _dag_with_results(before, after, op=OperatorType.SELECTION):
    source = _node(0, OperatorType.DATA_SOURCE)
    sink = _node(1, op, lineno=5)
    dag = nx.DiGraph()
    dag.add_edge(source, sink)
    inspection = HistogramForColumns(["s"])
    results = {
        source: {inspection: {"s": before}},
        sink: {inspection: {"s": after}},
    }
    return dag, results


class TestRatios:
    def test_ratios_normalise(self):
        assert _ratios({"a": 1, "b": 3}) == {"a": 0.25, "b": 0.75}

    def test_empty_histogram(self):
        assert _ratios({}) == {}


class TestNoBiasIntroducedFor:
    def test_passes_below_threshold(self):
        dag, results = _dag_with_results({"x": 5, "y": 5}, {"x": 4, "y": 5})
        check = NoBiasIntroducedFor(["s"], threshold=0.25)
        outcome = check.evaluate(dag, results)
        assert outcome.status is CheckStatus.SUCCESS

    def test_fails_at_threshold_inclusive(self):
        # the paper treats a change of exactly 25% as a bias
        dag, results = _dag_with_results({"x": 2, "y": 2}, {"x": 3, "y": 1})
        check = NoBiasIntroducedFor(["s"], threshold=0.25)
        outcome = check.evaluate(dag, results)
        assert outcome.status is CheckStatus.FAILURE
        assert outcome.details["failed"][0].max_abs_change == pytest.approx(0.25)

    def test_vanished_group_counts_as_full_change(self):
        dag, results = _dag_with_results({"x": 1, "y": 9}, {"y": 9})
        outcome = NoBiasIntroducedFor(["s"], 0.05).evaluate(dag, results)
        assert outcome.status is CheckStatus.FAILURE

    def test_non_row_changing_ops_ignored(self):
        dag, results = _dag_with_results(
            {"x": 9, "y": 1}, {"x": 1, "y": 9}, op=OperatorType.PROJECTION
        )
        outcome = NoBiasIntroducedFor(["s"], 0.05).evaluate(dag, results)
        assert outcome.status is CheckStatus.SUCCESS
        assert outcome.details["distribution_changes"] == []

    def test_change_object_reports_deltas(self):
        change = BiasDistributionChange(
            _node(1, OperatorType.SELECTION),
            "s",
            {"x": 0.5, "y": 0.5},
            {"x": 0.75, "y": 0.25},
            0.25,
            acceptable=False,
        )
        assert change.changes() == {"x": 0.25, "y": -0.25}

    def test_description_names_line_and_column(self):
        dag, results = _dag_with_results({"x": 1, "y": 1}, {"x": 2})
        outcome = NoBiasIntroducedFor(["s"], 0.1).evaluate(dag, results)
        assert "line 5" in outcome.description
        assert "'s'" in outcome.description

    def test_hashable_value_object(self):
        assert NoBiasIntroducedFor(["a"], 0.2) == NoBiasIntroducedFor(["a"], 0.2)
        assert hash(NoBiasIntroducedFor(["a"])) == hash(NoBiasIntroducedFor(["a"]))

    def test_required_inspection_matches_columns(self):
        check = NoBiasIntroducedFor(["race", "age_group"])
        assert check.required_inspections() == [
            HistogramForColumns(["race", "age_group"])
        ]


class TestNoIllegalFeatures:
    def test_flags_default_blacklist(self):
        dag = nx.DiGraph()
        dag.add_node(
            _node(0, OperatorType.TRANSFORMER, columns=("race", "income"))
        )
        outcome = NoIllegalFeatures().evaluate(dag, {})
        assert outcome.status is CheckStatus.FAILURE

    def test_additional_names_case_insensitive(self):
        dag = nx.DiGraph()
        dag.add_node(
            _node(0, OperatorType.ESTIMATOR, columns=("County", "income"))
        )
        outcome = NoIllegalFeatures(["county"]).evaluate(dag, {})
        assert outcome.status is CheckStatus.FAILURE

    def test_ignores_non_model_operators(self):
        dag = nx.DiGraph()
        dag.add_node(_node(0, OperatorType.PROJECTION, columns=("race",)))
        outcome = NoIllegalFeatures().evaluate(dag, {})
        assert outcome.status is CheckStatus.SUCCESS
