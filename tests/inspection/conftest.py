"""Shared fixtures: a small dataset + pipeline for inspection tests."""

import pytest

from repro.datasets import generate_healthcare
from repro.pipelines import healthcare_source


@pytest.fixture(scope="session")
def healthcare_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("healthcare")
    generate_healthcare(str(directory), n_patients=200, seed=0)
    return str(directory)


@pytest.fixture(scope="session")
def healthcare_pandas_source(healthcare_dir):
    return healthcare_source(healthcare_dir, upto="pandas")


@pytest.fixture(scope="session")
def healthcare_full_source(healthcare_dir):
    return healthcare_source(healthcare_dir, upto="full")
