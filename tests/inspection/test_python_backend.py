"""Integration tests for the Python inspection path (DAG + inspections)."""

import pytest

from repro.inspection import (
    HistogramForColumns,
    MaterializeFirstOutputRows,
    NoBiasIntroducedFor,
    NoIllegalFeatures,
    OperatorType,
    PipelineInspector,
    RowLineage,
)
from repro.inspection.checks import CheckStatus


def _run(source, checks=(), inspections=()):
    inspector = PipelineInspector.on_pipeline_from_string(source, "<test>")
    for check in checks:
        inspector = inspector.add_check(check)
    for inspection in inspections:
        inspector = inspector.add_required_inspection(inspection)
    return inspector.execute()


SIMPLE = """
import repro.frame as pd
from repro.frame import DataFrame

data = DataFrame({'a': [1, 2, 3, 4], 's': ['x', 'x', 'y', 'y']})
out = data[data['a'] > 2]
"""


class TestDagExtraction:
    def test_node_types_in_order(self, healthcare_pandas_source):
        result = _run(healthcare_pandas_source)
        types = [n.operator_type for n in result.nodes_in_order()]
        assert types[0] == OperatorType.DATA_SOURCE
        assert types[1] == OperatorType.DATA_SOURCE
        assert OperatorType.JOIN in types
        assert OperatorType.GROUP_BY_AGG in types
        assert types[-1] == OperatorType.SELECTION

    def test_edges_follow_dataflow(self, healthcare_pandas_source):
        result = _run(healthcare_pandas_source)
        nodes = result.nodes_in_order()
        join = next(
            n for n in nodes if n.operator_type == OperatorType.JOIN
        )
        parents = list(result.dag.predecessors(join))
        assert len(parents) == 2
        assert all(
            p.operator_type == OperatorType.DATA_SOURCE for p in parents
        )

    def test_line_numbers_recorded(self, healthcare_pandas_source):
        result = _run(healthcare_pandas_source)
        assert all(n.lineno is not None for n in result.nodes_in_order())

    def test_full_pipeline_reaches_estimator_and_score(
        self, healthcare_full_source
    ):
        result = _run(healthcare_full_source)
        types = {n.operator_type for n in result.dag.nodes}
        assert OperatorType.TRANSFORMER in types
        assert OperatorType.CONCATENATION in types or OperatorType.TRANSFORMER in types
        assert OperatorType.TRAIN_TEST_SPLIT in types
        assert OperatorType.ESTIMATOR in types
        assert OperatorType.SCORE in types

    def test_pipeline_results_unchanged_by_inspection(self):
        # "each patched function returns exactly what the original would"
        result = _run(SIMPLE, inspections=[RowLineage(2)])
        out = result.extras["pipeline_globals"]["out"]
        assert out["a"].tolist() == [3, 4]


class TestHistogramInspection:
    def test_counts_on_data_source(self):
        result = _run(SIMPLE, inspections=[HistogramForColumns(["s"])])
        histograms = result.histograms_for(HistogramForColumns(["s"]))
        source_node = result.nodes_in_order()[0]
        assert histograms[source_node]["s"] == {"x": 2, "y": 2}

    def test_counts_after_selection(self):
        result = _run(SIMPLE, inspections=[HistogramForColumns(["s"])])
        histograms = result.histograms_for(HistogramForColumns(["s"]))
        last = result.nodes_in_order()[-1]
        assert histograms[last]["s"] == {"y": 2}

    def test_restores_projected_out_column(self):
        source = """
import repro.frame as pd
from repro.frame import DataFrame

data = DataFrame({'a': [1, 2, 3, 4], 's': ['x', 'x', 'y', 'y']})
data = data[['a']]          # 's' removed
data = data[data['a'] >= 2]  # still inspectable through lineage
"""
        result = _run(source, inspections=[HistogramForColumns(["s"])])
        histograms = result.histograms_for(HistogramForColumns(["s"]))
        last = result.nodes_in_order()[-1]
        # would be impossible without tuple tracking: s not in the frame
        assert histograms[last]["s"] == {"x": 1, "y": 2}

    def test_join_multiplies_counts(self):
        source = """
from repro.frame import DataFrame

left = DataFrame({'k': [1, 1, 2], 's': ['a', 'a', 'b']})
right = DataFrame({'k': [1, 1, 2]})
merged = left.merge(right, on='k')
"""
        result = _run(source, inspections=[HistogramForColumns(["s"])])
        histograms = result.histograms_for(HistogramForColumns(["s"]))
        last = result.nodes_in_order()[-1]
        assert histograms[last]["s"] == {"a": 4, "b": 1}

    def test_aggregated_rows_restore_all_members(self):
        source = """
from repro.frame import DataFrame

data = DataFrame({'g': ['u', 'u', 'v'], 's': ['x', 'y', 'y'], 'n': [1, 2, 3]})
agg = data.groupby('g').agg(total=('n', 'sum'))
"""
        result = _run(source, inspections=[HistogramForColumns(["s"])])
        histograms = result.histograms_for(HistogramForColumns(["s"]))
        last = result.nodes_in_order()[-1]
        # 2 groups but 3 underlying tuples (like unnesting array_agg'd ctids)
        assert histograms[last]["s"] == {"x": 1, "y": 2}


class TestOtherInspections:
    def test_materialize_first_rows(self):
        result = _run(SIMPLE, inspections=[MaterializeFirstOutputRows(2)])
        inspection = MaterializeFirstOutputRows(2)
        per_node = result.histograms_for(inspection)
        first = result.nodes_in_order()[0]
        assert len(per_node[first]) == 2

    def test_row_lineage_records_provenance(self):
        result = _run(SIMPLE, inspections=[RowLineage(3)])
        per_node = result.histograms_for(RowLineage(3))
        last = result.nodes_in_order()[-1]
        rows = per_node[last]
        assert rows, "no lineage rows materialised"
        assert all("lineage" in row for row in rows)


class TestChecks:
    def test_no_bias_check_passes_on_balanced_selection(self):
        source = """
from repro.frame import DataFrame

data = DataFrame({'a': [1, 2, 3, 4], 's': ['x', 'y', 'x', 'y']})
data = data[data['a'] > 2]   # removes one of each group
"""
        result = _run(source, checks=[NoBiasIntroducedFor(["s"], 0.25)])
        check_result = next(iter(result.check_to_check_results.values()))
        assert check_result.status is CheckStatus.SUCCESS

    def test_no_bias_check_fails_on_skewed_selection(self):
        source = """
from repro.frame import DataFrame

data = DataFrame({'a': [1, 2, 3, 4], 's': ['x', 'x', 'x', 'y']})
data = data[data['a'] > 3]   # keeps only the 'y' row
"""
        result = _run(source, checks=[NoBiasIntroducedFor(["s"], 0.25)])
        check_result = next(iter(result.check_to_check_results.values()))
        assert check_result.status is CheckStatus.FAILURE
        failed = check_result.details["failed"]
        assert failed[0].column == "s"
        assert failed[0].max_abs_change >= 0.25

    def test_healthcare_bias_flagged_at_selection(self, healthcare_dir):
        from repro.pipelines import healthcare_source

        source = healthcare_source(healthcare_dir, upto="pandas")
        result = _run(
            source, checks=[NoBiasIntroducedFor(["race", "age_group"], 0.25)]
        )
        check_result = next(iter(result.check_to_check_results.values()))
        flagged_columns = {c.column for c in check_result.details["failed"]}
        assert flagged_columns == {"age_group"}  # race stays within bounds

    def test_no_illegal_features_flags_race(self, healthcare_full_source):
        result = _run(healthcare_full_source, checks=[NoIllegalFeatures()])
        check_result = next(iter(result.check_to_check_results.values()))
        # the healthcare featurisation one-hot-encodes 'race'
        assert check_result.status is CheckStatus.FAILURE
        assert "race" in check_result.description

    def test_no_illegal_features_passes_without_them(self):
        source = """
from repro.frame import DataFrame
from repro.learn import StandardScaler

data = DataFrame({'income': [1.0, 2.0], 'age_x': [3.0, 4.0]})
features = StandardScaler().fit_transform(data)
"""
        result = _run(source, checks=[NoIllegalFeatures()])
        check_result = next(iter(result.check_to_check_results.values()))
        assert check_result.status is CheckStatus.SUCCESS

    def test_checks_passed_property(self, healthcare_pandas_source):
        result = _run(
            healthcare_pandas_source, checks=[NoBiasIntroducedFor(["race"], 0.9)]
        )
        assert result.checks_passed


class TestMonkeyPatchingHygiene:
    def test_patches_are_restored_after_execute(self):
        import repro.frame as frame_module
        from repro.frame.dataframe import DataFrame

        original_getitem = DataFrame.__getitem__
        original_read_csv = frame_module.read_csv
        _run(SIMPLE)
        assert DataFrame.__getitem__ is original_getitem
        assert frame_module.read_csv is original_read_csv

    def test_patches_restored_on_pipeline_error(self):
        from repro.frame.dataframe import DataFrame

        original_getitem = DataFrame.__getitem__
        with pytest.raises(ZeroDivisionError):
            _run("x = 1 / 0")
        assert DataFrame.__getitem__ is original_getitem

    def test_rerunning_same_source_is_isolated(self):
        first = _run(SIMPLE, inspections=[HistogramForColumns(["s"])])
        second = _run(SIMPLE, inspections=[HistogramForColumns(["s"])])
        assert len(first.dag.nodes) == len(second.dag.nodes)
