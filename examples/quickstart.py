"""Quickstart: inspect a tiny pipeline in Python and in SQL.

Builds a five-line preprocessing pipeline over inline data, runs it through
the inspection framework twice — natively and transpiled to SQL — and
prints the distribution-frequency (ratio) report plus the generated SQL.

Run:  python examples/quickstart.py
"""

from repro.core.connectors import PostgresqlConnector
from repro.inspection import (
    HistogramForColumns,
    NoBiasIntroducedFor,
    PipelineInspector,
)

import os
import tempfile

# -- a miniature dataset on disk (read_csv is the pipeline's data source) --
directory = tempfile.mkdtemp()
with open(os.path.join(directory, "people.csv"), "w") as handle:
    handle.write("name,group,score\n")
    rows = [("p%d" % i, "a" if i % 3 else "b", i % 7) for i in range(60)]
    handle.writelines(f"{n},{g},{s}\n" for n, g, s in rows)

PIPELINE = f"""
import repro.frame as pd

data = pd.read_csv({os.path.join(directory, 'people.csv')!r})
data = data[['name', 'group', 'score']]
data = data[data['score'] > 4]          # does this skew 'group'?
data = data[['name', 'score']]          # 'group' is gone now...
"""

check = NoBiasIntroducedFor(["group"], threshold=0.1)

# -- native execution (mlinspect-style row-wise inspection) ---------------
python_result = (
    PipelineInspector.on_pipeline_from_string(PIPELINE, "<quickstart>")
    .add_check(check)
    .execute()
)

# -- SQL execution: same API, computation offloaded to the database -------
sql_result = (
    PipelineInspector.on_pipeline_from_string(PIPELINE, "<quickstart>")
    .add_check(check)
    .execute_in_sql(dbms_connector=PostgresqlConnector(), mode="CTE")
)

for label, result in (("python", python_result), ("sql", sql_result)):
    verdict = result.check_to_check_results[check]
    print(f"[{label}] bias check: {verdict.status.value} — {verdict.description}")

# ratios per operator: even after 'group' was projected away, the tuple
# tracking (ctid) restores it
histograms = sql_result.histograms_for(HistogramForColumns(["group"]))
print("\ngroup counts per operator (SQL-computed):")
for node, payload in histograms.items():
    if payload:
        print(f"  line {node.lineno:>2} {node.operator_type.name:<12}", payload["group"])

print("\ngenerated SQL (one CTE per pipeline line):\n")
print(sql_result.sql_source)
