"""End-to-end compas run: preprocessing in SQL, training in Python.

Reproduces the §6.4 setting: the complete compas pipeline — projections,
selections, replace, label binarisation, imputation, one-hot encoding,
binning, logistic regression, scoring on a separate test set — executes
natively and with SQL offloading; the resulting model accuracies must be
identical, and the wall-clock comparison is printed.

Run:  python examples/compas_end_to_end.py
"""

import tempfile
import time

from repro.core.connectors import PostgresqlConnector, UmbraConnector
from repro.datasets import generate_compas
from repro.inspection import NoBiasIntroducedFor, PipelineInspector
from repro.pipelines import compas_source

directory = tempfile.mkdtemp()
generate_compas(directory, n_train=2167, n_test=800, seed=0)
source = compas_source(directory, upto="full")
check = NoBiasIntroducedFor(["sex", "race"], threshold=0.25)


def run(label, **sql_kwargs):
    inspector = PipelineInspector.on_pipeline_from_string(
        source, "<compas>"
    ).add_check(check)
    started = time.perf_counter()
    if sql_kwargs:
        result = inspector.execute_in_sql(**sql_kwargs)
    else:
        result = inspector.execute()
    elapsed = time.perf_counter() - started
    score = result.extras["pipeline_globals"]["score"]
    verdict = result.check_to_check_results[check]
    print(
        f"[{label:<24}] {elapsed:6.2f}s  accuracy={score:.4f}  "
        f"bias check: {verdict.status.value}"
    )
    return score


scores = [
    run("python"),
    run(
        "postgresql (mat. views)",
        dbms_connector=PostgresqlConnector(),
        mode="VIEW",
        materialize=True,
    ),
    run("umbra (views)", dbms_connector=UmbraConnector(), mode="VIEW"),
]

assert all(abs(s - scores[0]) < 1e-9 for s in scores), scores
print("\nall backends trained to the identical accuracy — the offloaded")
print("preprocessing is numerically equivalent to the native pipeline.")
