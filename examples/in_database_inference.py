"""In-database inference: the paper's §7 outlook, implemented.

Trains the adult-simple model in Python, then exports the fitted
StandardScaler (Listing 17 expressions) and the fitted decision tree (as a
nested-CASE SQL expression) into the database and computes the test
accuracy *inside* it — no final data transfer, the extension the paper's
conclusion proposes.

Run:  python examples/in_database_inference.py
"""

import tempfile

from repro.core.model_export import accuracy_query, model_to_sql
from repro.datasets import ADULT_COLUMNS, generate_adult
from repro.frame import read_csv
from repro.learn import DecisionTreeClassifier, StandardScaler, label_binarize
from repro.sqldb import Database

NUMERIC = {
    "age", "fnlwgt", "education-num", "capital-gain", "capital-loss",
    "hours-per-week",
}
FEATURES = ["age", "education-num", "hours-per-week"]

directory = tempfile.mkdtemp()
paths = generate_adult(directory, n_train=4000, n_test=1500, seed=0)

# -- train in Python (preprocessing as in the adult-simple pipeline) -------
train = read_csv(paths["train"], na_values="?").dropna()
scaler = StandardScaler()
X_train = scaler.fit_transform(train[FEATURES])
y_train = label_binarize(train["income-per-year"], classes=["<=50K", ">50K"])
model = DecisionTreeClassifier(max_depth=6).fit(X_train, y_train)

# -- load the raw test set into the database -------------------------------
db = Database("umbra")
all_columns = ["index_"] + ADULT_COLUMNS
column_defs = ", ".join(
    f'"{name}" '
    + ("serial" if name == "index_" else "float" if name in NUMERIC else "text")
    for name in all_columns
)
db.execute(f"CREATE TABLE adult_test ({column_defs})")
copy_columns = ", ".join(f'"{name}"' for name in all_columns)
db.execute(
    f"COPY adult_test ({copy_columns}) FROM '{paths['test']}' "
    "WITH (DELIMITER ',', NULL '?', FORMAT CSV, HEADER TRUE)"
)

# -- push the fitted scaler as a view (Listing 17 with frozen parameters) --
scaled = ", ".join(
    f'(("{name}") - {float(mean)!r}) / {float(scale)!r} AS "{name}"'
    for name, mean, scale in zip(FEATURES, scaler.mean_, scaler.scale_)
)
db.execute(
    f"CREATE VIEW test_features AS SELECT {scaled}, "
    "(CASE WHEN \"income-per-year\" = '>50K' THEN 1 ELSE 0 END) AS label "
    "FROM adult_test"
)

# -- push the fitted model and score entirely inside the database ----------
prediction_sql = model_to_sql(model, FEATURES)
print("prediction expression (truncated):", prediction_sql[:110], "...\n")
in_db = db.execute(
    accuracy_query(model, "test_features", FEATURES, "label")
).scalar()

# -- cross-check against the classic extract-and-score path ----------------
test = read_csv(paths["test"], na_values="?")
X_test = scaler.transform(test[FEATURES])
y_test = label_binarize(test["income-per-year"], classes=["<=50K", ">50K"])
in_python = model.score(X_test, y_test)

print(f"accuracy computed inside the database: {in_db:.4f}")
print(f"accuracy computed after extraction:    {in_python:.4f}")
assert abs(in_db - in_python) < 1e-9
print("identical — no final data transfer needed.")
