"""Emit the inspection-enabled SQL for a pipeline without executing it.

The paper highlights generating the SQL independently of any database
connection (unlike Grizzly): `to_sql` deduces the schema from a data
sample, transpiles every pipeline line into one view/CTE, and returns the
full script — here printed in both representations, Listing-5 style.

Run:  python examples/generate_sql_only.py
"""

import tempfile

from repro.datasets import generate_healthcare
from repro.inspection import PipelineInspector
from repro.pipelines import healthcare_source

directory = tempfile.mkdtemp()
generate_healthcare(directory, n_patients=100, seed=0)
source = healthcare_source(directory, upto="pandas")

for mode in ("CTE", "VIEW"):
    sql = PipelineInspector.on_pipeline_from_string(
        source, "<healthcare>"
    ).to_sql(mode=mode)
    print(f"{'=' * 30} mode={mode} {'=' * 30}")
    print(sql)
