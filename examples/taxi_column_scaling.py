"""Figure-11 style micro-study: cost of inspecting more columns.

One selection over the taxi data while the number of inspected sensitive
columns grows; prints the runtime per engine/mode so the linear growth of
the PostgreSQL CTE mode (each inspection re-runs the chain) is visible
against the view modes.

Run:  python examples/taxi_column_scaling.py  [n_rows]
"""

import sys
import tempfile
import time

from repro.core.connectors import PostgresqlConnector, UmbraConnector
from repro.datasets import generate_taxi
from repro.inspection import NoBiasIntroducedFor, PipelineInspector
from repro.pipelines import taxi_source

COLUMNS = [
    "passenger_count",
    "trip_distance",
    "PULocationID",
    "DOLocationID",
    "payment_type",
]

n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
directory = tempfile.mkdtemp()
generate_taxi(directory, n_rows=n_rows, seed=0)
source = taxi_source(directory)

configs = [
    ("python", {}),
    ("pg CTE", dict(dbms_connector=PostgresqlConnector(), mode="CTE")),
    ("pg VIEW", dict(dbms_connector=PostgresqlConnector(), mode="VIEW")),
    ("umbra CTE", dict(dbms_connector=UmbraConnector(), mode="CTE")),
    ("umbra VIEW", dict(dbms_connector=UmbraConnector(), mode="VIEW")),
]

print(f"taxi selection over {n_rows} tuples; seconds per configuration\n")
print("#cols  " + "".join(f"{label:>12}" for label, _ in configs))
for k in range(1, len(COLUMNS) + 1):
    check = NoBiasIntroducedFor(COLUMNS[:k], threshold=0.25)
    cells = []
    for label, kwargs in configs:
        inspector = PipelineInspector.on_pipeline_from_string(
            source, "<taxi>"
        ).add_check(check)
        started = time.perf_counter()
        if kwargs:
            inspector.execute_in_sql(**kwargs)
        else:
            inspector.execute()
        cells.append(time.perf_counter() - started)
    print(f"{k:>5}  " + "".join(f"{c:>12.3f}" for c in cells))
