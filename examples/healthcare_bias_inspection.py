"""The paper's running example: bias inspection of the healthcare pipeline.

Generates the healthcare dataset, runs the Listing-4 pipeline under the
NoBiasIntroducedFor check (race + age_group, 25% threshold) natively and
inside both database profiles, and prints the Figure-4-style ratio-change
report.  The county selection flags age_group while race stays acceptable.

Run:  python examples/healthcare_bias_inspection.py
"""

import tempfile

from repro.core.connectors import PostgresqlConnector, UmbraConnector
from repro.datasets import generate_healthcare
from repro.inspection import NoBiasIntroducedFor, PipelineInspector
from repro.pipelines import healthcare_source

directory = tempfile.mkdtemp()
generate_healthcare(directory, n_patients=889, seed=0)
source = healthcare_source(directory, upto="sklearn")
check = NoBiasIntroducedFor(["race", "age_group"], threshold=0.25)


def inspect(label, **sql_kwargs):
    inspector = PipelineInspector.on_pipeline_from_string(
        source, "<healthcare>"
    ).add_check(check)
    if sql_kwargs:
        result = inspector.execute_in_sql(**sql_kwargs)
    else:
        result = inspector.execute()
    verdict = result.check_to_check_results[check]
    print(f"[{label:<22}] {verdict.status.value}: {verdict.description}")
    return result


result = inspect("python (mlinspect-style)")
inspect("postgresql, CTE mode", dbms_connector=PostgresqlConnector(), mode="CTE")
inspect(
    "postgresql, mat. views",
    dbms_connector=PostgresqlConnector(),
    mode="VIEW",
    materialize=True,
)
inspect("umbra, VIEW mode", dbms_connector=UmbraConnector(), mode="VIEW")

print("\nratio changes per bias-relevant operator (Figure 4 style):")
verdict = result.check_to_check_results[check]
for change in verdict.details["distribution_changes"]:
    marker = "OK " if change.acceptable else "BIAS"
    print(
        f"  [{marker}] line {change.node.lineno:>2} "
        f"{change.node.operator_type.name:<16} {change.column:<10} "
        f"max |delta| = {change.max_abs_change:.3f}"
    )
    if not change.acceptable:
        for value, delta in sorted(change.changes().items(), key=lambda kv: str(kv[0])):
            print(f"          {value}: {delta:+.3f}")
