"""Network server benchmark: remote client vs in-process sessions.

Two sweeps over the same engine and workload, both written to
``BENCH_server.json``:

* **throughput** — statements/s as the number of concurrent clients
  grows (1 → 16), once through in-process :mod:`repro.sqldb.dbapi`
  sessions and once through :mod:`repro.sqldb.client` connections to a
  :class:`~repro.sqldb.server.DatabaseServer` on loopback.  The gap
  between the two columns *is* the wire: framing, JSON codec, syscalls
  and the extra thread hop — the client/server tax the paper pays by
  measuring through psycopg2.
* **latency** — per-statement percentiles (p50/p95) for one client on
  an idle server, the floor a remote pipeline statement cannot beat.

The workload mixes a parameterized INSERT with a small aggregate SELECT
over a pre-loaded table, matching the statement shapes inspection
pipelines issue.

Scale control
-------------
``REPRO_BENCH_SERVER_STATEMENTS``  statements per client per
configuration (default ``40``).
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time

from harness import print_table
from repro.sqldb import client, dbapi
from repro.sqldb.engine import Database
from repro.sqldb.server import DatabaseServer

OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_server.json")

CLIENT_COUNTS = (1, 2, 4, 8, 16)
SEED_ROWS = 2000


def _statements_per_client() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVER_STATEMENTS", "40"))


def _make_db() -> Database:
    db = Database("umbra")
    db.execute("CREATE TABLE bench (tag text, val int)")
    db.executemany(
        "INSERT INTO bench (tag, val) VALUES (?, ?)",
        [(f"t{i % 17}", i % 251) for i in range(SEED_ROWS)],
    )
    return db


SELECT_SQL = (
    "SELECT tag, count(*) AS c, sum(val) AS s FROM bench "
    "WHERE val % 2 = 0 GROUP BY tag"
)
INSERT_SQL = "INSERT INTO bench (tag, val) VALUES (%s, %s)"


def _workload(conn, wid: int, statements: int) -> None:
    """Alternate a parameterized INSERT and an aggregate SELECT."""
    cursor = conn.cursor()
    for i in range(statements):
        if i % 2:
            cursor.execute(INSERT_SQL, (f"w{wid}", i))
        else:
            cursor.execute(SELECT_SQL)
            cursor.fetchall()


def _sweep(statements: int, open_connection) -> list[dict]:
    """Throughput vs client count for one connection factory."""
    results = []
    for n_clients in CLIENT_COUNTS:
        barrier = threading.Barrier(n_clients + 1)
        errors: list[BaseException] = []

        def worker(wid: int) -> None:
            conn = open_connection()
            try:
                barrier.wait()
                _workload(conn, wid, statements)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
            finally:
                conn.close()

        threads = [
            threading.Thread(target=worker, args=(wid,))
            for wid in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        total = n_clients * statements
        results.append(
            {
                "clients": n_clients,
                "statements": total,
                "seconds": elapsed,
                "statements_per_s": total / elapsed,
            }
        )
    return results


def run_throughput(statements: int) -> dict:
    # in-process: each "client" is its own engine session via DB-API
    db = _make_db()
    try:
        in_process = _sweep(
            statements, lambda: dbapi.connect(database=db)
        )
    finally:
        db.close()

    # remote: same engine shape behind a loopback DatabaseServer
    db = _make_db()
    try:
        with DatabaseServer(db, max_connections=64) as server:
            remote = _sweep(
                statements,
                lambda: client.connect("127.0.0.1", server.port),
            )
    finally:
        db.close()

    return {
        "statements_per_client": statements,
        "in_process": in_process,
        "remote": remote,
    }


def run_latency(statements: int) -> dict:
    """Single-client per-statement latency through the socket."""
    db = _make_db()
    samples: list[float] = []
    try:
        with DatabaseServer(db) as server:
            conn = client.connect("127.0.0.1", server.port)
            try:
                cursor = conn.cursor()
                cursor.execute(SELECT_SQL).fetchall()  # warm the plan cache
                for i in range(max(statements, 20)):
                    started = time.perf_counter()
                    if i % 2:
                        cursor.execute(INSERT_SQL, ("lat", i))
                    else:
                        cursor.execute(SELECT_SQL).fetchall()
                    samples.append(time.perf_counter() - started)
            finally:
                conn.close()
    finally:
        db.close()
    samples.sort()
    return {
        "statements": len(samples),
        "p50_s": samples[len(samples) // 2],
        "p95_s": samples[int(len(samples) * 0.95)],
        "max_s": samples[-1],
    }


def run_sweep(statements: int | None = None) -> dict:
    statements = statements or _statements_per_client()
    return {
        "benchmark": "bench_server",
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "throughput": run_throughput(statements),
        "latency": run_latency(statements),
    }


def write_report(report: dict, path: str = OUT_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def main() -> None:
    report = run_sweep()
    write_report(report)
    throughput = report["throughput"]
    remote_by_clients = {
        r["clients"]: r for r in throughput["remote"]
    }
    print_table(
        f"statements/s, {throughput['statements_per_client']} per client "
        "(in-process vs remote)",
        ["clients", "in-process", "remote", "wire tax"],
        [
            [
                local["clients"],
                local["statements_per_s"],
                remote_by_clients[local["clients"]]["statements_per_s"],
                local["statements_per_s"]
                / remote_by_clients[local["clients"]]["statements_per_s"],
            ]
            for local in throughput["in_process"]
        ],
    )
    latency = report["latency"]
    print_table(
        "single remote client, per-statement latency",
        ["p50 ms", "p95 ms", "max ms"],
        [[
            latency["p50_s"] * 1000,
            latency["p95_s"] * 1000,
            latency["max_s"] * 1000,
        ]],
    )
    print(f"\nwrote {OUT_PATH}")


if __name__ == "__main__":
    main()
