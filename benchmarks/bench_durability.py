"""Durability benchmark: WAL overhead, checkpoints, and recovery.

Three parts, all written to ``BENCH_durability.json``:

* **writes** — the same mixed write workload (executemany batches,
  autocommit inserts, multi-statement transactions) against three
  configurations: WAL off, WAL on, and WAL on with auto-checkpoints.
  Row counts are checked identical across configurations before any
  timing is recorded; ``overhead_vs_off`` is the headline number for
  EXPERIMENTS.md.
* **recovery** — time to reopen a database from (a) a WAL holding the
  full workload and (b) a checkpoint plus empty WAL tail, plus the cost
  of taking the checkpoint itself.
* **reads** — a group-by SELECT over the loaded table with WAL off vs
  on; reads never touch the log, so this is a no-regression check.

Scale control
-------------
``REPRO_BENCH_DURABILITY_ROWS``  rows loaded through executemany
batches (default ``2000``; per-statement engine cost dominates, so the
WAL overhead ratio is stable across scales).
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time

from harness import print_table
from repro.sqldb import Database

REPEATS = 3
OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_durability.json")

BATCH_SIZE = 500
AUTOCOMMIT_INSERTS = 100
TXN_BLOCKS = 10
TXN_INSERTS = 25

CONFIGS = [
    ("wal-off", {}),
    ("wal", {"wal": True}),
    ("wal+ckpt", {"wal": True, "checkpoint_every": 50}),
]

READ_QUERY = (
    "SELECT tag, count(*) AS c, sum(k) AS total FROM kv "
    "GROUP BY tag ORDER BY tag"
)


def _workload_rows() -> int:
    return int(os.environ.get("REPRO_BENCH_DURABILITY_ROWS", "2000"))


def _open(config: dict, wal_path: str) -> Database:
    kwargs = {}
    if config.get("wal"):
        kwargs["wal_path"] = wal_path
        if config.get("checkpoint_every"):
            kwargs["checkpoint_every"] = config["checkpoint_every"]
    return Database("umbra", **kwargs)


def _run_workload(db: Database, rows: int) -> int:
    """The mixed write workload; returns the total row count."""
    db.execute("CREATE TABLE kv (k int, v text, tag text)")
    batch = []
    for i in range(rows):
        batch.append((i, f"v{i % 97}", f"g{i % 7}"))
        if len(batch) == BATCH_SIZE:
            db.executemany(
                "INSERT INTO kv (k, v, tag) VALUES (?, ?, ?)", batch
            )
            batch = []
    if batch:
        db.executemany("INSERT INTO kv (k, v, tag) VALUES (?, ?, ?)", batch)
    for i in range(AUTOCOMMIT_INSERTS):
        db.execute(
            "INSERT INTO kv (k, v, tag) VALUES (?, ?, ?)",
            (rows + i, "auto", "auto"),
        )
    base = rows + AUTOCOMMIT_INSERTS
    for block in range(TXN_BLOCKS):
        db.execute("BEGIN")
        for i in range(TXN_INSERTS):
            db.execute(
                "INSERT INTO kv (k, v, tag) VALUES (?, ?, ?)",
                (base + block * TXN_INSERTS + i, "tx", "tx"),
            )
        db.execute("COMMIT")
    return db.execute("SELECT count(*) FROM kv").scalar()


# -- part 1: write overhead ---------------------------------------------------


def run_write_sweep(rows: int, workdir: str) -> dict:
    expected = rows + AUTOCOMMIT_INSERTS + TXN_BLOCKS * TXN_INSERTS
    results = []
    off_best = None
    for name, config in CONFIGS:
        timings = []
        wal_bytes = 0
        for repeat in range(REPEATS):
            wal_path = os.path.join(workdir, f"write-{name}-{repeat}.wal")
            db = _open(config, wal_path)
            started = time.perf_counter()
            total = _run_workload(db, rows)
            timings.append(time.perf_counter() - started)
            assert total == expected, (
                f"config {name} lost rows: {total} != {expected}"
            )
            db.close()
            if config.get("wal"):
                wal_bytes = os.path.getsize(wal_path)
        best = min(timings)
        if name == "wal-off":
            off_best = best
        results.append(
            {
                "config": name,
                "seconds": timings,
                "seconds_best": best,
                "overhead_vs_off": best / off_best - 1.0,
                "wal_bytes": wal_bytes,
            }
        )
    return {
        "rows": expected,
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "rows_checked": True,
        "results": results,
    }


# -- part 2: checkpoint and recovery ------------------------------------------


def run_recovery_sweep(rows: int, workdir: str) -> dict:
    wal_path = os.path.join(workdir, "recovery.wal")
    db = _open({"wal": True}, wal_path)
    total = _run_workload(db, rows)
    db.close()
    wal_bytes = os.path.getsize(wal_path)

    replay_timings = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        recovered = Database("umbra", wal_path=wal_path)
        replay_timings.append(time.perf_counter() - started)
        count = recovered.execute("SELECT count(*) FROM kv").scalar()
        assert count == total, f"recovery lost rows: {count} != {total}"
        recovered.close()

    db = Database("umbra", wal_path=wal_path)
    started = time.perf_counter()
    db.execute("CHECKPOINT")
    checkpoint_seconds = time.perf_counter() - started
    db.close()

    from_ckpt_timings = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        recovered = Database("umbra", wal_path=wal_path)
        from_ckpt_timings.append(time.perf_counter() - started)
        count = recovered.execute("SELECT count(*) FROM kv").scalar()
        assert count == total, f"checkpoint lost rows: {count} != {total}"
        recovered.close()

    return {
        "rows": total,
        "repeats": REPEATS,
        "wal_bytes": wal_bytes,
        "replay_seconds": replay_timings,
        "replay_seconds_best": min(replay_timings),
        "checkpoint_seconds": checkpoint_seconds,
        "from_checkpoint_seconds": from_ckpt_timings,
        "from_checkpoint_seconds_best": min(from_ckpt_timings),
    }


# -- part 3: the read path never touches the log ------------------------------


def run_read_sweep(rows: int, workdir: str) -> dict:
    results = []
    reference = None
    off_best = None
    for name, config in CONFIGS[:2]:
        wal_path = os.path.join(workdir, f"read-{name}.wal")
        db = _open(config, wal_path)
        _run_workload(db, rows)
        db.execute(READ_QUERY)  # warm the plan cache
        timings = []
        for _ in range(REPEATS):
            started = time.perf_counter()
            result = db.execute(READ_QUERY)
            timings.append(time.perf_counter() - started)
        db.close()
        if reference is None:
            reference = result.rows
        assert result.rows == reference, "WAL changed the read result"
        best = min(timings)
        if name == "wal-off":
            off_best = best
        results.append(
            {
                "config": name,
                "seconds": timings,
                "seconds_best": best,
                "overhead_vs_off": best / off_best - 1.0,
            }
        )
    return {
        "query": READ_QUERY,
        "repeats": REPEATS,
        "rows_checked": True,
        "results": results,
    }


# -- report -------------------------------------------------------------------


def run_sweep(rows=None) -> dict:
    rows = rows or _workload_rows()
    workdir = tempfile.mkdtemp(prefix="bench_durability_")
    try:
        return {
            "benchmark": "bench_durability",
            "hardware": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "writes": run_write_sweep(rows, workdir),
            "recovery": run_recovery_sweep(rows, workdir),
            "reads": run_read_sweep(rows, workdir),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def write_report(report: dict, path: str = OUT_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def main() -> None:
    report = run_sweep()
    write_report(report)
    print_table(
        f"mixed write workload, {report['writes']['rows']} rows",
        ["config", "best s", "overhead"],
        [
            [e["config"], e["seconds_best"], f"{e['overhead_vs_off']:+.1%}"]
            for e in report["writes"]["results"]
        ],
    )
    recovery = report["recovery"]
    print_table(
        f"recovery, {recovery['rows']} rows "
        f"({recovery['wal_bytes']} WAL bytes)",
        ["phase", "best s"],
        [
            ["replay full WAL", recovery["replay_seconds_best"]],
            ["take checkpoint", recovery["checkpoint_seconds"]],
            ["open from checkpoint", recovery["from_checkpoint_seconds_best"]],
        ],
    )
    print_table(
        "group-by read (plan cache warm)",
        ["config", "best s", "overhead"],
        [
            [e["config"], e["seconds_best"], f"{e['overhead_vs_off']:+.1%}"]
            for e in report["reads"]["results"]
        ],
    )
    print(f"\nwrote {OUT_PATH}")


if __name__ == "__main__":
    main()
