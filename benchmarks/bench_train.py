"""TRAIN-statement benchmark: in-SQL training vs the numpy trainers.

Times the three TRAIN estimators against their ``repro.learn``
counterparts on the same synthetic data:

* **logistic** — full-batch gradient descent, one aggregate query per
  iteration (``tol = 0`` pins the iteration count so the per-iteration
  query time is well defined),
* **linear** — the same loop with the squared-error gradient,
* **tree** — JoinBoost-style growth, one ``GROUP BY`` histogram query
  per (node, feature).

Every timed run is first checked *differential*: the SQL-trained
coefficients must match numpy to 1e-6 (trees must be structurally
identical), and the parallel run (workers=8) must reproduce the serial
model bit for bit — the exactness certificate observed end to end.
The headline numbers are the per-iteration aggregate-query time and the
end-to-end slowdown of pushing training into SQL.

Results go to ``BENCH_train.json``.

Scale control
-------------
``REPRO_BENCH_TRAIN_ROWS``  training-set size (default ``4000``).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from harness import print_table
from repro.learn import (
    DecisionTreeClassifier,
    LinearRegression,
    LogisticRegression,
)
from repro.sqldb import Database

REPEATS = 3
OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_train.json")

N_FEATURES = 4
LINEAR_ITERS = 30
TREE_DEPTH = 4


def _n_rows() -> int:
    return int(os.environ.get("REPRO_BENCH_TRAIN_ROWS", "4000"))


def _make_data(n_rows: int):
    """Bounded features (gradient descent stays stable at lr 0.5/0.05)
    plus a learnable 0/1 label."""
    rng = np.random.default_rng(90125)
    X = rng.uniform(-1.0, 1.0, (n_rows, N_FEATURES))
    z = 1.4 * X[:, 0] - 1.1 * X[:, 1] + 0.7 * X[:, 2] - 0.3 * X[:, 3]
    y = (z + rng.normal(0.0, 0.5, n_rows) > 0.1).astype(float)
    return X, y


def _make_database(X, y, workers=None) -> Database:
    db = Database(optimize=True, workers=workers, morsel_size=1024)
    columns = ", ".join(f"f{j} double precision" for j in range(N_FEATURES))
    db.execute(f"CREATE TABLE train_data ({columns}, label double precision)")
    db.catalog.table("train_data").append_columns(
        {
            **{f"f{j}": X[:, j].tolist() for j in range(N_FEATURES)},
            "label": y.tolist(),
        },
        len(y),
    )
    db.catalog.bump_version()
    db.analyze()
    return db


_SELECT = "SELECT " + ", ".join(f"f{j}" for j in range(N_FEATURES)) + (
    ", label FROM train_data"
)

_WORKLOADS = [
    {
        "name": "logistic-gd",
        "train": (
            f"TRAIN bm USING ({_SELECT}) WITH (estimator = "
            f"'logistic_regression', max_iter = {LINEAR_ITERS}, lr = 0.5, "
            "tol = 0.0)"
        ),
        "numpy": lambda X, y: LogisticRegression(
            max_iter=LINEAR_ITERS, learning_rate=0.5, tol=0.0
        ).fit(X, y),
    },
    {
        "name": "linear-gd",
        "train": (
            f"TRAIN bm USING ({_SELECT}) WITH (estimator = "
            f"'linear_regression', max_iter = {LINEAR_ITERS}, lr = 0.05, "
            "tol = 0.0)"
        ),
        "numpy": lambda X, y: LinearRegression(
            max_iter=LINEAR_ITERS, learning_rate=0.05, tol=0.0
        ).fit(X, y),
    },
    {
        "name": "tree-growth",
        "train": (
            f"TRAIN bm USING ({_SELECT}) WITH (estimator = 'decision_tree', "
            f"max_depth = {TREE_DEPTH})"
        ),
        "numpy": lambda X, y: DecisionTreeClassifier(
            max_depth=TREE_DEPTH
        ).fit(X, y),
    },
]


def _time_train(db: Database, sql: str) -> tuple[float, object]:
    """Best-of-REPEATS wall time for one TRAIN (retraining replaces the
    model, so every repeat does the full loop); returns the final model."""
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        db.execute(sql)
        best = min(best, time.perf_counter() - started)
    return best, db.model("bm")


def _check_parity(workload: str, model, reference) -> float:
    """Max |coef diff| vs numpy (0.0 for a structurally equal tree)."""
    if model.estimator == "decision_tree":
        assert model.tree == reference.to_tuples(), (
            f"{workload}: SQL tree diverged from the numpy tree"
        )
        return 0.0
    diff = float(
        np.max(
            np.abs(np.asarray(model.coef) - reference.coef_),
            initial=abs(model.intercept - reference.intercept_),
        )
    )
    assert diff <= 1e-6, f"{workload}: coefficient drift {diff:.3e} > 1e-6"
    return diff


def run_sweep(n_rows=None) -> dict:
    n_rows = n_rows or _n_rows()
    X, y = _make_data(n_rows)
    serial = _make_database(X, y, workers=1)
    parallel = _make_database(X, y, workers=8)
    results = []
    try:
        for workload in _WORKLOADS:
            numpy_best = float("inf")
            for _ in range(REPEATS):
                started = time.perf_counter()
                reference = workload["numpy"](X, y)
                numpy_best = min(numpy_best, time.perf_counter() - started)
            sql_best, model = _time_train(serial, workload["train"])
            par_best, par_model = _time_train(parallel, workload["train"])
            # bit-identical across worker counts (exact float-SUM merge)
            assert par_model.coef == model.coef
            assert par_model.tree == model.tree
            drift = _check_parity(workload["name"], model, reference)
            # n_iter counts GD iterations (linear) or nodes grown (tree);
            # either way it is the number of query round-trips per feature
            # block, so seconds/n_iter is the per-iteration query cost
            results.append(
                {
                    "workload": workload["name"],
                    "rows": n_rows,
                    "features": N_FEATURES,
                    "iterations": model.n_iter,
                    "sql_seconds_best": sql_best,
                    "sql_parallel_seconds_best": par_best,
                    "iteration_seconds_best": sql_best / model.n_iter,
                    "numpy_seconds_best": numpy_best,
                    "slowdown_vs_numpy": sql_best / numpy_best,
                    "coef_max_abs_diff": drift,
                    "parallel_bit_identical": True,
                }
            )
    finally:
        serial.close()
        parallel.close()
    return {
        "benchmark": "bench_train",
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "n_rows": n_rows,
        "repeats": REPEATS,
        "results": results,
    }


def write_report(report: dict, path: str = OUT_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def _print_report(report: dict) -> None:
    print_table(
        f"TRAIN vs numpy (rows={report['n_rows']})",
        [
            "workload",
            "iters",
            "sql (s)",
            "parallel (s)",
            "s/iter",
            "numpy (s)",
            "slowdown",
        ],
        [
            [
                entry["workload"],
                entry["iterations"],
                entry["sql_seconds_best"],
                entry["sql_parallel_seconds_best"],
                entry["iteration_seconds_best"],
                entry["numpy_seconds_best"],
                f"{entry['slowdown_vs_numpy']:.0f}x",
            ]
            for entry in report["results"]
        ],
    )
    print(f"wrote {OUT_PATH}")


def test_train_bench_smoke():
    """Cheap correctness gate: tiny sweep, parity must hold throughout."""
    report = run_sweep(n_rows=300)
    assert len(report["results"]) == len(_WORKLOADS)
    assert all(e["parallel_bit_identical"] for e in report["results"])
    assert all(e["coef_max_abs_diff"] <= 1e-6 for e in report["results"])


def test_report_train(capsys):
    report = run_sweep()
    write_report(report)
    with capsys.disabled():
        _print_report(report)
    assert all(e["iterations"] > 0 for e in report["results"])


def main() -> None:
    report = run_sweep()
    write_report(report)
    _print_report(report)


if __name__ == "__main__":
    main()
