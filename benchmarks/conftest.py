"""Make the harness importable from the bench modules."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        default=None,
        help=(
            "morsel-execution worker count for the SQL connectors "
            "(exported as REPRO_SQL_WORKERS so every bench picks it up)"
        ),
    )
    parser.addoption(
        "--check-bench",
        action="store_true",
        default=False,
        help=(
            "enable the benchmark regression gate (check_bench.py): "
            "fails when a fresh BENCH_*.json timing is >20% slower than "
            "its committed baseline"
        ),
    )


def pytest_configure(config):
    workers = config.getoption("--workers", default=None)
    if workers is not None:
        os.environ["REPRO_SQL_WORKERS"] = str(workers)
