"""Make the harness importable from the bench modules."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        default=None,
        help=(
            "morsel-execution worker count for the SQL connectors "
            "(exported as REPRO_SQL_WORKERS so every bench picks it up)"
        ),
    )


def pytest_configure(config):
    workers = config.getoption("--workers", default=None)
    if workers is not None:
        os.environ["REPRO_SQL_WORKERS"] = str(workers)
