"""Figure 8 — end-to-end runs including model training.

Runs the complete pipelines (preprocessing + training + scoring) on the
original dataset sizes (889 healthcare / 2167 compas / 9771 adult tuples),
with inspection enabled, comparing the native path against SQL offloading.
The paper's observation: pipelines dominated by training time (healthcare)
gain little; the others benefit from accelerated preprocessing.
"""

import pytest

from harness import print_table, run_once

ORIGINAL_SIZES = {
    "healthcare": 889,
    "compas": 2167,
    "adult_simple": 9771,
    "adult_complex": 9771,
}
BACKENDS = ["python", "postgres-view-mat", "umbra-view"]


@pytest.mark.parametrize("pipeline", list(ORIGINAL_SIZES))
@pytest.mark.parametrize("backend", BACKENDS)
def test_end_to_end_benchmark(benchmark, pipeline, backend):
    size = ORIGINAL_SIZES[pipeline]

    def run():
        run_once(pipeline, size, "full", backend, with_inspection=True)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report_fig8(capsys):
    rows = []
    for pipeline, size in ORIGINAL_SIZES.items():
        row = [pipeline, size]
        scores = []
        for backend in BACKENDS:
            outcome = run_once(
                pipeline, size, "full", backend,
                with_inspection=True, keep_result=True,
            )
            row.append(outcome.seconds)
            scores.append(
                outcome.result.extras["pipeline_globals"].get("score")
            )
        # correctness: the offloaded run must train to the same accuracy
        assert all(
            s is None or abs(s - scores[0]) < 1e-9 for s in scores
        ), f"{pipeline}: scores diverged across backends: {scores}"
        row.append(round(scores[0], 4))
        rows.append(row)
    with capsys.disabled():
        print_table(
            "Figure 8: end-to-end runtime incl. training (s)",
            ["pipeline", "tuples"] + BACKENDS + ["model accuracy"],
            rows,
        )
