"""Ablation — the design choices DESIGN.md calls out.

1. PostgreSQL's CTE materialisation barrier: default CTEs vs
   ``NOT MATERIALIZED`` (which removes the barrier and lets pruning flow,
   the paper's §6.1 explanation for the CTE/VIEW gap).
2. Operator-output materialisation: the postgres profile with copies
   disabled (isolating the tuple-materialisation share of the PG/Umbra
   difference).
3. View materialisation for inspection workloads (§3.4.2).
"""

import pytest

from harness import bench_sizes, make_inspector, print_table
from repro.core.connectors import (
    PostgresqlConnector,
    ProfileConnector,
    UmbraConnector,
)
from repro.sqldb.profile import Profile

PG_NO_COPY = Profile(
    "postgres-nocopy", materialize_ctes_by_default=True, copy_operator_output=False
)


def _run(connector, mode, materialize=False, cte_not_materialized=False):
    size = bench_sizes()[-1]
    inspector = make_inspector("healthcare", size, "sklearn", with_inspection=True)
    import time

    started = time.perf_counter()
    inspector.execute_in_sql(
        dbms_connector=connector,
        mode=mode,
        materialize=materialize,
        cte_not_materialized=cte_not_materialized,
    )
    return time.perf_counter() - started


CONFIGS = [
    ("pg CTE (default, barrier)", lambda: _run(PostgresqlConnector(), "CTE")),
    (
        "pg CTE NOT MATERIALIZED",
        lambda: _run(PostgresqlConnector(), "CTE", cte_not_materialized=True),
    ),
    ("pg VIEW", lambda: _run(PostgresqlConnector(), "VIEW")),
    ("pg VIEW materialized", lambda: _run(PostgresqlConnector(), "VIEW", True)),
    ("pg (no operator copies) VIEW", lambda: _run(ProfileConnector(PG_NO_COPY), "VIEW")),
    ("umbra CTE", lambda: _run(UmbraConnector(), "CTE")),
    ("umbra VIEW", lambda: _run(UmbraConnector(), "VIEW")),
]


@pytest.mark.parametrize("label,runner", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_ablation_benchmark(benchmark, label, runner):
    benchmark.pedantic(runner, rounds=1, iterations=1)


def test_report_ablation(capsys):
    rows = [[label, runner()] for label, runner in CONFIGS]
    with capsys.disabled():
        print_table(
            f"Ablation: healthcare + inspection at {bench_sizes()[-1]} tuples (s)",
            ["configuration", "seconds"],
            rows,
        )
