"""Morsel-driven parallel execution benchmark (Fig-7a-style shape).

Times a scan -> filter -> project -> aggregate query — the operator
spine of the paper's Figure 7a pandas part — at 10^4..10^6 rows across
worker counts, and writes machine-readable ``BENCH_parallel_exec.json``
next to this file.  Every parallel run is checked row-identical to the
serial reference before its timing is recorded.

Scale control
-------------
``REPRO_BENCH_PARALLEL_SIZES``  comma list of row counts
(default ``10000,100000,1000000``).
``REPRO_BENCH_PARALLEL_WORKERS``  comma list of worker counts
(default ``1,2,4,8``).

Speedup is hardware-bound: on a single-CPU container the GIL and the
lone core make >1x impossible, so the JSON records ``cpu_count`` next
to the timings — interpret the numbers against it.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from harness import print_table
from repro.sqldb import Database

QUERY = (
    "SELECT grp, count(*) AS c, sum(d) AS total, avg(d) AS mean, "
    "max(d) AS hi FROM "
    "(SELECT grp, val * 2 AS d FROM t WHERE val > 10) s "
    "GROUP BY grp ORDER BY grp"
)
MORSEL_SIZE = 65536
REPEATS = 3
OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_parallel_exec.json")


def _sizes() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_PARALLEL_SIZES", "10000,100000,1000000")
    return [int(part) for part in raw.split(",") if part.strip()]


def _worker_counts() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "1,2,4,8")
    return [int(part) for part in raw.split(",") if part.strip()]


def _make_database(rows: int, workers: int) -> Database:
    db = Database("umbra", workers=workers, morsel_size=MORSEL_SIZE)
    db.execute("CREATE TABLE t (grp text, val double precision)")
    groups = [f"g{i % 10}" for i in range(rows)]
    values = [float((i * 37) % 100) for i in range(rows)]
    db.catalog.table("t").append_columns({"grp": groups, "val": values}, rows)
    db.catalog.bump_version()
    return db


def _time_query(db: Database) -> tuple[list[float], list[tuple]]:
    db.execute(QUERY)  # warm the plan cache; timings measure execution only
    timings = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = db.execute(QUERY)
        timings.append(time.perf_counter() - started)
    return timings, result.rows


def run_sweep(sizes=None, worker_counts=None) -> dict:
    sizes = sizes or _sizes()
    worker_counts = worker_counts or _worker_counts()
    results = []
    for rows in sizes:
        reference_rows = None
        serial_best = None
        for workers in worker_counts:
            db = _make_database(rows, workers)
            try:
                timings, out_rows = _time_query(db)
            finally:
                db.close()
            if reference_rows is None:
                reference_rows = out_rows
            assert out_rows == reference_rows, (
                f"parallel result diverged at rows={rows} workers={workers}"
            )
            best = min(timings)
            if workers == 1:
                serial_best = best
            results.append(
                {
                    "rows": rows,
                    "workers": workers,
                    # scans at or below one morsel stay serial by design
                    "morselized": workers > 1 and rows > MORSEL_SIZE,
                    "seconds": timings,
                    "seconds_best": best,
                    "speedup_vs_workers1": (
                        serial_best / best if serial_best else None
                    ),
                }
            )
    return {
        "benchmark": "bench_parallel_exec",
        "query": QUERY,
        "morsel_size": MORSEL_SIZE,
        "repeats": REPEATS,
        "profile": "umbra",
        "determinism_checked": True,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": results,
    }


def write_report(report: dict, path: str = OUT_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def _report_rows(report: dict) -> list[list]:
    return [
        [
            entry["rows"],
            entry["workers"],
            entry["seconds_best"],
            f"{entry['speedup_vs_workers1']:.2f}x"
            if entry["speedup_vs_workers1"]
            else "-",
        ]
        for entry in report["results"]
    ]


@pytest.mark.parametrize("rows", [10_000])
def test_parallel_exec_smoke(rows):
    """Cheap correctness gate: sweep one size, assert determinism held."""
    report = run_sweep(sizes=[rows], worker_counts=[1, 4])
    assert report["determinism_checked"]
    assert len(report["results"]) == 2


def test_report_parallel_exec(capsys):
    report = run_sweep()
    write_report(report)
    with capsys.disabled():
        print_table(
            "Parallel morsel execution, runtime (s) "
            f"[cpu_count={report['hardware']['cpu_count']}]",
            ["tuples", "workers", "best (s)", "speedup"],
            _report_rows(report),
        )
        print(f"wrote {OUT_PATH}")


def main() -> None:
    report = run_sweep()
    write_report(report)
    print_table(
        "Parallel morsel execution, runtime (s) "
        f"[cpu_count={report['hardware']['cpu_count']}]",
        ["tuples", "workers", "best (s)", "speedup"],
        _report_rows(report),
    )
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
