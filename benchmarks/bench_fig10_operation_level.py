"""Figure 10 — operation-level performance breakdown (compas pipeline).

Times every pipeline operation individually, in the native Python path
(wall clock around each patched call) and in the SQL path (per-statement
timings of the materialised-view creation, which executes each table
expression exactly once).
"""

import time

import pytest

from harness import bench_sizes, dataset_dir_for, print_table
from repro.core.connectors import PostgresqlConnector, UmbraConnector
from repro.inspection import PipelineInspector
from repro.inspection.monkeypatch import patched_libraries
from repro.inspection.tracker import PythonBackend
from repro.pipelines import compas_source


class _TimingBackend(PythonBackend):
    """Python backend recording wall-clock per recorded operation."""

    def __init__(self) -> None:
        super().__init__([])
        self.op_timings: list[tuple[str, float]] = []

    def _record(self, operator_type, description, inputs, output,
                lineage, lineno, columns=()):
        node = super()._record(
            operator_type, description, inputs, output, lineage, lineno, columns
        )
        return node


def _python_op_timings(source: str) -> list[tuple[str, float]]:
    backend = _TimingBackend()
    timings: list[tuple[str, float]] = []
    original_record = backend._record

    def timed_record(operator_type, description, *args, **kwargs):
        node = original_record(operator_type, description, *args, **kwargs)
        now = time.perf_counter()
        timings.append((f"{description}", now - timed_record.last))
        timed_record.last = now
        return node

    timed_record.last = time.perf_counter()
    backend._record = timed_record
    code = compile(source, "<compas>", "exec")
    with patched_libraries(backend, "<compas>"):
        exec(code, {"__name__": "__main__"})
    return timings


def _sql_op_timings(source: str, connector) -> list[tuple[str, float]]:
    PipelineInspector.on_pipeline_from_string(
        source, filename="<compas>"
    ).execute_in_sql(dbms_connector=connector, mode="VIEW", materialize=True)
    return [
        (head, seconds)
        for head, seconds in connector.statement_timings
        if head.startswith(("CREATE MATERIALIZED VIEW", "COPY", "CREATE TABLE"))
    ]


def test_fig10_benchmark(benchmark):
    size = bench_sizes()[-1]
    directory = dataset_dir_for("compas", size)
    source = compas_source(directory, upto="sklearn")

    def run():
        _sql_op_timings(source, PostgresqlConnector())

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report_fig10(capsys):
    size = bench_sizes()[-1]
    directory = dataset_dir_for("compas", size)
    source = compas_source(directory, upto="sklearn")

    python_ops = _python_op_timings(source)
    postgres_ops = _sql_op_timings(source, PostgresqlConnector())
    umbra_ops = _sql_op_timings(source, UmbraConnector())

    rows = [
        ["python", op, seconds] for op, seconds in python_ops
    ] + [
        ["postgres", op[:64], seconds] for op, seconds in postgres_ops
    ] + [
        ["umbra", op[:64], seconds] for op, seconds in umbra_ops
    ]
    with capsys.disabled():
        print_table(
            f"Figure 10: per-operation breakdown, compas, {size} tuples (s)",
            ["backend", "operation", "seconds"],
            rows,
        )
