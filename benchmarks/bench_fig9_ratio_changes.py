"""Figure 9 — ratio changes during preprocessing (healthcare).

Prints, for each row-count-changing operator of the healthcare pipeline,
the distribution frequencies of ``race`` and ``age_group`` before and
after, plus the delta — the series behind Figure 9 — and asserts that the
Python-computed and SQL-computed ratios agree exactly.
"""

import pytest

from harness import make_inspector, print_table
from repro.core.connectors import UmbraConnector
from repro.inspection import HistogramForColumns, NoBiasIntroducedFor

SENSITIVE = ["race", "age_group"]
SIZE = 889  # original healthcare size


def _distribution_changes(result):
    check = next(iter(result.check_to_check_results.values()))
    return check.details["distribution_changes"]


def _run(backend: str):
    inspector = make_inspector(
        "healthcare", SIZE, "sklearn", with_inspection=True,
        sensitive=SENSITIVE,
    )
    if backend == "python":
        return inspector.execute()
    return inspector.execute_in_sql(
        dbms_connector=UmbraConnector(), mode="VIEW"
    )


def test_fig9_benchmark(benchmark):
    benchmark.pedantic(lambda: _run("umbra"), rounds=1, iterations=1)


def test_report_fig9(capsys):
    python_result = _run("python")
    sql_result = _run("umbra")
    python_changes = _distribution_changes(python_result)
    sql_changes = _distribution_changes(sql_result)

    # correctness: SQL inspection reproduces the Python ratios exactly
    py_map = {
        (c.node.lineno, c.node.operator_type.name, c.column): c
        for c in python_changes
    }
    sql_map = {
        (c.node.lineno, c.node.operator_type.name, c.column): c
        for c in sql_changes
    }
    shared = set(py_map) & set(sql_map)
    assert shared, "no comparable operators between the two backends"
    for key in shared:
        assert py_map[key].after == pytest.approx(sql_map[key].after), key

    rows = []
    for change in sql_changes:
        for value in sorted(change.after, key=str):
            rows.append(
                [
                    f"line {change.node.lineno}",
                    change.node.operator_type.name,
                    change.column,
                    str(value),
                    change.before.get(value, 0.0),
                    change.after.get(value, 0.0),
                    change.after.get(value, 0.0)
                    - change.before.get(value, 0.0),
                ]
            )
    with capsys.disabled():
        print_table(
            "Figure 9: healthcare ratio changes per operator",
            ["op", "type", "column", "group", "before", "after", "delta"],
            rows,
        )
