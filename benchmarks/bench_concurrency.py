"""Multi-session concurrency benchmark: MVCC throughput and fairness.

Three parts, all written to ``BENCH_concurrency.json``:

* **writes** — committed-transaction throughput as the number of
  concurrent sessions grows (each session runs short randomized
  INSERT transactions against a few shared tables through the
  client-side retry loop).  Reports commits/s plus the serialization-
  failure and deadlock retry rates — the cost of optimistic
  first-committer-wins under rising contention.
* **reads** — read-only throughput vs session count over one shared
  table.  Snapshot reads take no table locks, so this should scale with
  threads until the GIL flattens it; it is the no-regression check that
  the lock manager stays off the read path.
* **fairness** — a writer racing a saturated stream of readers on the
  catalog latch.  Reports the writer's acquisition latency; under the
  old readers-preference latch this number diverged (starvation), under
  the writer-preference latch it stays near one reader hold time.

Scale control
-------------
``REPRO_BENCH_CONCURRENCY_TXNS``  transactions per session per
configuration (default ``30``).
"""

from __future__ import annotations

import json
import os
import platform
import random
import threading
import time

from harness import print_table
from repro.core.connectors import retry_backoff
from repro.sqldb.engine import Database

OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_concurrency.json")

SESSION_COUNTS = (1, 2, 4, 8)
TABLES = ("alpha", "beta", "gamma")


def _txns_per_session() -> int:
    return int(os.environ.get("REPRO_BENCH_CONCURRENCY_TXNS", "30"))


def _make_db() -> Database:
    db = Database("umbra")
    for name in TABLES:
        db.execute(f"CREATE TABLE {name} (tag text, val int)")
    return db


# -- writes: commit throughput and retry rates vs session count ---------------


def run_write_sweep(txns: int) -> dict:
    results = []
    for n_sessions in SESSION_COUNTS:
        db = _make_db()
        retries = {"40001": 0, "40P01": 0, "57014": 0}
        mutex = threading.Lock()
        barrier = threading.Barrier(n_sessions + 1)

        def worker(wid: int) -> None:
            rng = random.Random(wid)
            session = db.session()
            barrier.wait()
            try:
                for t in range(txns):
                    tables = rng.sample(TABLES, k=rng.choice((1, 1, 2)))

                    def attempt() -> None:
                        session.begin()
                        for i, table in enumerate(tables):
                            session.execute(
                                f"INSERT INTO {table} (tag, val) "
                                f"VALUES ('w{wid}t{t}', {i})"
                            )
                        session.commit()

                    def on_retry(_i, exc) -> None:
                        with mutex:
                            retries[exc.sqlstate] += 1
                        db.rollback(session=session)

                    retry_backoff(
                        attempt,
                        attempts=20,
                        base_delay=0.001,
                        max_delay=0.05,
                        rng=rng,
                        on_retry=on_retry,
                    )
            finally:
                session.close()

        threads = [
            threading.Thread(target=worker, args=(wid,))
            for wid in range(n_sessions)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        commits = n_sessions * txns
        total_retries = sum(retries.values())
        db.close()
        results.append(
            {
                "sessions": n_sessions,
                "commits": commits,
                "seconds": elapsed,
                "commits_per_s": commits / elapsed,
                "retries": dict(retries),
                "retry_rate": total_retries / commits,
            }
        )
    return {"txns_per_session": txns, "results": results}


# -- reads: snapshot SELECT throughput vs session count -----------------------


def run_read_sweep(txns: int) -> dict:
    db = _make_db()
    db.executemany(
        "INSERT INTO alpha (tag, val) VALUES (?, ?)",
        [(f"t{i % 17}", i % 251) for i in range(2000)],
    )
    query = (
        "SELECT tag, count(*) AS c, sum(val) AS s FROM alpha "
        "GROUP BY tag ORDER BY tag"
    )
    results = []
    for n_sessions in SESSION_COUNTS:
        barrier = threading.Barrier(n_sessions + 1)

        def worker() -> None:
            session = db.session()
            barrier.wait()
            try:
                for _ in range(txns):
                    session.execute(query)
            finally:
                session.close()

        threads = [
            threading.Thread(target=worker) for _ in range(n_sessions)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        queries = n_sessions * txns
        results.append(
            {
                "sessions": n_sessions,
                "queries": queries,
                "seconds": elapsed,
                "queries_per_s": queries / elapsed,
            }
        )
    db.close()
    return {"query": query, "queries_per_session": txns, "results": results}


# -- fairness: writer latency under a saturated reader stream -----------------


def run_fairness_probe(n_probes: int = 10) -> dict:
    db = _make_db()
    db.executemany(
        "INSERT INTO alpha (tag, val) VALUES (?, ?)",
        [(f"t{i % 17}", i) for i in range(500)],
    )
    stop = threading.Event()

    def reader_stream() -> None:
        session = db.session()
        try:
            while not stop.is_set():
                session.execute("SELECT count(*) FROM alpha")
        finally:
            session.close()

    readers = [
        threading.Thread(target=reader_stream, daemon=True) for _ in range(4)
    ]
    for thread in readers:
        thread.start()
    time.sleep(0.1)  # saturate the read side before probing

    latencies = []
    writer = db.session()
    try:
        for i in range(n_probes):
            started = time.perf_counter()
            writer.execute(f"INSERT INTO beta (tag, val) VALUES ('p', {i})")
            latencies.append(time.perf_counter() - started)
            time.sleep(0.01)
    finally:
        writer.close()
        stop.set()
        for thread in readers:
            thread.join(timeout=10)
        db.close()
    latencies.sort()
    return {
        "readers": len(readers),
        "probes": n_probes,
        "writer_latency_median_s": latencies[len(latencies) // 2],
        "writer_latency_max_s": latencies[-1],
        "starved": latencies[-1] > 5.0,
    }


# -- report -------------------------------------------------------------------


def run_sweep(txns: int | None = None) -> dict:
    txns = txns or _txns_per_session()
    return {
        "benchmark": "bench_concurrency",
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "writes": run_write_sweep(txns),
        "reads": run_read_sweep(txns),
        "fairness": run_fairness_probe(),
    }


def write_report(report: dict, path: str = OUT_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def main() -> None:
    report = run_sweep()
    write_report(report)
    print_table(
        f"write transactions, {report['writes']['txns_per_session']} per session",
        ["sessions", "commits/s", "retry rate", "40001", "40P01"],
        [
            [
                r["sessions"],
                r["commits_per_s"],
                r["retry_rate"],
                r["retries"]["40001"],
                r["retries"]["40P01"],
            ]
            for r in report["writes"]["results"]
        ],
    )
    print_table(
        "snapshot reads (no table locks)",
        ["sessions", "queries/s"],
        [
            [r["sessions"], r["queries_per_s"]]
            for r in report["reads"]["results"]
        ],
    )
    fair = report["fairness"]
    print_table(
        f"writer vs {fair['readers']} streaming readers (latch fairness)",
        ["median s", "max s", "starved"],
        [[
            fair["writer_latency_median_s"],
            fair["writer_latency_max_s"],
            fair["starved"],
        ]],
    )
    print(f"\nwrote {OUT_PATH}")


if __name__ == "__main__":
    main()
