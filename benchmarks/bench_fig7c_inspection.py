"""Figure 7c — preprocessing with bias inspection enabled.

The NoBiasIntroducedFor check measures sensitive-column ratios after every
operator; n inspection steps imply n re-executions of the first operation
in the non-materialised SQL modes (§6.3), which is why materialisation
matters most here.
"""

import pytest

from harness import ALL_BACKENDS, bench_sizes, print_table, run_once

PIPELINES = ["healthcare", "compas", "adult_simple", "adult_complex"]


@pytest.mark.parametrize("pipeline", PIPELINES)
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_inspection_benchmark(benchmark, pipeline, backend):
    size = bench_sizes()[-1]

    def run():
        run_once(pipeline, size, "sklearn", backend, with_inspection=True)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report_fig7c(capsys):
    rows = []
    for pipeline in PIPELINES:
        for size in bench_sizes():
            row = [pipeline, size]
            for backend in ALL_BACKENDS:
                outcome = run_once(
                    pipeline, size, "sklearn", backend, with_inspection=True
                )
                row.append(outcome.seconds)
            rows.append(row)
    with capsys.disabled():
        print_table(
            "Figure 7c: preprocessing + inspection, runtime (s)",
            ["pipeline", "tuples"] + ALL_BACKENDS,
            rows,
        )
