"""Statistics-driven optimizer benchmark.

Two parts, both written to ``BENCH_optimizer.json``:

* **pipeline** — the healthcare pipeline (Listing 4, pandas part)
  transpiled to SQL and executed end to end through both profile
  connectors in VIEW mode, rewrite layer off vs on.  The win comes from
  predicate pushdown: the final ``county IN (...)`` filter moves below
  the mean-complications join (it legally stops above the shared,
  refcount-2 inlined CTE, whose body the executor runs once either way).
  Final-table rows are checked identical between the two configurations.
* **micro** — a selective filter + join + group-by over a synthetic
  star shape where the optimizer can push both filters to their scans,
  with and without ``ANALYZE`` (statistics additionally unlock conjunct
  reordering and join build-side selection).  Results are checked
  row-identical before any timing is recorded.

Scale control
-------------
``REPRO_BENCH_OPTIMIZER_SIZES``  comma list of healthcare dataset sizes
(default ``10000,100000``).
``REPRO_BENCH_OPTIMIZER_ROWS``  micro fact-table row count
(default ``200000``).
"""

from __future__ import annotations

import json
import os
import platform
import time

from harness import make_inspector, print_table
from repro.core.connectors import PostgresqlConnector, UmbraConnector
from repro.sqldb import Database

REPEATS = 3
OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_optimizer.json")

PIPELINE_BACKENDS = ["postgres-view", "umbra-view"]

MICRO_QUERY = (
    "SELECT region, count(*) AS c, sum(amount) AS total FROM "
    "(SELECT f.amount AS amount, f.status AS status, d.region AS region "
    "FROM fact f JOIN dim d ON f.dim_id = d.id) j "
    "WHERE status = 'ok' AND amount > 990 AND region <> 'r3' "
    "GROUP BY region ORDER BY region"
)


def _pipeline_sizes() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_OPTIMIZER_SIZES", "10000,100000")
    return [int(part) for part in raw.split(",") if part.strip()]


def _micro_rows() -> int:
    return int(os.environ.get("REPRO_BENCH_OPTIMIZER_ROWS", "200000"))


# -- part 1: the healthcare pipeline, end to end ------------------------------


def _pipeline_once(backend: str, size: int, optimize: bool):
    """One end-to-end run; returns (seconds, query_seconds, rows).

    ``seconds`` is the full end-to-end time (CSV COPY included, which
    dominates); ``query_seconds`` isolates the final chain-executing
    SELECT, where pushdown actually acts.
    """
    inspector = make_inspector("healthcare", size, "pandas")
    engine = backend.partition("-")[0]
    connector_cls = (
        PostgresqlConnector if engine == "postgres" else UmbraConnector
    )
    connector = connector_cls(optimize=optimize)
    started = time.perf_counter()
    result = inspector.execute_in_sql(dbms_connector=connector, mode="VIEW")
    seconds = time.perf_counter() - started
    query_seconds = sum(
        elapsed
        for head, elapsed in connector.statement_timings
        if head.startswith("SELECT * FROM block_")
    )
    # the generated script ends in "SELECT * FROM <final block>;"
    final_table = result.sql_source.strip().splitlines()[-1].rstrip(";").split()[-1]
    rows = sorted(
        connector.query_rows(f"SELECT * FROM {final_table}"), key=repr
    )
    return seconds, query_seconds, rows


def run_pipeline_sweep(sizes=None) -> dict:
    sizes = sizes or _pipeline_sizes()
    results = []
    for size in sizes:
        for backend in PIPELINE_BACKENDS:
            reference_rows = None
            off_best = None
            off_query_best = None
            for optimize in (False, True):
                timings = []
                query_timings = []
                rows = None
                for _ in range(REPEATS):
                    seconds, query_seconds, rows = _pipeline_once(
                        backend, size, optimize
                    )
                    timings.append(seconds)
                    query_timings.append(query_seconds)
                if reference_rows is None:
                    reference_rows = rows
                assert rows == reference_rows, (
                    f"optimizer changed the healthcare result at "
                    f"backend={backend} size={size}"
                )
                best = min(timings)
                query_best = min(query_timings)
                if not optimize:
                    off_best = best
                    off_query_best = query_best
                results.append(
                    {
                        "backend": backend,
                        "size": size,
                        "optimize": optimize,
                        "seconds": timings,
                        "seconds_best": best,
                        "query_seconds_best": query_best,
                        "speedup_vs_off": (
                            off_best / best if optimize else None
                        ),
                        "query_speedup_vs_off": (
                            off_query_best / query_best if optimize else None
                        ),
                    }
                )
    return {
        "pipeline": "healthcare",
        "upto": "pandas",
        "mode": "VIEW",
        "repeats": REPEATS,
        "rows_checked": True,
        "results": results,
    }


# -- part 2: controlled pushdown microbenchmark -------------------------------


def _make_micro_database(profile: str, rows: int, optimize: bool) -> Database:
    db = Database(profile, optimize=optimize)
    db.execute("CREATE TABLE dim (id int, region text)")
    db.execute(
        "CREATE TABLE fact (dim_id int, amount double precision, status text)"
    )
    n_dim = 1000
    db.catalog.table("dim").append_columns(
        {
            "id": list(range(n_dim)),
            "region": [f"r{i % 10}" for i in range(n_dim)],
        },
        n_dim,
    )
    db.catalog.table("fact").append_columns(
        {
            "dim_id": [i % n_dim for i in range(rows)],
            "amount": [float((i * 7) % 1000) for i in range(rows)],
            "status": ["ok" if i % 10 < 3 else "skip" for i in range(rows)],
        },
        rows,
    )
    db.catalog.bump_version()
    if optimize:
        db.analyze()  # unlock the statistics-gated rewrites too
    return db


def _time_micro(db: Database) -> tuple[list[float], list[tuple]]:
    db.execute(MICRO_QUERY)  # warm the plan cache
    timings = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = db.execute(MICRO_QUERY)
        timings.append(time.perf_counter() - started)
    return timings, result.rows


def run_micro_sweep(rows=None) -> dict:
    rows = rows or _micro_rows()
    results = []
    for profile in ("postgres", "umbra"):
        reference_rows = None
        off_best = None
        for optimize in (False, True):
            db = _make_micro_database(profile, rows, optimize)
            try:
                timings, out_rows = _time_micro(db)
            finally:
                db.close()
            if reference_rows is None:
                reference_rows = out_rows
            assert out_rows == reference_rows, (
                f"optimizer changed the micro result at profile={profile}"
            )
            best = min(timings)
            if not optimize:
                off_best = best
            results.append(
                {
                    "profile": profile,
                    "optimize": optimize,
                    "analyzed": optimize,
                    "seconds": timings,
                    "seconds_best": best,
                    "speedup_vs_off": off_best / best if optimize else None,
                }
            )
    return {
        "query": MICRO_QUERY,
        "fact_rows": rows,
        "repeats": REPEATS,
        "determinism_checked": True,
        "results": results,
    }


# -- report -------------------------------------------------------------------


def run_sweep(sizes=None, micro_rows=None) -> dict:
    return {
        "benchmark": "bench_optimizer",
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "pipeline": run_pipeline_sweep(sizes),
        "micro": run_micro_sweep(micro_rows),
    }


def write_report(report: dict, path: str = OUT_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def _pipeline_rows(report: dict) -> list[list]:
    return [
        [
            entry["backend"],
            entry["size"],
            "on" if entry["optimize"] else "off",
            entry["seconds_best"],
            f"{entry['speedup_vs_off']:.2f}x"
            if entry["speedup_vs_off"]
            else "-",
            entry["query_seconds_best"],
            f"{entry['query_speedup_vs_off']:.2f}x"
            if entry["query_speedup_vs_off"]
            else "-",
        ]
        for entry in report["pipeline"]["results"]
    ]


def _micro_rows_table(report: dict) -> list[list]:
    return [
        [
            entry["profile"],
            "on" if entry["optimize"] else "off",
            entry["seconds_best"],
            f"{entry['speedup_vs_off']:.2f}x"
            if entry["speedup_vs_off"]
            else "-",
        ]
        for entry in report["micro"]["results"]
    ]


def _print_report(report: dict) -> None:
    print_table(
        "Healthcare pipeline (pandas part, VIEW mode), end-to-end runtime (s)",
        [
            "backend",
            "tuples",
            "optimizer",
            "best (s)",
            "speedup",
            "query (s)",
            "qspeedup",
        ],
        _pipeline_rows(report),
    )
    print_table(
        f"Pushdown micro (fact_rows={report['micro']['fact_rows']}), "
        "runtime (s)",
        ["profile", "optimizer", "best (s)", "speedup"],
        _micro_rows_table(report),
    )
    print(f"wrote {OUT_PATH}")


def test_optimizer_bench_smoke():
    """Cheap correctness gate: tiny sweep, result equality must hold."""
    report = run_sweep(sizes=[1000], micro_rows=5000)
    assert report["pipeline"]["rows_checked"]
    assert report["micro"]["determinism_checked"]
    assert len(report["pipeline"]["results"]) == 2 * len(PIPELINE_BACKENDS)
    assert len(report["micro"]["results"]) == 4


def test_report_optimizer(capsys):
    report = run_sweep()
    write_report(report)
    with capsys.disabled():
        _print_report(report)


def main() -> None:
    report = run_sweep()
    write_report(report)
    _print_report(report)


if __name__ == "__main__":
    main()
