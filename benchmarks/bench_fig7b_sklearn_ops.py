"""Figure 7b — the full preprocessing pipeline (pandas + scikit-learn).

Adds the scikit-learn transformers to Figure 7a's setting; fitting
parameters become their own table expressions, so the materialised-view
configuration (which caches them, §3.4.2) joins the measured set.
"""

import pytest

from harness import ALL_BACKENDS, bench_sizes, print_table, run_once

PIPELINES = ["healthcare", "compas", "adult_simple", "adult_complex"]


@pytest.mark.parametrize("pipeline", PIPELINES)
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_sklearn_ops_benchmark(benchmark, pipeline, backend):
    size = bench_sizes()[-1]

    def run():
        run_once(pipeline, size, "sklearn", backend)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report_fig7b(capsys):
    rows = []
    for pipeline in PIPELINES:
        for size in bench_sizes():
            row = [pipeline, size]
            for backend in ALL_BACKENDS:
                row.append(run_once(pipeline, size, "sklearn", backend).seconds)
            rows.append(row)
    with capsys.disabled():
        print_table(
            "Figure 7b: pandas + scikit-learn part, runtime (s)",
            ["pipeline", "tuples"] + ALL_BACKENDS,
            rows,
        )
