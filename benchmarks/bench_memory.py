"""Memory-governor benchmark: spill-to-disk cost and admission behavior.

Three experiments on a healthcare-shaped inspection workload (the
patients x histories ssn join of the paper's running example):

* **join sweep** — the inspection join + aggregation runs unlimited
  first to measure its working set (peak granted bytes), then under
  ``query_memory_limit`` = 1/1, 1/2, 1/4 and 1/8 of that working set.
  Every limited run must return rows identical to the unlimited oracle;
  the report charts runtime against spilled bytes as the budget shrinks.
* **TRAIN sweep** — in-database training over the joined features under
  the same budgets; coefficients must match the unlimited model exactly
  (training is iterative SQL aggregation — spilling must not perturb a
  single gradient step).
* **admission** — eight concurrent clients share a global pool of two
  query budgets; every statement must eventually succeed (53200 sheds
  are retried with backoff), and the report records grants, queue
  waits, sheds and retries.

Results go to ``BENCH_memory.json``.

Scale control
-------------
``REPRO_BENCH_MEMORY_ROWS``  patient count (default ``4000``).
"""

from __future__ import annotations

import json
import os
import platform
import random
import threading
import time

from harness import print_table
from repro.errors import OutOfMemory
from repro.sqldb import Database

REPEATS = 3
OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_memory.json")

#: denominators of the working-set fractions the sweep runs at
FRACTIONS = (1, 2, 4, 8)

CLIENTS = 8
STATEMENTS_PER_CLIENT = 4

_JOIN_SQL = (
    "SELECT p.age_group, count(*) AS n, sum(h.charge) AS total, "
    "min(h.charge) AS lo, max(h.charge) AS hi "
    "FROM patients p JOIN histories h ON p.ssn = h.ssn "
    "GROUP BY p.age_group ORDER BY p.age_group"
)

#: top-k costliest patients: the sort still decorates every joined row
#: (the memory-hungry part) while the result batch stays budget-sized
_SORT_SQL = (
    "SELECT p.ssn, h.charge FROM patients p "
    "JOIN histories h ON p.ssn = h.ssn "
    "ORDER BY h.charge DESC, p.ssn LIMIT 200"
)

_TRAIN_SQL = (
    "TRAIN bm USING (SELECT p.smoker, p.children, h.charge AS label "
    "FROM patients p JOIN histories h ON p.ssn = h.ssn) "
    "WITH (estimator = 'linear_regression', max_iter = 10, lr = 0.05, "
    "tol = 0.0)"
)


def _n_rows() -> int:
    return int(os.environ.get("REPRO_BENCH_MEMORY_ROWS", "4000"))


def _load(db: Database, n_rows: int) -> None:
    """Healthcare-shaped tables: text ssn key, demographic columns."""
    rng = random.Random(20260808)
    db.execute(
        "CREATE TABLE patients (ssn text, age_group text, smoker double "
        "precision, children double precision)"
    )
    db.execute("CREATE TABLE histories (ssn text, charge double precision)")
    groups = ["0-18", "19-40", "41-65", "65+"]
    patients = [
        (
            f"{i // 10000:05d}-{i % 10000:04d}",
            rng.choice(groups),
            float(rng.randint(0, 1)),
            float(rng.randint(0, 4)),
        )
        for i in range(n_rows)
    ]
    db.executemany("INSERT INTO patients VALUES (?, ?, ?, ?)", patients)
    histories = [
        (ssn, round(rng.uniform(100.0, 50000.0), 2))
        for ssn, _, _, _ in patients
    ]
    # ~1% orphan histories keep the ssn merge realistic
    histories += [
        (f"99999-{i:04d}", round(rng.uniform(100.0, 50000.0), 2))
        for i in range(max(1, n_rows // 100))
    ]
    rng.shuffle(histories)
    db.executemany("INSERT INTO histories VALUES (?, ?)", histories)


def _make_database(n_rows: int, **kwargs) -> Database:
    db = Database(**kwargs)
    _load(db, n_rows)
    return db


def _time_query(db: Database, sql: str) -> tuple[float, list]:
    best, rows = float("inf"), None
    for _ in range(REPEATS):
        started = time.perf_counter()
        rows = db.execute(sql).rows
        best = min(best, time.perf_counter() - started)
    return best, rows


def _working_set(n_rows: int) -> int:
    """Peak granted bytes of the join workload when nothing is denied
    (a governed database with an effectively unbounded budget)."""
    db = _make_database(n_rows, memory_limit="4gb")
    try:
        db.execute(_JOIN_SQL)
        db.execute(_SORT_SQL)
        return int(db.memory_stats()["session"]["peak_memory_bytes"])
    finally:
        db.close()


def join_sweep(n_rows: int) -> list[dict]:
    oracle_db = _make_database(n_rows)
    try:
        oracle_seconds, oracle_rows = _time_query(oracle_db, _JOIN_SQL)
        _, oracle_sorted = _time_query(oracle_db, _SORT_SQL)
    finally:
        oracle_db.close()
    working_set = _working_set(n_rows)
    entries = [
        {
            "budget": "unlimited",
            "query_memory_limit": None,
            "working_set_bytes": working_set,
            "seconds_best": oracle_seconds,
            "spilled_bytes": 0,
            "rows_match": True,
        }
    ]
    for denominator in FRACTIONS:
        limit = max(16 * 1024, working_set // denominator)
        db = _make_database(n_rows, query_memory_limit=limit)
        try:
            seconds, rows = _time_query(db, _JOIN_SQL)
            _, sorted_rows = _time_query(db, _SORT_SQL)
            assert rows == oracle_rows, f"join diverged at 1/{denominator}"
            assert sorted_rows == oracle_sorted, (
                f"sort diverged at 1/{denominator}"
            )
            entries.append(
                {
                    "budget": f"1/{denominator}",
                    "query_memory_limit": limit,
                    "working_set_bytes": working_set,
                    "seconds_best": seconds,
                    "spilled_bytes": int(
                        db.memory_stats()["session"]["spilled_bytes"]
                    ),
                    "rows_match": True,
                }
            )
        finally:
            db.close()
    return entries


def train_sweep(n_rows: int) -> list[dict]:
    oracle_db = _make_database(n_rows)
    try:
        started = time.perf_counter()
        oracle_db.execute(_TRAIN_SQL)
        oracle_seconds = time.perf_counter() - started
        oracle = oracle_db.model("bm")
        oracle_coef = (oracle.coef, oracle.intercept)
    finally:
        oracle_db.close()
    working_set = _working_set(n_rows)
    entries = [
        {
            "budget": "unlimited",
            "query_memory_limit": None,
            "seconds_best": oracle_seconds,
            "spilled_bytes": 0,
            "coef_identical": True,
        }
    ]
    for denominator in FRACTIONS:
        limit = max(16 * 1024, working_set // denominator)
        db = _make_database(n_rows, query_memory_limit=limit)
        try:
            best = float("inf")
            for _ in range(REPEATS):
                started = time.perf_counter()
                db.execute(_TRAIN_SQL)
                best = min(best, time.perf_counter() - started)
            model = db.model("bm")
            assert (model.coef, model.intercept) == oracle_coef, (
                f"training diverged at 1/{denominator}"
            )
            entries.append(
                {
                    "budget": f"1/{denominator}",
                    "query_memory_limit": limit,
                    "seconds_best": best,
                    # TRAIN runs under the writer path (no session), so
                    # read the broker's lifetime spill counter instead
                    "spilled_bytes": int(
                        db.memory.spill.total_spilled_bytes
                    ),
                    "coef_identical": True,
                }
            )
        finally:
            db.close()
    return entries


def admission_run(n_rows: int) -> dict:
    """Eight clients, a pool of two query budgets: queue, shed, retry."""
    working_set = _working_set(n_rows)
    query_limit = max(16 * 1024, working_set // 2)
    db = _make_database(
        n_rows, memory_limit=2 * query_limit, query_memory_limit=query_limit
    )
    retries = [0] * CLIENTS
    failures: list[tuple[int, BaseException]] = []

    def client(client_id: int) -> None:
        session = db.session()
        rng = random.Random(client_id)
        try:
            for _ in range(STATEMENTS_PER_CLIENT):
                sql = rng.choice([_JOIN_SQL, _SORT_SQL])
                for attempt in range(50):
                    try:
                        db.execute(sql, session=session)
                        break
                    except OutOfMemory:
                        retries[client_id] += 1
                        time.sleep(0.005 * (attempt + 1))
                else:
                    raise AssertionError("statement never admitted")
        except BaseException as exc:  # noqa: BLE001 - recorded for the report
            failures.append((client_id, exc))

    try:
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        assert not failures, failures
        snapshot = db.memory_stats()
        assert snapshot["reserved_bytes"] == 0
        return {
            "clients": CLIENTS,
            "statements": CLIENTS * STATEMENTS_PER_CLIENT,
            "memory_limit": 2 * query_limit,
            "query_memory_limit": query_limit,
            "seconds_best": elapsed,
            "grants": snapshot["grants"],
            "queued": snapshot["queued"],
            "shed": snapshot["shed"],
            "retries": sum(retries),
            "all_succeeded": True,
        }
    finally:
        db.close()


def run_sweep(n_rows: int | None = None) -> dict:
    n_rows = n_rows or _n_rows()
    return {
        "benchmark": "bench_memory",
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "n_rows": n_rows,
        "repeats": REPEATS,
        "join_sweep": join_sweep(n_rows),
        "train_sweep": train_sweep(n_rows),
        "admission": admission_run(n_rows),
    }


def write_report(report: dict, path: str = OUT_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def _print_report(report: dict) -> None:
    print_table(
        f"inspection join under memory budgets (rows={report['n_rows']})",
        ["budget", "limit (bytes)", "seconds", "spilled (bytes)", "match"],
        [
            [
                entry["budget"],
                entry["query_memory_limit"] or "-",
                entry["seconds_best"],
                entry["spilled_bytes"],
                "yes" if entry["rows_match"] else "NO",
            ]
            for entry in report["join_sweep"]
        ],
    )
    print_table(
        "TRAIN under memory budgets",
        ["budget", "limit (bytes)", "seconds", "spilled (bytes)", "coef"],
        [
            [
                entry["budget"],
                entry["query_memory_limit"] or "-",
                entry["seconds_best"],
                entry["spilled_bytes"],
                "exact" if entry["coef_identical"] else "DRIFT",
            ]
            for entry in report["train_sweep"]
        ],
    )
    admission = report["admission"]
    print_table(
        f"admission: {admission['clients']} clients, pool = 2 query budgets",
        ["statements", "seconds", "grants", "queued", "shed", "retries"],
        [
            [
                admission["statements"],
                admission["seconds_best"],
                admission["grants"],
                admission["queued"],
                admission["shed"],
                admission["retries"],
            ]
        ],
    )
    print(f"wrote {OUT_PATH}")


def test_memory_bench_smoke():
    """Cheap correctness gate: tiny sweep, oracle identity throughout."""
    report = run_sweep(n_rows=400)
    assert any(e["spilled_bytes"] > 0 for e in report["join_sweep"])
    assert all(e["rows_match"] for e in report["join_sweep"])
    assert all(e["coef_identical"] for e in report["train_sweep"])
    assert report["admission"]["all_succeeded"]


def test_report_memory(capsys):
    report = run_sweep()
    write_report(report)
    with capsys.disabled():
        _print_report(report)
    assert all(e["rows_match"] for e in report["join_sweep"])


def main() -> None:
    report = run_sweep()
    write_report(report)
    _print_report(report)


if __name__ == "__main__":
    main()
