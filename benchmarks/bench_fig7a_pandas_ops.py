"""Figure 7a — pandas operations vs their SQL translations.

For each pipeline, all code up to the last pandas line runs either natively
(the baseline) or transpiled to SQL under {PostgreSQL, Umbra} x {CTE,
VIEW}; no inspection, no materialisation (every expression runs once).
The paper's shape: SQL overtakes the native path as cardinality grows,
with the CTE mode paying PostgreSQL's materialisation barrier.
"""

import pytest

from harness import ALL_BACKENDS, bench_sizes, print_table, run_once

PIPELINES = ["healthcare", "compas", "adult_simple", "adult_complex"]
BACKENDS = [b for b in ALL_BACKENDS if not b.endswith("mat")]


@pytest.mark.parametrize("pipeline", PIPELINES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_pandas_ops_benchmark(benchmark, pipeline, backend):
    size = bench_sizes()[-1]

    def run():
        run_once(pipeline, size, "pandas", backend)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report_fig7a(capsys):
    rows = []
    for pipeline in PIPELINES:
        for size in bench_sizes():
            row = [pipeline, size]
            for backend in BACKENDS:
                row.append(run_once(pipeline, size, "pandas", backend).seconds)
            rows.append(row)
    with capsys.disabled():
        print_table(
            "Figure 7a: pandas part, runtime (s)",
            ["pipeline", "tuples"] + BACKENDS,
            rows,
        )
