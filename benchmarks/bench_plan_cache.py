"""Plan cache — repeated statement execution, cold vs. warm.

Inspection re-runs issue byte-identical query texts (one per table
expression per inspection), so after the first pass every statement is a
cache hit: lexing, parsing, binding and planning are skipped entirely.
This bench measures that saving on a representative analytical workload
over a small table, where per-statement preparation dominates execution.
"""

import time

from repro.sqldb import Database

from harness import print_table

REPEATS = 30

#: analytic statements heavy on expressions (parse/plan bound on small data)
WORKLOAD = [
    (
        "SELECT g, count(*) AS c, count(n) FILTER (WHERE n > 25) AS big, "
        "count(n) FILTER (WHERE n <= 25) AS small, "
        "sum(n) AS total, sum(n) FILTER (WHERE n % 2 = 0) AS even_total, "
        "min(n) AS lo, max(n) AS hi, avg(n) AS mean, "
        "max(n) - min(n) AS spread, avg(n * n) - avg(n) * avg(n) AS var "
        "FROM t WHERE n IS NOT NULL GROUP BY g ORDER BY g NULLS LAST"
    ),
    (
        "SELECT CASE WHEN n < 5 THEN 'xs' WHEN n < 10 THEN 's' "
        "WHEN n < 20 THEN 'm' WHEN n < 30 THEN 'l' WHEN n < 40 THEN 'xl' "
        "ELSE 'xxl' END AS bucket, count(*) AS c, sum(n) AS total, "
        "avg(n) AS mean, min(n) AS lo, max(n) AS hi "
        "FROM t GROUP BY CASE WHEN n < 5 THEN 'xs' WHEN n < 10 THEN 's' "
        "WHEN n < 20 THEN 'm' WHEN n < 30 THEN 'l' WHEN n < 40 THEN 'xl' "
        "ELSE 'xxl' END ORDER BY bucket"
    ),
    (
        "WITH stats AS (SELECT g, avg(n) AS mean, min(n) AS lo, "
        "max(n) AS hi, count(*) AS c FROM t GROUP BY g) "
        "SELECT t.g, t.n - stats.mean AS centered, "
        "(t.n - stats.lo) / (stats.hi - stats.lo + 1) AS scaled, "
        "stats.c AS group_size FROM t "
        "INNER JOIN stats ON t.g = stats.g "
        "ORDER BY t.g, t.n NULLS FIRST"
    ),
    (
        "SELECT g || '-' || (n / 10) AS cohort, count(*) AS c, "
        "sum(CASE WHEN n % 3 = 0 THEN 1 ELSE 0 END) AS div3, "
        "sum(CASE WHEN n % 5 = 0 THEN 1 ELSE 0 END) AS div5 "
        "FROM t WHERE n IS NOT NULL GROUP BY g || '-' || (n / 10) "
        "ORDER BY cohort"
    ),
    (
        "SELECT g, n, row_number() OVER (PARTITION BY g ORDER BY n) AS rank "
        "FROM t WHERE n IS NOT NULL AND n > 2 AND n < 48 "
        "AND g IN ('g0', 'g1', 'g2', 'g3', 'g4') ORDER BY g, n"
    ),
]


def _make_db(plan_cache_size: int) -> Database:
    db = Database("postgres", plan_cache_size=plan_cache_size)
    db.execute("CREATE TABLE t (g text, n int)")
    rows = ", ".join(
        f"('g{i % 5}', {(i * 37) % 50 if i % 11 else 'NULL'})"
        for i in range(32)
    )
    db.execute(f"INSERT INTO t VALUES {rows}")
    return db


def _run_workload(db: Database, repeats: int) -> list:
    results = []
    for _ in range(repeats):
        for sql in WORKLOAD:
            results.append(db.execute(sql).rows)
    return results


def _timed(db: Database, repeats: int) -> tuple[float, list]:
    started = time.perf_counter()
    results = _run_workload(db, repeats)
    return time.perf_counter() - started, results


def measure() -> dict:
    cold_db = _make_db(plan_cache_size=0)
    warm_db = _make_db(plan_cache_size=128)
    _run_workload(warm_db, 1)  # prime the cache
    cold_seconds, cold_results = _timed(cold_db, REPEATS)
    warm_seconds, warm_results = _timed(warm_db, REPEATS)
    return {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "identical": cold_results == warm_results,
        "stats": warm_db.plan_cache.stats,
    }


def test_warm_bench(benchmark):
    db = _make_db(plan_cache_size=128)
    _run_workload(db, 1)
    benchmark.pedantic(lambda: _run_workload(db, 1), rounds=10, iterations=1)


def test_cold_bench(benchmark):
    db = _make_db(plan_cache_size=0)
    benchmark.pedantic(lambda: _run_workload(db, 1), rounds=10, iterations=1)


def test_report_plan_cache(capsys):
    outcome = measure()
    assert outcome["identical"], "cold and warm runs must return the same rows"
    assert outcome["speedup"] >= 2.0, (
        f"warm runs expected >=2x faster, got {outcome['speedup']:.2f}x"
    )
    with capsys.disabled():
        print_table(
            "Plan cache: repeated statement execution (s)",
            ["statements", "cold (s)", "warm (s)", "speedup", "hit rate"],
            [
                [
                    len(WORKLOAD) * REPEATS,
                    outcome["cold_seconds"],
                    outcome["warm_seconds"],
                    f"{outcome['speedup']:.1f}x",
                    "{hits}/{hits_and_misses}".format(
                        hits=outcome["stats"]["hits"],
                        hits_and_misses=outcome["stats"]["hits"]
                        + outcome["stats"]["misses"],
                    ),
                ]
            ],
        )
