"""Replication benchmark: read scaling, failover time, lag under load.

Three sweeps over a loopback topology, all written to
``BENCH_replication.json``:

* **read scaling** — aggregate SELECT throughput as the replica count
  grows 1 → 4, with a fixed pool of reader threads round-robining over
  the replica set through
  :class:`~repro.core.connectors.MultiEndpointConnector`, next to the
  same reader pool pointed at the primary alone.  Every node lives in
  *one* Python process here, so the sweep measures routing overhead
  and write/read isolation — not true scale-out, which needs one
  process per node (the GIL caps the aggregate).
* **failover TTR** — the client-visible write outage across a primary
  crash: kill the primary mid-workload, promote the replica after a
  fixed delay, and measure from the kill to the first acknowledged
  write on the promoted node.  The overhead above the promotion delay
  is what the 57P03 retry loop costs.
* **lag under write load** — stream a sustained single-row INSERT load
  through the primary while sampling the replica's commit lag; reports
  the peak and mean lag (in commits) and the drain time after the load
  stops.

Scale control
-------------
``REPRO_BENCH_REPLICATION_STATEMENTS``  statements per reader / writer
per configuration (default ``60``).
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time

from harness import print_table
from repro.core.connectors import MultiEndpointConnector
from repro.sqldb import client
from repro.sqldb.replication import Primary, Replica

OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_replication.json")

REPLICA_COUNTS = (1, 2, 4)
READER_THREADS = 8
SEED_ROWS = 2000

SELECT_SQL = (
    "SELECT tag, count(*) AS c, sum(val) AS s FROM bench "
    "WHERE val < 200 GROUP BY tag"
)


def _statements() -> int:
    return int(os.environ.get("REPRO_BENCH_REPLICATION_STATEMENTS", "60"))


def _make_primary() -> Primary:
    primary = Primary(host="127.0.0.1", port=0).start()
    db = primary.database
    db.execute("CREATE TABLE bench (tag text, val int)")
    db.executemany(
        "INSERT INTO bench (tag, val) VALUES (?, ?)",
        [(f"t{i % 17}", i % 251) for i in range(SEED_ROWS)],
    )
    return primary


def _drain(primary: Primary, replicas: list[Replica], timeout=30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(
            r.database.last_applied_commit_id
            >= primary.manager.last_commit_id
            for r in replicas
        ):
            return
        time.sleep(0.005)
    raise TimeoutError("replicas did not drain")


def _read_sweep(endpoints, statements: int) -> dict:
    """Aggregate read throughput for READER_THREADS clients."""
    barrier = threading.Barrier(READER_THREADS + 1)
    errors: list[BaseException] = []

    def reader() -> None:
        conn = MultiEndpointConnector(endpoints, probe_ttl_s=5.0)
        try:
            barrier.wait()
            for _ in range(statements):
                conn.run(SELECT_SQL)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=reader) for _ in range(READER_THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    total = READER_THREADS * statements
    return {
        "statements": total,
        "seconds": elapsed,
        "statements_per_s": total / elapsed,
    }


def run_read_scaling(statements: int) -> list[dict]:
    results = []
    primary = _make_primary()
    replicas: list[Replica] = []
    try:
        # single-node ceiling: every read hits the primary
        baseline = _read_sweep([primary.address], statements)
        results.append({"replicas": 0, **baseline})
        for count in REPLICA_COUNTS:
            while len(replicas) < count:
                replicas.append(
                    Replica(
                        primary.address,
                        name=f"bench-r{len(replicas)}",
                    ).start()
                )
            _drain(primary, replicas)
            endpoints = [primary.address] + [r.address for r in replicas]
            sweep = _read_sweep(endpoints, statements)
            results.append({"replicas": count, **sweep})
    finally:
        for replica in replicas:
            replica.close()
        primary.kill()
        primary.database.close()
    return results


def run_failover(statements: int, promote_delay_s: float = 0.1) -> dict:
    primary = _make_primary()
    replica = Replica(primary.address, name="bench-failover").start()
    conn = MultiEndpointConnector(
        [primary.address, replica.address],
        probe_ttl_s=0.05, attempts=12, base_delay=0.01, max_delay=0.1,
    )
    try:
        for i in range(statements):
            conn.run(f"INSERT INTO bench VALUES ('pre', {i})")
        _drain(primary, [replica])
        primary.kill()

        def promote() -> None:
            time.sleep(promote_delay_s)
            with client.connect(*replica.address) as admin:
                admin.promote()

        threading.Thread(target=promote, daemon=True).start()
        started = time.perf_counter()
        conn.run("INSERT INTO bench VALUES ('post', 0)")
        downtime = time.perf_counter() - started
        return {
            "promote_delay_s": promote_delay_s,
            "failover_seconds": downtime,
            "retry_overhead_seconds": max(0.0, downtime - promote_delay_s),
            "client_retries": conn.retries,
        }
    finally:
        conn.close()
        replica.close()
        primary.kill()
        primary.database.close()


def run_lag_under_load(statements: int) -> dict:
    primary = _make_primary()
    replica = Replica(primary.address, name="bench-lag").start()
    db = primary.database
    samples: list[int] = []
    try:
        _drain(primary, [replica])
        stop = threading.Event()

        def sampler() -> None:
            while not stop.is_set():
                samples.append(
                    max(
                        0,
                        primary.manager.last_commit_id
                        - replica.database.last_applied_commit_id,
                    )
                )
                time.sleep(0.002)

        thread = threading.Thread(target=sampler, daemon=True)
        thread.start()
        started = time.perf_counter()
        for i in range(statements * 4):
            db.execute(f"INSERT INTO bench VALUES ('load', {i})")
        write_seconds = time.perf_counter() - started
        drain_started = time.perf_counter()
        _drain(primary, [replica])
        drain_seconds = time.perf_counter() - drain_started
        stop.set()
        thread.join(timeout=5.0)
        return {
            "commits": statements * 4,
            "write_seconds": write_seconds,
            "commits_per_s": (statements * 4) / write_seconds,
            "max_lag_commits": max(samples) if samples else 0,
            "mean_lag_commits": (
                sum(samples) / len(samples) if samples else 0.0
            ),
            "drain_seconds": drain_seconds,
        }
    finally:
        replica.close()
        primary.kill()
        primary.database.close()


def run_sweep(statements: int | None = None) -> dict:
    statements = statements or _statements()
    return {
        "benchmark": "bench_replication",
        "python": platform.python_version(),
        "statements_per_client": statements,
        "read_scaling": run_read_scaling(statements),
        "failover": run_failover(statements),
        "lag_under_load": run_lag_under_load(statements),
    }


def main() -> None:
    report = run_sweep()
    print_table(
        "replica read scaling (8 reader threads)",
        ["replicas", "statements/s"],
        [
            [row["replicas"], f"{row['statements_per_s']:.0f}"]
            for row in report["read_scaling"]
        ],
    )
    failover = report["failover"]
    print(
        f"failover: {failover['failover_seconds'] * 1000:.1f} ms downtime "
        f"({failover['client_retries']} retries, promote delay "
        f"{failover['promote_delay_s'] * 1000:.0f} ms)"
    )
    lag = report["lag_under_load"]
    print(
        f"lag under load: peak {lag['max_lag_commits']} commits, "
        f"mean {lag['mean_lag_commits']:.1f}, drain "
        f"{lag['drain_seconds'] * 1000:.1f} ms "
        f"at {lag['commits_per_s']:.0f} commits/s"
    )
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
