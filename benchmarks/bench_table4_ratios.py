"""Table 4 — sensitive-group ratios before vs after preprocessing.

Reproduces the paper's before/after ratio tables for (a) the healthcare
pipeline's age_group column and (b) the adult-simple pipeline's race
column, computed by the SQL backend's histogram queries.
"""

import pytest

from harness import make_inspector, print_table
from repro.core.connectors import PostgresqlConnector
from repro.inspection import HistogramForColumns, OperatorType


def _first_last_histograms(result, column):
    inspection = None
    for node, results in result.dag_node_to_inspection_results.items():
        for key in results:
            if isinstance(key, HistogramForColumns):
                inspection = key
                break
        if inspection:
            break
    histograms = result.histograms_for(inspection)
    with_column = [
        (node, h[column]) for node, h in histograms.items() if column in h
    ]
    assert with_column, f"no histograms recorded for {column!r}"
    return with_column[0][1], with_column[-1][1]


def _ratios(histogram):
    total = sum(histogram.values())
    return {k: v / total for k, v in histogram.items()}


def _run(pipeline, size, sensitive):
    return make_inspector(
        pipeline, size, "sklearn", with_inspection=True, sensitive=sensitive
    ).execute_in_sql(dbms_connector=PostgresqlConnector(), mode="VIEW")


CASES = [
    ("healthcare", 889, "age_group"),
    ("adult_simple", 9771, "race"),
]


@pytest.mark.parametrize("pipeline,size,column", CASES)
def test_table4_benchmark(benchmark, pipeline, size, column):
    benchmark.pedantic(
        lambda: _run(pipeline, size, [column]), rounds=1, iterations=1
    )


def test_report_table4(capsys):
    rows = []
    for pipeline, size, column in CASES:
        result = _run(pipeline, size, [column])
        before, after = _first_last_histograms(result, column)
        before_ratios = _ratios(before)
        after_ratios = _ratios(after)
        for value in sorted(set(before_ratios) | set(after_ratios), key=str):
            rows.append(
                [
                    pipeline,
                    column,
                    str(value),
                    before_ratios.get(value, 0.0),
                    after_ratios.get(value, 0.0),
                ]
            )
    with capsys.disabled():
        print_table(
            "Table 4: ratios before/after preprocessing",
            ["pipeline", "column", "group", "before", "after"],
            rows,
        )
