"""Secondary-index benchmark: access paths on the healthcare shape.

Measures what the index layer buys on the three query classes the
inspection workload actually issues, over a synthetic healthcare star
schema (patients → encounters → observations, plus conditions):

* **point** — single-row lookups by primary key and by foreign key
  (``IndexScan`` eq probes vs full scans),
* **filter** — selective single-table predicates (eq probe on a
  low-cardinality column, range probe on a sorted index),
* **join** — 3–5-way inspection joins seeded by a selective filter
  (``IndexJoin`` nested-loop chains vs hash-join pipelines).

Both configurations run with the optimizer on and ANALYZE'd statistics;
the only difference is whether indexes exist, so the delta is the access
path itself.  Every timed query is first checked row-identical between
the two databases, and plans are warmed so the numbers measure execution
(the steady state under the plan cache), not parsing.

Results go to ``BENCH_indexes.json``.

Scale control
-------------
``REPRO_BENCH_INDEXES_PATIENTS``  patient count (default ``50000``);
encounters/observations/conditions scale at 3x/6x/2x that.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time

from harness import print_table
from repro.sqldb import Database

REPEATS = 3
OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_indexes.json")

N_COUNTIES = 400
N_CODES = 200

INDEX_DDL = [
    "CREATE UNIQUE INDEX patients_id ON patients (id)",
    "CREATE INDEX patients_county ON patients (county)",
    "CREATE INDEX patients_age ON patients (age)",
    "CREATE UNIQUE INDEX encounters_id ON encounters (id)",
    "CREATE INDEX encounters_patient ON encounters (patient_id)",
    "CREATE INDEX observations_encounter ON observations (encounter_id)",
    "CREATE INDEX conditions_patient ON conditions (patient_id)",
]


def _n_patients() -> int:
    return int(os.environ.get("REPRO_BENCH_INDEXES_PATIENTS", "50000"))


def _make_database(n_patients: int, indexed: bool) -> Database:
    rng = random.Random(1117)
    db = Database(optimize=True)
    db.execute("CREATE TABLE patients (id int, county text, age int)")
    db.execute(
        "CREATE TABLE encounters (id int, patient_id int, kind text)"
    )
    db.execute(
        "CREATE TABLE observations "
        "(id int, encounter_id int, code text, value double precision)"
    )
    db.execute("CREATE TABLE conditions (id int, patient_id int, code text)")
    db.execute("CREATE TABLE codes (code text, severity int)")

    n_enc = 3 * n_patients
    n_obs = 6 * n_patients
    n_cond = 2 * n_patients
    db.catalog.table("patients").append_columns(
        {
            "id": list(range(n_patients)),
            "county": [f"county{rng.randrange(N_COUNTIES)}" for _ in range(n_patients)],
            "age": [rng.randrange(100) for _ in range(n_patients)],
        },
        n_patients,
    )
    db.catalog.table("encounters").append_columns(
        {
            "id": list(range(n_enc)),
            "patient_id": [rng.randrange(n_patients) for _ in range(n_enc)],
            "kind": [rng.choice(["wellness", "urgent", "inpatient"]) for _ in range(n_enc)],
        },
        n_enc,
    )
    db.catalog.table("observations").append_columns(
        {
            "id": list(range(n_obs)),
            "encounter_id": [rng.randrange(n_enc) for _ in range(n_obs)],
            "code": [f"code{rng.randrange(N_CODES)}" for _ in range(n_obs)],
            "value": [rng.random() * 200.0 for _ in range(n_obs)],
        },
        n_obs,
    )
    db.catalog.table("conditions").append_columns(
        {
            "id": list(range(n_cond)),
            "patient_id": [rng.randrange(n_patients) for _ in range(n_cond)],
            "code": [f"code{rng.randrange(N_CODES)}" for _ in range(n_cond)],
        },
        n_cond,
    )
    db.catalog.table("codes").append_columns(
        {
            "code": [f"code{i}" for i in range(N_CODES)],
            "severity": [i % 5 for i in range(N_CODES)],
        },
        N_CODES,
    )
    db.catalog.bump_version()
    if indexed:
        for ddl in INDEX_DDL:
            db.execute(ddl)
    db.analyze()
    return db


def _queries(n_patients: int) -> list[dict]:
    """Named query groups; each group is timed as one unit (all of its
    statements, back to back)."""
    n_enc = 3 * n_patients
    point_ids = [(i * 7919) % n_patients for i in range(20)]
    point_encs = [(i * 104729) % n_enc for i in range(20)]
    return [
        {
            "name": "point-lookup-unique",
            "kind": "point",
            "sql": [
                f"SELECT age FROM patients WHERE id = {i}"
                for i in point_ids
            ],
        },
        {
            "name": "point-lookup-fk",
            "kind": "point",
            "sql": [
                "SELECT code, value FROM observations "
                f"WHERE encounter_id = {i}"
                for i in point_encs
            ],
        },
        {
            "name": "selective-filter-eq",
            "kind": "filter",
            "sql": [
                "SELECT count(*), sum(age) FROM patients "
                f"WHERE county = 'county{c}'"
                for c in (3, 77, 201, 399)
            ],
        },
        {
            "name": "selective-filter-range",
            "kind": "filter",
            "sql": [
                "SELECT count(*) FROM patients WHERE age < 3",
                "SELECT count(*) FROM patients WHERE age BETWEEN 97 AND 99",
            ],
        },
        {
            "name": "join-3way-by-patient",
            "kind": "join",
            "sql": [
                "SELECT p.county, e.kind, o.value "
                "FROM patients p "
                "JOIN encounters e ON p.id = e.patient_id "
                "JOIN observations o ON e.id = o.encounter_id "
                f"WHERE p.id = {i}"
                for i in point_ids[:5]
            ],
        },
        {
            "name": "join-4way-by-county",
            "kind": "join",
            "sql": [
                "SELECT count(*), sum(o.value) "
                "FROM patients p "
                "JOIN encounters e ON p.id = e.patient_id "
                "JOIN observations o ON e.id = o.encounter_id "
                "JOIN conditions c ON p.id = c.patient_id "
                f"WHERE p.county = 'county{c}'"
                for c in (11, 222)
            ],
        },
        {
            "name": "join-5way-inspection",
            "kind": "join",
            "sql": [
                "SELECT o.code, count(*), max(k.severity) "
                "FROM patients p "
                "JOIN encounters e ON p.id = e.patient_id "
                "JOIN observations o ON e.id = o.encounter_id "
                "JOIN conditions c ON p.id = c.patient_id "
                "JOIN codes k ON o.code = k.code "
                f"WHERE p.county = 'county{c}' "
                "GROUP BY o.code ORDER BY o.code"
                for c in (42,)
            ],
        },
    ]


def _canonical(rows):
    """Sorted rows with floats rounded: join reordering legally changes
    float summation order, so aggregates may differ in the last ulp."""
    rounded = [
        tuple(
            float(f"{v:.9g}") if isinstance(v, float) else v for v in row
        )
        for row in rows
    ]
    return sorted(rounded, key=repr)


def _run_group(db: Database, group: dict) -> tuple[float, list]:
    """Best-of-REPEATS wall time for the whole group, plus its rows."""
    rows = [db.execute(sql).rows for sql in group["sql"]]  # warm plans
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for sql in group["sql"]:
            db.execute(sql)
        best = min(best, time.perf_counter() - started)
    return best, [_canonical(r) for r in rows]


def run_sweep(n_patients=None) -> dict:
    n_patients = n_patients or _n_patients()
    plain = _make_database(n_patients, indexed=False)
    indexed = _make_database(n_patients, indexed=True)
    results = []
    try:
        for group in _queries(n_patients):
            base_seconds, base_rows = _run_group(plain, group)
            idx_seconds, idx_rows = _run_group(indexed, group)
            assert base_rows == idx_rows, (
                f"indexes changed the result of group {group['name']}"
            )
            plans = [
                indexed.explain(sql).count("Index") for sql in group["sql"]
            ]
            results.append(
                {
                    "group": group["name"],
                    "kind": group["kind"],
                    "statements": len(group["sql"]),
                    "seconds_noindex": base_seconds,
                    "seconds_indexed": idx_seconds,
                    "speedup": base_seconds / idx_seconds,
                    "index_nodes_in_plans": sum(plans),
                    "rows_checked": True,
                }
            )
    finally:
        plain.close()
        indexed.close()
    return {
        "benchmark": "bench_indexes",
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "n_patients": n_patients,
        "repeats": REPEATS,
        "results": results,
    }


def write_report(report: dict, path: str = OUT_PATH) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def _print_report(report: dict) -> None:
    print_table(
        f"Secondary indexes (patients={report['n_patients']}), "
        "group runtime (s)",
        ["group", "kind", "stmts", "no index (s)", "indexed (s)", "speedup"],
        [
            [
                entry["group"],
                entry["kind"],
                entry["statements"],
                entry["seconds_noindex"],
                entry["seconds_indexed"],
                f"{entry['speedup']:.1f}x",
            ]
            for entry in report["results"]
        ],
    )
    print(f"wrote {OUT_PATH}")


def test_indexes_bench_smoke():
    """Cheap correctness gate: tiny sweep, result equality must hold."""
    report = run_sweep(n_patients=2000)
    assert all(entry["rows_checked"] for entry in report["results"])
    # every group actually planned at least one index node when indexed
    assert all(
        entry["index_nodes_in_plans"] > 0 for entry in report["results"]
    )


def test_report_indexes(capsys):
    report = run_sweep()
    write_report(report)
    with capsys.disabled():
        _print_report(report)
    point = [e for e in report["results"] if e["kind"] == "point"]
    joins = [e for e in report["results"] if e["kind"] == "join"]
    assert max(e["speedup"] for e in point) >= 10.0
    assert max(e["speedup"] for e in joins) >= 2.0


def main() -> None:
    report = run_sweep()
    write_report(report)
    _print_report(report)


if __name__ == "__main__":
    main()
