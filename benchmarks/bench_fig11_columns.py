"""Figure 11 — runtime vs number of inspected columns (NYC taxi).

One selection (``passenger_count > 1``) over the taxi data while the
number of inspected sensitive columns grows from 1 to 5.  The paper's
shape: the PostgreSQL CTE mode grows linearly with the column count (each
inspection query re-runs the whole chain), the VIEW mode grows more slowly
(holistic optimisation), Umbra's modes coincide.
"""

import pytest

from harness import bench_sizes, print_table, run_once

COLUMNS = [
    "passenger_count",
    "trip_distance",
    "PULocationID",
    "DOLocationID",
    "payment_type",
]
BACKENDS = ["python", "postgres-cte", "postgres-view", "umbra-cte", "umbra-view"]


def _taxi_size() -> int:
    return max(bench_sizes()[-1], 1000)


@pytest.mark.parametrize("n_columns", [1, 3, 5])
@pytest.mark.parametrize("backend", BACKENDS)
def test_fig11_benchmark(benchmark, n_columns, backend):
    size = _taxi_size()

    def run():
        run_once(
            "taxi", size, "pandas", backend,
            with_inspection=True, sensitive=COLUMNS[:n_columns],
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report_fig11(capsys):
    size = _taxi_size()
    rows = []
    for n_columns in range(1, len(COLUMNS) + 1):
        row = [n_columns]
        for backend in BACKENDS:
            outcome = run_once(
                "taxi", size, "pandas", backend,
                with_inspection=True, sensitive=COLUMNS[:n_columns],
            )
            row.append(outcome.seconds)
        rows.append(row)
    with capsys.disabled():
        print_table(
            f"Figure 11: runtime vs #inspected columns, taxi, {size} tuples (s)",
            ["#columns"] + BACKENDS,
            rows,
        )
