"""Table 3 — transpilation time to SQL.

The paper reports ~17-134 ms per pipeline for generating the SQL (pandas
part, plus scikit-learn, plus inspection), for both the VIEW and the CTE
representation.  Transpilation here means running the pipeline on the
sample to build every table expression plus the inspection queries —
measured on the small original datasets without any large execution.
"""

import pytest

from harness import make_inspector, print_table, run_once
from repro.core.connectors import UmbraConnector

PIPELINES = ["healthcare", "compas", "adult_simple", "adult_complex"]
STAGES = ["pandas", "sklearn"]
SIZE = 500  # transpilation cost is size-independent (sample-based)


@pytest.mark.parametrize("pipeline", PIPELINES)
@pytest.mark.parametrize("mode", ["CTE", "VIEW"])
def test_transpilation_benchmark(benchmark, pipeline, mode):
    """pytest-benchmark target: pandas+sklearn transpilation time."""
    inspector = make_inspector(pipeline, SIZE, "sklearn")

    def transpile():
        make_inspector(pipeline, SIZE, "sklearn").execute_in_sql(
            dbms_connector=UmbraConnector(), mode=mode
        )

    benchmark.pedantic(transpile, rounds=3, iterations=1)


def test_report_table3(capsys):
    """Regenerate Table 3's rows (seconds per pipeline/stage/mode)."""
    rows = []
    for pipeline in PIPELINES:
        row = [pipeline]
        for stage in STAGES:
            for mode in ("VIEW", "CTE"):
                backend = f"umbra-{mode.lower()}"
                outcome = run_once(pipeline, SIZE, stage, backend)
                row.append(outcome.seconds)
        # + inspection
        for mode in ("VIEW", "CTE"):
            outcome = run_once(
                pipeline, SIZE, "sklearn", f"umbra-{mode.lower()}",
                with_inspection=True,
            )
            row.append(outcome.seconds)
        rows.append(row)
    with capsys.disabled():
        print_table(
            "Table 3: transpilation + execution time on original-size data (s)",
            [
                "pipeline",
                "pandas/VIEW", "pandas/CTE",
                "+sklearn/VIEW", "+sklearn/CTE",
                "+inspection/VIEW", "+inspection/CTE",
            ],
            rows,
        )
