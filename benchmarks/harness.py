"""Shared benchmark harness for the paper's tables and figures.

Every bench module uses this to (a) generate/cache datasets at the
requested scale, (b) run a pipeline under one of the six measured
configurations, and (c) print paper-style result tables.

Scale control
-------------
``REPRO_BENCH_SIZES``  comma list of dataset sizes (default ``100,1000``;
the paper sweeps 10^2..10^6 — set ``100,1000,10000,100000,1000000`` to
reproduce the full sweep).

``REPRO_SQL_WORKERS``  morsel-execution worker count picked up by every
SQL connector (also settable per run via ``run_once(..., workers=N)`` or
``pytest benchmarks --workers N``), so the existing Fig-7/8 benches can
be re-run as parallel variants without edits.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.connectors import PostgresqlConnector, UmbraConnector
from repro.datasets import (
    ensure_adult,
    ensure_compas,
    ensure_healthcare,
    ensure_taxi,
)
from repro.inspection import NoBiasIntroducedFor, PipelineInspector
from repro.pipelines import PIPELINE_BUILDERS

__all__ = [
    "ALL_BACKENDS",
    "BACKENDS_NO_PYTHON",
    "SENSITIVE_COLUMNS",
    "bench_sizes",
    "dataset_dir_for",
    "make_inspector",
    "print_table",
    "run_once",
]

#: measured configurations, in the paper's presentation order
ALL_BACKENDS = [
    "python",
    "postgres-cte",
    "postgres-view",
    "postgres-view-mat",
    "umbra-cte",
    "umbra-view",
]
BACKENDS_NO_PYTHON = ALL_BACKENDS[1:]

#: sensitive columns inspected per pipeline (the paper's choices)
SENSITIVE_COLUMNS = {
    "healthcare": ["race", "age_group"],
    "compas": ["sex", "race"],
    "adult_simple": ["race"],
    "adult_complex": ["race"],
    "taxi": ["passenger_count"],
}

_DEFAULT_SIZES = "100,1000"


def bench_sizes() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SIZES", _DEFAULT_SIZES)
    return [int(part) for part in raw.split(",") if part.strip()]


def dataset_dir_for(pipeline: str, size: int, seed: int = 0) -> str:
    """Ensure the pipeline's dataset exists at *size* rows; return its dir."""
    if pipeline == "healthcare":
        paths = ensure_healthcare(size, seed)
        return os.path.dirname(paths["patients"])
    if pipeline == "compas":
        paths = ensure_compas(size, max(size // 4, 10), seed)
        return os.path.dirname(paths["train"])
    if pipeline in ("adult_simple", "adult_complex"):
        paths = ensure_adult(size, max(size // 4, 10), seed)
        return os.path.dirname(paths["train"])
    if pipeline == "taxi":
        return os.path.dirname(ensure_taxi(size, seed))
    raise ValueError(f"unknown pipeline {pipeline!r}")


def make_inspector(
    pipeline: str,
    size: int,
    upto: str,
    with_inspection: bool = False,
    sensitive: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> PipelineInspector:
    directory = dataset_dir_for(pipeline, size, seed)
    source = PIPELINE_BUILDERS[pipeline](directory, upto=upto)
    inspector = PipelineInspector.on_pipeline_from_string(
        source, filename=f"<{pipeline}>"
    )
    if with_inspection:
        columns = list(sensitive or SENSITIVE_COLUMNS[pipeline])
        inspector = inspector.add_check(NoBiasIntroducedFor(columns))
    return inspector


def _execute(
    inspector: PipelineInspector,
    backend: str,
    workers: Optional[int] = None,
    optimize: Optional[bool] = None,
):
    if backend == "python":
        return inspector.execute()
    engine, _, variant = backend.partition("-")
    connector = (
        PostgresqlConnector(workers=workers, optimize=optimize)
        if engine == "postgres"
        else UmbraConnector(workers=workers, optimize=optimize)
    )
    mode = "CTE" if variant.startswith("cte") else "VIEW"
    materialize = variant.endswith("mat")
    return inspector.execute_in_sql(
        dbms_connector=connector, mode=mode, materialize=materialize
    )


@dataclass
class RunOutcome:
    seconds: float
    result: Any = None


def run_once(
    pipeline: str,
    size: int,
    upto: str,
    backend: str,
    with_inspection: bool = False,
    sensitive: Optional[Sequence[str]] = None,
    keep_result: bool = False,
    workers: Optional[int] = None,
    optimize: Optional[bool] = None,
) -> RunOutcome:
    """One timed end-to-end run of a pipeline configuration.

    ``workers=None`` defers to ``REPRO_SQL_WORKERS`` and the engine
    profile; an explicit count forces morsel-driven parallel execution
    on the SQL backends (``python`` ignores it).  ``optimize`` toggles
    the statistics-driven rewrite layer on the SQL backends (None:
    profile default, i.e. off).
    """
    inspector = make_inspector(
        pipeline, size, upto, with_inspection, sensitive
    )
    started = time.perf_counter()
    result = _execute(inspector, backend, workers=workers, optimize=optimize)
    elapsed = time.perf_counter() - started
    return RunOutcome(elapsed, result if keep_result else None)


def print_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> None:
    """Print an aligned, paper-style results table."""
    rendered = [
        [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [
        max(len(header[j]), *(len(r[j]) for r in rendered)) if rendered else len(header[j])
        for j in range(len(header))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title}")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
