"""Benchmark regression gate: fresh BENCH_*.json vs committed baselines.

Compares every timing field of the working-tree benchmark reports against
the last committed version of the same file (``git show HEAD:<path>``)
and fails when a timing regressed by more than the threshold (default
20%).  Structure drift is tolerated: only paths present in both reports
are compared, so adding a benchmark group never trips the gate.

Run standalone::

    python benchmarks/check_bench.py [--threshold 0.2] [BENCH_foo.json ...]

or as an opt-in pytest gate (wired through ``conftest.py``)::

    pytest benchmarks/check_bench.py --check-bench

Timings on shared machines are noisy — the 20% bar plus best-of-repeats
in the benchmarks themselves keeps false alarms rare, but a genuine 2x
regression (say, an access path silently stops firing) is caught even
when the suite's correctness tests all still pass.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys

import pytest

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_THRESHOLD = 0.20

#: JSON keys holding seconds-scale timings (lower is better)
TIMING_KEYS = frozenset(
    {
        "seconds_best",
        "query_seconds_best",
        "seconds_noindex",
        "seconds_indexed",
        "p50_seconds",
        "p95_seconds",
        "sql_seconds_best",
        "sql_parallel_seconds_best",
        "iteration_seconds_best",
        "failover_seconds",
    }
)


def committed_baseline(path: str) -> dict | None:
    """The last committed content of *path*, or None if never committed."""
    relative = os.path.relpath(path, os.path.dirname(BENCH_DIR))
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:{relative}"],
            cwd=os.path.dirname(BENCH_DIR),
            capture_output=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def _walk_pairs(baseline, current, path=""):
    """Yield ``(json_path, old, new)`` for timing keys present in both."""
    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in baseline.keys() & current.keys():
            here = f"{path}.{key}" if path else key
            if key in TIMING_KEYS:
                old, new = baseline[key], current[key]
                if isinstance(old, (int, float)) and isinstance(
                    new, (int, float)
                ):
                    yield here, float(old), float(new)
            else:
                yield from _walk_pairs(baseline[key], current[key], here)
    elif isinstance(baseline, list) and isinstance(current, list):
        for position, (old, new) in enumerate(zip(baseline, current)):
            yield from _walk_pairs(old, new, f"{path}[{position}]")


def find_regressions(
    baseline: dict, current: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[tuple[str, float, float]]:
    """``(path, old_seconds, new_seconds)`` for every tripped timing."""
    return [
        (path, old, new)
        for path, old, new in _walk_pairs(baseline, current)
        if old > 0 and new > old * (1.0 + threshold)
    ]


def check_reports(
    paths: list[str] | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    out=sys.stdout,
) -> int:
    """Check each report; returns the total regression count."""
    paths = paths or sorted(glob.glob(os.path.join(BENCH_DIR, "BENCH_*.json")))
    tripped = 0
    for path in paths:
        name = os.path.basename(path)
        baseline = committed_baseline(path)
        if baseline is None:
            print(f"{name}: no committed baseline, skipped", file=out)
            continue
        with open(path) as handle:
            current = json.load(handle)
        regressions = find_regressions(baseline, current, threshold)
        if not regressions:
            print(f"{name}: ok", file=out)
            continue
        tripped += len(regressions)
        print(f"{name}: {len(regressions)} regression(s)", file=out)
        for json_path, old, new in regressions:
            print(
                f"  {json_path}: {old:.6f}s -> {new:.6f}s "
                f"(+{(new / old - 1.0) * 100.0:.0f}%)",
                file=out,
            )
    return tripped


def test_no_bench_regressions(request):
    """Opt-in gate: compare fresh reports against committed baselines."""
    if not request.config.getoption("--check-bench"):
        pytest.skip("pass --check-bench to enable the regression gate")
    tripped = check_reports()
    assert tripped == 0, f"{tripped} benchmark timing regression(s) > 20%"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="BENCH_*.json files")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed slowdown fraction before failing (default 0.20)",
    )
    args = parser.parse_args(argv)
    tripped = check_reports(args.paths or None, args.threshold)
    return 1 if tripped else 0


if __name__ == "__main__":
    sys.exit(main())
