"""Table 5 — model accuracy over five runs.

The paper reports avg/median/min/max accuracies; pipelines with seeded
train/test splits and deterministic training are constant across runs,
the healthcare pipeline varies with the data seed (stochastic split and
network initialisation in the original).  We vary the dataset seed to
reproduce that spread.
"""

import statistics

import pytest

from harness import make_inspector, print_table
from repro.datasets import (
    ensure_adult,
    ensure_compas,
    ensure_healthcare,
)
from repro.inspection import PipelineInspector
from repro.pipelines import PIPELINE_BUILDERS

import os

RUNS = 5
SIZES = {
    "adult_simple": 9771,
    "adult_complex": 9771,
    "healthcare": 889,
    "compas": 2167,
}


def _score(pipeline: str, seed: int) -> float:
    if pipeline == "healthcare":
        paths = ensure_healthcare(SIZES[pipeline], seed)
        directory = os.path.dirname(paths["patients"])
    elif pipeline == "compas":
        paths = ensure_compas(SIZES[pipeline], SIZES[pipeline] // 4, seed)
        directory = os.path.dirname(paths["train"])
    else:
        paths = ensure_adult(SIZES[pipeline], SIZES[pipeline] // 4, seed)
        directory = os.path.dirname(paths["train"])
    source = PIPELINE_BUILDERS[pipeline](directory, upto="full")
    result = PipelineInspector.on_pipeline_from_string(
        source, filename=f"<{pipeline}>"
    ).execute()
    return float(result.extras["pipeline_globals"]["score"])


@pytest.mark.parametrize("pipeline", list(SIZES))
def test_table5_benchmark(benchmark, pipeline):
    benchmark.pedantic(lambda: _score(pipeline, 0), rounds=1, iterations=1)


def test_report_table5(capsys):
    rows = []
    for pipeline in SIZES:
        scores = [_score(pipeline, seed) for seed in range(RUNS)]
        rows.append(
            [
                pipeline,
                statistics.mean(scores),
                statistics.median(scores),
                min(scores),
                max(scores),
            ]
        )
        # models must beat a majority-class-ish baseline to be meaningful
        assert min(scores) > 0.5, f"{pipeline}: accuracy too low: {scores}"
    with capsys.disabled():
        print_table(
            "Table 5: model accuracy over 5 runs",
            ["pipeline", "avg", "median", "min", "max"],
            rows,
        )
